//! Substrate cost: raw event throughput of the discrete-event engine and
//! its components — the budget every simulated experiment spends from.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nserver_netsim::{CpuPool, Link, Model, Scheduler, SimTime};

struct Chain {
    remaining: u64,
}

enum Ev {
    Tick,
}

impl Model for Chain {
    type Ev = Ev;
    fn handle(&mut self, _now: SimTime, _ev: Ev, sched: &mut Scheduler<Ev>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.after(SimTime::from_micros(1), Ev::Tick);
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim_engine");

    g.bench_function("chain_100k_events", |b| {
        b.iter(|| {
            let mut m = Chain { remaining: 100_000 };
            let mut s = Scheduler::new();
            s.at(SimTime::ZERO, Ev::Tick);
            let n = s.run_to_completion(&mut m);
            black_box(n)
        })
    });

    g.bench_function("heap_fanout_10k", |b| {
        b.iter(|| {
            let mut m = Chain { remaining: 0 };
            let mut s = Scheduler::new();
            for i in 0..10_000u64 {
                s.at(SimTime::from_micros((i * 7919) % 100_000), Ev::Tick);
            }
            black_box(s.run_to_completion(&mut m))
        })
    });

    g.bench_function("link_send_10k", |b| {
        b.iter(|| {
            let mut link = Link::new(100_000_000);
            let mut t = SimTime::ZERO;
            for i in 0..10_000u64 {
                t = link.send(SimTime::from_micros(i), black_box(1460));
            }
            black_box(t)
        })
    });

    g.bench_function("cpu_pool_run_10k", |b| {
        b.iter(|| {
            let mut pool = CpuPool::new(4);
            let mut t = SimTime::ZERO;
            for i in 0..10_000u64 {
                t = pool.run(SimTime::from_micros(i * 3), SimTime::from_micros(500));
            }
            black_box(t)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
