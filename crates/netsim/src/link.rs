//! A shared-bandwidth FIFO link with MTU framing.
//!
//! Models the testbed's bottleneck: "a switched Gigabit Ethernet connects
//! the clients and servers. The maximal packet size of the Ethernet switch
//! is 1500 bytes … the actual network bandwidth is limited to something
//! slightly higher than 100 MBits/sec". The link is a fluid store-and-
//! forward pipe: each message is serialized at link rate behind everything
//! queued before it, so saturation produces realistic queueing delay growth.

use crate::rng::SimRng;
use crate::time::SimTime;

/// Seeded per-message fault injection on a link: drops (modelled as one
/// lost copy recovered by a retransmission timeout) and transient extra
/// delay. Deterministic — the same seed reproduces the same loss pattern.
#[derive(Debug, Clone)]
struct LinkFaults {
    rng: SimRng,
    drop_per_mille: u16,
    delay_per_mille: u16,
    extra_delay: SimTime,
    retransmit_timeout: SimTime,
}

/// What injected fault (if any) hit one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// Delivered normally.
    None,
    /// First copy lost; delivered by retransmission.
    Dropped,
    /// Delivered late by the configured extra delay.
    Delayed,
}

/// One message's journey across the link, recorded when event logging is
/// on. Conformance checks replay these ordered records against a model of
/// the link discipline (FIFO, fault accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkEvent {
    /// When the sender enqueued the message.
    pub enqueued: SimTime,
    /// Payload bytes.
    pub payload: u64,
    /// When the far end received it.
    pub arrival: SimTime,
    /// Injected fault outcome.
    pub fault: LinkFault,
}

/// Shared FIFO link.
#[derive(Debug, Clone)]
pub struct Link {
    bits_per_sec: u64,
    /// Per-packet protocol overhead in bytes (Ethernet + IP + TCP headers).
    header_bytes: u64,
    /// Maximum payload bytes per packet (MTU minus headers).
    payload_per_packet: u64,
    /// One-way propagation + switching latency added to every message.
    propagation: SimTime,
    busy_until: SimTime,
    busy_accum_us: u64,
    bytes_carried: u64,
    messages: u64,
    faults: Option<LinkFaults>,
    messages_dropped: u64,
    messages_delayed: u64,
    event_log: Option<Vec<LinkEvent>>,
}

impl Link {
    /// A link with the given line rate, 1500-byte MTU and 40-byte headers.
    pub fn new(bits_per_sec: u64) -> Self {
        Self::with_frame(bits_per_sec, 1500, 40, SimTime::from_micros(100))
    }

    /// Fully parameterised construction: `mtu` is the maximal packet size,
    /// `header_bytes` the per-packet overhead (payload per packet is
    /// `mtu - header_bytes`), `propagation` the one-way latency.
    pub fn with_frame(
        bits_per_sec: u64,
        mtu: u64,
        header_bytes: u64,
        propagation: SimTime,
    ) -> Self {
        assert!(bits_per_sec > 0, "link needs positive bandwidth");
        assert!(mtu > header_bytes, "MTU must exceed header size");
        Self {
            bits_per_sec,
            header_bytes,
            payload_per_packet: mtu - header_bytes,
            propagation,
            busy_until: SimTime::ZERO,
            busy_accum_us: 0,
            bytes_carried: 0,
            messages: 0,
            faults: None,
            messages_dropped: 0,
            messages_delayed: 0,
            event_log: None,
        }
    }

    /// Record every message's (enqueue, arrival, fault) as an ordered
    /// [`LinkEvent`] trace, retrievable with [`Link::take_events`]. Off by
    /// default: the log grows by one record per message.
    pub fn with_event_log(mut self) -> Self {
        self.event_log = Some(Vec::new());
        self
    }

    /// Drain the recorded event trace (empty if logging is off).
    pub fn take_events(&mut self) -> Vec<LinkEvent> {
        self.event_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Enable seeded fault injection: each message is independently
    /// dropped (losing one serialized copy and paying `retransmit_timeout`
    /// before the retransmission) with probability `drop_per_mille`/1000,
    /// or delayed by `extra_delay` with probability `delay_per_mille`/1000.
    /// With both incidences zero the link behaves identically to a
    /// fault-free one.
    pub fn with_faults(
        mut self,
        seed: u64,
        drop_per_mille: u16,
        delay_per_mille: u16,
        extra_delay: SimTime,
        retransmit_timeout: SimTime,
    ) -> Self {
        self.faults = Some(LinkFaults {
            rng: SimRng::new(seed),
            drop_per_mille,
            delay_per_mille,
            extra_delay,
            retransmit_timeout,
        });
        self
    }

    /// Bytes actually put on the wire for a payload of `payload` bytes,
    /// including per-packet headers (a zero-byte message still costs one
    /// packet — e.g. a bare ACK or SYN).
    pub fn wire_bytes(&self, payload: u64) -> u64 {
        let packets = payload.div_ceil(self.payload_per_packet).max(1);
        payload + packets * self.header_bytes
    }

    /// Transmission (serialization) time for a payload, excluding queueing
    /// and propagation.
    pub fn tx_time(&self, payload: u64) -> SimTime {
        let bits = self.wire_bytes(payload) * 8;
        SimTime::from_micros(bits * 1_000_000 / self.bits_per_sec)
    }

    /// Enqueue a message at `now`; returns its arrival time at the far end
    /// (queueing + serialization + propagation, plus any injected fault
    /// penalty: a dropped message serializes twice around a retransmission
    /// timeout, a delayed one arrives `extra_delay` late).
    pub fn send(&mut self, now: SimTime, payload: u64) -> SimTime {
        let start = self.busy_until.max(now);
        let tx = self.tx_time(payload);
        let mut occupancy = tx;
        let mut extra = SimTime::ZERO;
        let mut fault = LinkFault::None;
        if let Some(f) = &mut self.faults {
            let roll = f.rng.below(1000) as u16;
            if roll < f.drop_per_mille {
                // The lost copy occupied the wire too, and FIFO ordering
                // holds subsequent messages behind the retransmission.
                occupancy = occupancy + f.retransmit_timeout + tx;
                self.busy_accum_us += tx.as_micros();
                self.messages_dropped += 1;
                fault = LinkFault::Dropped;
            } else if roll < f.drop_per_mille.saturating_add(f.delay_per_mille) {
                extra = f.extra_delay;
                self.messages_delayed += 1;
                fault = LinkFault::Delayed;
            }
        }
        self.busy_until = start + occupancy;
        self.busy_accum_us += tx.as_micros();
        self.bytes_carried += payload;
        self.messages += 1;
        let arrival = self.busy_until + self.propagation + extra;
        if let Some(log) = &mut self.event_log {
            log.push(LinkEvent {
                enqueued: now,
                payload,
                arrival,
                fault,
            });
        }
        arrival
    }

    /// How long a message enqueued at `now` would wait before its first bit
    /// is transmitted.
    pub fn queue_delay(&self, now: SimTime) -> SimTime {
        self.busy_until.saturating_sub(now)
    }

    /// Fraction of `elapsed` time the link spent transmitting.
    pub fn utilization(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            0.0
        } else {
            self.busy_accum_us as f64 / elapsed.as_micros() as f64
        }
    }

    /// Total payload bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Total messages carried.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Messages that lost their first copy to injected faults.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Messages delivered late due to injected faults.
    pub fn messages_delayed(&self) -> u64 {
        self.messages_delayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbit(n: u64) -> u64 {
        n * 1_000_000
    }

    #[test]
    fn wire_bytes_includes_per_packet_headers() {
        let l = Link::new(mbit(100));
        // 1460 payload = 1 packet = 1500 wire bytes.
        assert_eq!(l.wire_bytes(1460), 1500);
        // 1461 payload = 2 packets.
        assert_eq!(l.wire_bytes(1461), 1461 + 80);
        // Empty message still costs one header.
        assert_eq!(l.wire_bytes(0), 40);
    }

    #[test]
    fn tx_time_matches_line_rate() {
        let l = Link::new(mbit(100));
        // 1500 wire bytes at 100 Mbit/s = 120 µs.
        assert_eq!(l.tx_time(1460), SimTime::from_micros(120));
    }

    #[test]
    fn fifo_queueing_serializes_messages() {
        let mut l = Link::with_frame(mbit(100), 1500, 40, SimTime::ZERO);
        let t1 = l.send(SimTime::ZERO, 1460);
        let t2 = l.send(SimTime::ZERO, 1460);
        assert_eq!(t1, SimTime::from_micros(120));
        assert_eq!(t2, SimTime::from_micros(240));
        assert_eq!(l.queue_delay(SimTime::ZERO), SimTime::from_micros(240));
    }

    #[test]
    fn idle_link_has_no_queue_delay() {
        let mut l = Link::with_frame(mbit(100), 1500, 40, SimTime::ZERO);
        l.send(SimTime::ZERO, 1460);
        assert_eq!(l.queue_delay(SimTime::from_millis(5)), SimTime::ZERO);
        let t = l.send(SimTime::from_millis(5), 1460);
        assert_eq!(t, SimTime::from_micros(5120));
    }

    #[test]
    fn propagation_adds_to_arrival_not_occupancy() {
        let mut l = Link::with_frame(mbit(100), 1500, 40, SimTime::from_millis(1));
        let t1 = l.send(SimTime::ZERO, 1460);
        assert_eq!(t1, SimTime::from_micros(120) + SimTime::from_millis(1));
        // Second message queues behind serialization only, not propagation.
        let t2 = l.send(SimTime::ZERO, 1460);
        assert_eq!(t2, SimTime::from_micros(240) + SimTime::from_millis(1));
    }

    #[test]
    fn utilization_and_counters() {
        let mut l = Link::with_frame(mbit(100), 1500, 40, SimTime::ZERO);
        l.send(SimTime::ZERO, 1460);
        l.send(SimTime::ZERO, 1460);
        assert_eq!(l.bytes_carried(), 2920);
        assert_eq!(l.messages(), 2);
        let u = l.utilization(SimTime::from_micros(480));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn injected_drops_delay_arrival_and_are_deterministic() {
        let faulty = || {
            Link::with_frame(mbit(100), 1500, 40, SimTime::ZERO).with_faults(
                11,
                500,
                0,
                SimTime::ZERO,
                SimTime::from_millis(1),
            )
        };
        let run = |mut l: Link| {
            let mut arrivals = Vec::new();
            for i in 0..50 {
                arrivals.push(l.send(SimTime::from_micros(i * 500), 1460));
            }
            (arrivals, l.messages_dropped())
        };
        let (a1, d1) = run(faulty());
        let (a2, d2) = run(faulty());
        assert_eq!(a1, a2, "same seed must reproduce the same schedule");
        assert_eq!(d1, d2);
        assert!(d1 > 0, "50% drop incidence over 50 messages");

        // The same offered load over a clean link finishes earlier.
        let (clean, _) = run(Link::with_frame(mbit(100), 1500, 40, SimTime::ZERO));
        assert!(a1.last().unwrap() > clean.last().unwrap());
    }

    #[test]
    fn injected_delay_postpones_arrival_without_occupancy() {
        let mut l = Link::with_frame(mbit(100), 1500, 40, SimTime::ZERO).with_faults(
            5,
            0,
            1000,
            SimTime::from_millis(3),
            SimTime::ZERO,
        );
        let t = l.send(SimTime::ZERO, 1460);
        assert_eq!(t, SimTime::from_micros(120) + SimTime::from_millis(3));
        assert_eq!(l.messages_delayed(), 1);
        // Occupancy excludes the delay: the next message queues only
        // behind serialization.
        assert_eq!(l.queue_delay(SimTime::ZERO), SimTime::from_micros(120));
    }

    #[test]
    fn zero_incidence_faults_match_clean_link_exactly() {
        let mut clean = Link::with_frame(mbit(100), 1500, 40, SimTime::ZERO);
        let mut quiet = Link::with_frame(mbit(100), 1500, 40, SimTime::ZERO).with_faults(
            1,
            0,
            0,
            SimTime::ZERO,
            SimTime::ZERO,
        );
        for i in 0..20 {
            let now = SimTime::from_micros(i * 70);
            assert_eq!(clean.send(now, 1200), quiet.send(now, 1200));
        }
        assert_eq!(quiet.messages_dropped(), 0);
        assert_eq!(quiet.messages_delayed(), 0);
    }

    #[test]
    fn event_log_records_arrivals_and_faults_in_order() {
        let mut l = Link::with_frame(mbit(100), 1500, 40, SimTime::ZERO)
            .with_faults(11, 500, 0, SimTime::ZERO, SimTime::from_millis(1))
            .with_event_log();
        let mut arrivals = Vec::new();
        for i in 0..20 {
            arrivals.push(l.send(SimTime::from_micros(i * 500), 1460));
        }
        let events = l.take_events();
        assert_eq!(events.len(), 20);
        // The log mirrors what send() returned, in FIFO order.
        for (ev, t) in events.iter().zip(&arrivals) {
            assert_eq!(ev.arrival, *t);
            assert_eq!(ev.payload, 1460);
        }
        assert!(events.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let dropped = events
            .iter()
            .filter(|e| e.fault == LinkFault::Dropped)
            .count();
        assert_eq!(dropped as u64, l.messages_dropped());
        // Drained: a second take is empty.
        assert!(l.take_events().is_empty());
    }

    #[test]
    fn saturation_grows_queue_delay_linearly() {
        let mut l = Link::with_frame(mbit(100), 1500, 40, SimTime::ZERO);
        // Offer 2x capacity for a while.
        let mut last = SimTime::ZERO;
        for i in 0..100 {
            let now = SimTime::from_micros(i * 60); // every 60µs, 120µs each
            last = l.send(now, 1460);
        }
        // Arrival of last message far exceeds its enqueue time.
        assert!(last > SimTime::from_micros(100 * 60 + 120 * 10));
    }
}
