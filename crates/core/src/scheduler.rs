//! Event scheduling with priority quotas (template option O8).
//!
//! From the paper: "events of higher priority are processed first.
//! However, each priority level is given a quota. When the quota is
//! exhausted, events of lower priority are processed, so that starvation
//! is avoided."
//!
//! The discipline is round-based weighted priority: within a round, level
//! 0 is served until its quota is spent (or it empties), then level 1, and
//! so on; when every backlogged level has exhausted its quota the round
//! resets. Under saturation, level *i* therefore receives service in
//! proportion to `quota[i]` — which is exactly the knob Fig. 5 of the
//! paper turns (the "x/y priority level setting" for homepages vs the
//! corporate portal).

use std::collections::VecDeque;

use crate::event::Priority;
use crate::queue::EventQueue;

/// The quota bookkeeping, separated from item storage so the simulated
/// COPS-HTTP server can reuse the identical scheduling arithmetic.
#[derive(Debug, Clone)]
pub struct QuotaSchedule {
    quotas: Vec<u32>,
    remaining: Vec<u32>,
}

impl QuotaSchedule {
    /// Create a schedule from per-level quotas (index 0 = highest
    /// priority). Panics on an empty or zero-containing quota list — the
    /// option validator rejects those before the framework is built.
    pub fn new(quotas: Vec<u32>) -> Self {
        assert!(!quotas.is_empty(), "at least one priority level");
        assert!(quotas.iter().all(|&q| q > 0), "quotas must be nonzero");
        let remaining = quotas.clone();
        Self { quotas, remaining }
    }

    /// Number of priority levels.
    pub fn levels(&self) -> usize {
        self.quotas.len()
    }

    /// Configured quota of a level.
    pub fn quota(&self, level: usize) -> u32 {
        self.quotas[level]
    }

    /// Pick the level to serve next, given which levels are backlogged.
    /// Consumes one unit of the chosen level's quota. Returns `None` when
    /// no level is backlogged.
    pub fn pick(&mut self, backlogged: impl Fn(usize) -> bool) -> Option<usize> {
        // First pass: highest-priority backlogged level with quota left.
        for level in 0..self.levels() {
            if backlogged(level) && self.remaining[level] > 0 {
                self.remaining[level] -= 1;
                return Some(level);
            }
        }
        // All backlogged levels exhausted their quotas: start a new round.
        let any = (0..self.levels()).any(&backlogged);
        if !any {
            return None;
        }
        self.remaining.clone_from(&self.quotas);
        for level in 0..self.levels() {
            if backlogged(level) {
                self.remaining[level] -= 1;
                return Some(level);
            }
        }
        unreachable!("a backlogged level must exist");
    }
}

/// A priority event queue with quota-based anti-starvation — the structure
/// that replaces the Event Processor's FIFO when O8 is enabled.
pub struct PriorityQuotaQueue<T> {
    levels: Vec<VecDeque<T>>,
    schedule: QuotaSchedule,
    len: usize,
}

impl<T> PriorityQuotaQueue<T> {
    /// Create a queue with the given per-level quotas.
    pub fn new(quotas: Vec<u32>) -> Self {
        let schedule = QuotaSchedule::new(quotas);
        let levels = (0..schedule.levels()).map(|_| VecDeque::new()).collect();
        Self {
            levels,
            schedule,
            len: 0,
        }
    }

    /// Queued items at one priority level.
    pub fn level_len(&self, level: usize) -> usize {
        self.levels[level].len()
    }
}

impl<T: Send> EventQueue<T> for PriorityQuotaQueue<T> {
    fn push(&mut self, item: T, prio: Priority) {
        let level = prio.clamped(self.levels.len()).level();
        self.levels[level].push_back(item);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<T> {
        let levels = &self.levels;
        let level = self.schedule.pick(|l| !levels[l].is_empty())?;
        let item = self.levels[level].pop_front();
        debug_assert!(item.is_some());
        self.len -= 1;
        item
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_tags(q: &mut PriorityQuotaQueue<&'static str>, n: usize) -> Vec<&'static str> {
        (0..n).filter_map(|_| q.pop()).collect()
    }

    #[test]
    fn higher_priority_served_first_within_quota() {
        let mut q = PriorityQuotaQueue::new(vec![2, 1]);
        q.push("h1", Priority(0));
        q.push("h2", Priority(0));
        q.push("l1", Priority(1));
        q.push("h3", Priority(0));
        // Round: 2 high, then quota forces 1 low, then new round serves h3.
        assert_eq!(drain_tags(&mut q, 4), vec!["h1", "h2", "l1", "h3"]);
    }

    #[test]
    fn empty_high_level_does_not_block_low() {
        let mut q = PriorityQuotaQueue::new(vec![4, 1]);
        q.push("l1", Priority(1));
        q.push("l2", Priority(1));
        assert_eq!(drain_tags(&mut q, 2), vec!["l1", "l2"]);
    }

    #[test]
    fn no_starvation_under_saturation() {
        // Keep level 0 saturated; level 1 must still be served ~1/(8+1).
        let mut q = PriorityQuotaQueue::new(vec![8, 1]);
        for i in 0..1000 {
            q.push(("hi", i), Priority(0));
            if i % 4 == 0 {
                q.push(("lo", i), Priority(1));
            }
        }
        let mut hi = 0;
        let mut lo = 0;
        for _ in 0..900 {
            match q.pop() {
                Some(("hi", _)) => hi += 1,
                Some(("lo", _)) => lo += 1,
                _ => break,
            }
        }
        assert!(lo >= 90, "low level starved: {lo}");
        assert!(hi >= 700, "high level under-served: {hi}");
    }

    #[test]
    fn service_ratio_tracks_quotas_under_saturation() {
        // This is the Fig. 5 property: with both classes backlogged, the
        // throughput ratio approximates the quota ratio.
        for (qa, qb) in [(1u32, 1u32), (1, 2), (1, 5), (1, 10)] {
            let mut q = PriorityQuotaQueue::new(vec![qb, qa]); // portal=level0
            for i in 0..2000 {
                q.push((0u8, i), Priority(0));
                q.push((1u8, i), Priority(1));
            }
            let mut counts = [0u32; 2];
            for _ in 0..1100 {
                if let Some((class, _)) = q.pop() {
                    counts[class as usize] += 1;
                }
            }
            let ratio = counts[0] as f64 / counts[1] as f64;
            let expect = qb as f64 / qa as f64;
            assert!(
                (ratio - expect).abs() / expect < 0.05,
                "quota {qb}/{qa}: ratio {ratio} expect {expect}"
            );
        }
    }

    #[test]
    fn fifo_within_a_level() {
        let mut q = PriorityQuotaQueue::new(vec![10]);
        for i in 0..20 {
            q.push(i, Priority(0));
        }
        let got: Vec<i32> = (0..20).filter_map(|_| q.pop()).collect();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn out_of_range_priority_clamps_to_lowest_level() {
        let mut q = PriorityQuotaQueue::new(vec![1, 1]);
        q.push("x", Priority(200));
        assert_eq!(q.level_len(1), 1);
        assert_eq!(q.pop(), Some("x"));
    }

    #[test]
    fn len_is_total_across_levels() {
        let mut q = PriorityQuotaQueue::new(vec![1, 1, 1]);
        q.push(1, Priority(0));
        q.push(2, Priority(1));
        q.push(3, Priority(2));
        assert_eq!(q.len(), 3);
        q.pop();
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_quota_panics() {
        QuotaSchedule::new(vec![1, 0]);
    }

    #[test]
    fn schedule_pick_none_when_idle() {
        let mut s = QuotaSchedule::new(vec![2, 2]);
        assert_eq!(s.pick(|_| false), None);
    }

    #[test]
    fn schedule_round_reset() {
        let mut s = QuotaSchedule::new(vec![1]);
        assert_eq!(s.pick(|_| true), Some(0));
        // Quota exhausted; new round begins automatically.
        assert_eq!(s.pick(|_| true), Some(0));
        assert_eq!(s.levels(), 1);
        assert_eq!(s.quota(0), 1);
    }
}
