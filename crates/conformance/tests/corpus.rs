//! The counterexample corpus: shrunken schedules from past model
//! divergences (and hand-written hazard scenarios), re-run on every
//! `cargo test` as fast regressions. When exploration finds a new
//! violation, the panic message carries the serialized shrunken schedule —
//! dropping it into `corpus/*.schedule` pins the fix forever.

use conformance::{run, Schedule};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus/ directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "schedule"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_present_and_parseable() {
    let files = corpus_files();
    assert!(
        files.len() >= 4,
        "expected at least the seeded regression corpus, found {files:?}"
    );
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let sched = Schedule::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            sched.serialize(),
            text,
            "{}: corpus files stay in canonical serialized form",
            path.display()
        );
    }
}

#[test]
fn every_corpus_schedule_conforms() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let sched = Schedule::parse(&text).expect("parseable (covered above)");
        let report = run(&sched);
        assert!(
            report.violations.is_empty(),
            "{} regressed: {}",
            path.display(),
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("; "),
        );
    }
}
