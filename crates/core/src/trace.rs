//! Debug tracing (option O10) and access logging (option O12).
//!
//! In debug mode "all internal events that are triggered in the server are
//! written into a file. The user can trace this file to get a snapshot of
//! what happened during the time an error condition occurred." We keep the
//! trace in a bounded ring buffer and let the application dump it on
//! demand — same diagnostic value, no unbounded disk growth.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::event::{ConnId, EventKind};

/// A typed causal span event, keyed by the connection (and, for request
/// stages, the request's Asynchronous Completion Token sequence number).
/// A request's full path — dispatcher → queue → processor thread →
/// proactor write — is reconstructable by filtering a trace dump for one
/// connection and following these events in ring order.
///
/// Span events carry no heap data: emitting one allocates nothing, which
/// is what lets the hot path keep its trace calls unguarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEvent {
    /// Connection accepted — the root of the connection's span tree.
    Accept,
    /// First request bytes became readable on the connection.
    HeaderRead,
    /// A request was decoded; opens the request span `seq`.
    Decode {
        /// ACT sequence number of the request.
        seq: u64,
    },
    /// The Handle Request hook ran for request `seq`.
    Handle {
        /// ACT sequence number of the request.
        seq: u64,
    },
    /// A blocking operation for `seq` was submitted to the Proactor.
    Defer {
        /// ACT sequence number of the request.
        seq: u64,
    },
    /// The Proactor completion for `seq` re-entered the framework.
    Complete {
        /// ACT sequence number of the request.
        seq: u64,
    },
    /// The reply for `seq` was encoded; closes the request span.
    Encode {
        /// ACT sequence number of the request.
        seq: u64,
    },
    /// The connection's outbox fully drained to the transport.
    WriteDrain,
    /// Connection closed — closes the connection's span tree.
    Close,
}

impl SpanEvent {
    /// Stable event name (JSONL exposition, assertions).
    pub fn name(&self) -> &'static str {
        match self {
            SpanEvent::Accept => "accept",
            SpanEvent::HeaderRead => "header_read",
            SpanEvent::Decode { .. } => "decode",
            SpanEvent::Handle { .. } => "handle",
            SpanEvent::Defer { .. } => "defer",
            SpanEvent::Complete { .. } => "complete",
            SpanEvent::Encode { .. } => "encode",
            SpanEvent::WriteDrain => "write_drain",
            SpanEvent::Close => "close",
        }
    }

    /// The ACT sequence number, for request-scoped events.
    pub fn seq(&self) -> Option<u64> {
        match self {
            SpanEvent::Decode { seq }
            | SpanEvent::Handle { seq }
            | SpanEvent::Defer { seq }
            | SpanEvent::Complete { seq }
            | SpanEvent::Encode { seq } => Some(*seq),
            _ => None,
        }
    }

    /// The [`EventKind`] a span renders under (keeps the O10 render
    /// format identical to the free-form records it replaced).
    pub fn kind(&self) -> EventKind {
        match self {
            SpanEvent::Accept => EventKind::Accepted,
            SpanEvent::Defer { .. } | SpanEvent::Complete { .. } => EventKind::Completion,
            SpanEvent::Close => EventKind::Shutdown,
            _ => EventKind::Readable,
        }
    }
}

/// One traced internal event.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Microseconds since the tracer was created.
    pub at_us: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Connection involved, if any.
    pub conn: Option<ConnId>,
    /// Typed span event (None for free-form records).
    pub span: Option<SpanEvent>,
    /// Free-form detail (empty for span records).
    pub detail: String,
}

impl TraceRecord {
    /// The detail column rendered for this record: the free-form string,
    /// or the span event formatted in the legacy detail style (`request
    /// seq=3`, `defer act(conn=1, seq=3)`, …).
    pub fn detail_text(&self) -> String {
        let Some(span) = self.span else {
            return self.detail.clone();
        };
        let conn = self.conn.unwrap_or(0);
        match span {
            SpanEvent::Accept => "accepted".to_string(),
            SpanEvent::HeaderRead => "header read".to_string(),
            SpanEvent::Decode { seq } => format!("request seq={seq}"),
            SpanEvent::Handle { seq } => format!("handled seq={seq}"),
            SpanEvent::Defer { seq } => format!("defer act(conn={conn}, seq={seq})"),
            SpanEvent::Complete { seq } => format!("complete act(conn={conn}, seq={seq})"),
            SpanEvent::Encode { seq } => format!("encoded seq={seq}"),
            SpanEvent::WriteDrain => "write drained".to_string(),
            SpanEvent::Close => "connection closed".to_string(),
        }
    }
}

/// Bounded in-memory event trace (debug mode, O10).
#[derive(Clone)]
pub struct DebugTracer {
    inner: Arc<Mutex<TraceInner>>,
    epoch: Instant,
    enabled: bool,
    /// Free-form detail strings stored so far — the counter the overhead
    /// regression test pins: a production-mode run must keep this at zero
    /// (every hot-path call site uses allocation-free [`SpanEvent`]s).
    detail_strings: Arc<AtomicU64>,
    /// Records evicted by ring overflow. Kept outside the ring mutex so
    /// the exposition layer can read it lock-free; the diagnostics
    /// snapshot and Prometheus output both surface it, making lossy
    /// trace windows detectable instead of silent.
    dropped: Arc<AtomicU64>,
}

struct TraceInner {
    ring: VecDeque<TraceRecord>,
    capacity: usize,
}

impl DebugTracer {
    /// An enabled tracer holding the most recent `capacity` records.
    pub fn enabled(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(TraceInner {
                ring: VecDeque::with_capacity(capacity.min(4096)),
                capacity: capacity.max(1),
            })),
            epoch: Instant::now(),
            enabled: true,
            detail_strings: Arc::new(AtomicU64::new(0)),
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A disabled tracer: every call is a cheap no-op (production mode).
    pub fn disabled() -> Self {
        Self {
            inner: Arc::new(Mutex::new(TraceInner {
                ring: VecDeque::new(),
                capacity: 1,
            })),
            epoch: Instant::now(),
            enabled: false,
            detail_strings: Arc::new(AtomicU64::new(0)),
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Whether tracing is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a free-form internal event. Slow-path diagnostics only
    /// (errors, sweeps): the detail string is stored on the ring. Hot-path
    /// call sites use [`span`](Self::span) instead, which allocates
    /// nothing.
    pub fn record(&self, kind: EventKind, conn: Option<ConnId>, detail: impl Into<String>) {
        if !self.enabled {
            return;
        }
        self.detail_strings.fetch_add(1, Ordering::Relaxed);
        self.push(TraceRecord {
            at_us: self.epoch.elapsed().as_micros() as u64,
            kind,
            conn,
            span: None,
            detail: detail.into(),
        });
    }

    /// Record a typed span event for a connection. Allocation-free: safe
    /// to leave unguarded on the hot path (disabled tracers return before
    /// reading the clock).
    pub fn span(&self, event: SpanEvent, conn: ConnId) {
        if !self.enabled {
            return;
        }
        self.push(TraceRecord {
            at_us: self.epoch.elapsed().as_micros() as u64,
            kind: event.kind(),
            conn: Some(conn),
            span: Some(event),
            detail: String::new(),
        });
    }

    fn push(&self, rec: TraceRecord) {
        let mut inner = self.inner.lock();
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.ring.push_back(rec);
    }

    /// Free-form detail strings stored so far (see the field docs — the
    /// overhead regression pin).
    pub fn detail_strings(&self) -> u64 {
        self.detail_strings.load(Ordering::Relaxed)
    }

    /// The typed span events recorded for one connection, in ring order.
    pub fn spans_for(&self, conn: ConnId) -> Vec<SpanEvent> {
        self.inner
            .lock()
            .ring
            .iter()
            .filter(|r| r.conn == Some(conn))
            .filter_map(|r| r.span)
            .collect()
    }

    /// Copy out the retained records, oldest first.
    pub fn dump(&self) -> Vec<TraceRecord> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Copy out the newest `n` retained records, oldest-of-the-tail
    /// first. Diagnostic snapshots use this to bound their span section
    /// without copying the whole ring under the lock.
    pub fn dump_tail(&self, n: usize) -> Vec<TraceRecord> {
        let inner = self.inner.lock();
        let skip = inner.ring.len().saturating_sub(n);
        inner.ring.iter().skip(skip).cloned().collect()
    }

    /// Records evicted from the ring so far (lock-free read).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Render the trace as text lines (what debug mode writes to its file).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in self.dump() {
            let conn = r.conn.map(|c| format!(" conn={c}")).unwrap_or_default();
            out.push_str(&format!(
                "[{:>10}µs] {}{} {}\n",
                r.at_us,
                r.kind,
                conn,
                r.detail_text()
            ));
        }
        out
    }
}

/// Access-log hook (option O12): the generated framework calls this once
/// per completed request with a preformatted line; applications supply the
/// sink (file, stdout, collector…).
pub type AccessLogger = Arc<dyn Fn(&str) + Send + Sync>;

/// An in-memory access logger, handy for tests and examples.
#[derive(Clone, Default)]
pub struct MemoryLogger {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemoryLogger {
    /// New empty logger.
    pub fn new() -> Self {
        Self::default()
    }

    /// The logging hook to hand to the framework.
    pub fn as_hook(&self) -> AccessLogger {
        let lines = Arc::clone(&self.lines);
        Arc::new(move |line: &str| lines.lock().push(line.to_string()))
    }

    /// Copy of all logged lines.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = DebugTracer::disabled();
        t.record(EventKind::Readable, Some(1), "x");
        assert!(t.dump().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_tracer_keeps_records_in_order() {
        let t = DebugTracer::enabled(10);
        t.record(EventKind::Accepted, Some(1), "new conn");
        t.record(EventKind::Readable, Some(1), "64 bytes");
        let recs = t.dump();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, EventKind::Accepted);
        assert_eq!(recs[1].kind, EventKind::Readable);
        assert!(recs[0].at_us <= recs[1].at_us);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let t = DebugTracer::enabled(3);
        for i in 0..5 {
            t.record(EventKind::Timer, None, format!("t{i}"));
        }
        let recs = t.dump();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].detail, "t2");
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn dump_tail_returns_newest_records_in_order() {
        let t = DebugTracer::enabled(8);
        for i in 0..6 {
            t.record(EventKind::Timer, None, format!("t{i}"));
        }
        let tail = t.dump_tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].detail, "t4");
        assert_eq!(tail[1].detail, "t5");
        assert_eq!(t.dump_tail(100).len(), 6);
    }

    #[test]
    fn render_formats_lines() {
        let t = DebugTracer::enabled(4);
        t.record(EventKind::Shutdown, Some(9), "bye");
        let text = t.render();
        assert!(text.contains("shutdown"));
        assert!(text.contains("conn=9"));
        assert!(text.contains("bye"));
    }

    #[test]
    fn spans_allocate_no_detail_strings() {
        let t = DebugTracer::enabled(16);
        t.span(SpanEvent::Accept, 4);
        t.span(SpanEvent::Decode { seq: 0 }, 4);
        t.span(SpanEvent::Close, 4);
        assert_eq!(t.detail_strings(), 0);
        t.record(EventKind::Timer, None, "a real string");
        assert_eq!(t.detail_strings(), 1);
    }

    #[test]
    fn disabled_tracer_counts_no_strings() {
        let t = DebugTracer::disabled();
        t.record(EventKind::Timer, None, "dropped before storage");
        t.span(SpanEvent::Accept, 1);
        assert_eq!(t.detail_strings(), 0);
        assert!(t.dump().is_empty());
    }

    #[test]
    fn spans_for_reconstructs_one_connection_in_order() {
        let t = DebugTracer::enabled(32);
        t.span(SpanEvent::Accept, 1);
        t.span(SpanEvent::Accept, 2);
        t.span(SpanEvent::Decode { seq: 0 }, 1);
        t.span(SpanEvent::Encode { seq: 0 }, 1);
        t.span(SpanEvent::Close, 1);
        assert_eq!(
            t.spans_for(1),
            vec![
                SpanEvent::Accept,
                SpanEvent::Decode { seq: 0 },
                SpanEvent::Encode { seq: 0 },
                SpanEvent::Close,
            ]
        );
        assert_eq!(t.spans_for(2), vec![SpanEvent::Accept]);
    }

    #[test]
    fn span_records_render_in_the_legacy_detail_style() {
        let t = DebugTracer::enabled(8);
        t.span(SpanEvent::Decode { seq: 3 }, 9);
        t.span(SpanEvent::Defer { seq: 3 }, 9);
        let text = t.render();
        assert!(text.contains("request seq=3"), "{text}");
        assert!(text.contains("defer act(conn=9, seq=3)"), "{text}");
        assert!(text.contains("conn=9"));
    }

    #[test]
    fn memory_logger_captures_lines() {
        let log = MemoryLogger::new();
        let hook = log.as_hook();
        hook("GET /index.html 200");
        hook("GET /missing 404");
        assert_eq!(log.lines().len(), 2);
        assert!(log.lines()[1].contains("404"));
    }
}
