//! HTTP message types: methods, versions, statuses, headers, requests and
//! responses. COPS-HTTP "only handles static Web page requests", so the
//! vocabulary is the HTTP/1.0–1.1 subset a static server needs.

use std::fmt;
use std::sync::Arc;

/// Request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET — fetch a resource.
    Get,
    /// HEAD — fetch headers only.
    Head,
}

impl Method {
    /// Parse from the request line token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "HEAD" => Some(Method::Head),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
        })
    }
}

/// Protocol version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// HTTP/1.0 — connections close by default.
    Http10,
    /// HTTP/1.1 — persistent connections by default.
    Http11,
}

impl Version {
    /// Parse from the request line token.
    pub fn parse(s: &str) -> Option<Version> {
        match s {
            "HTTP/1.0" => Some(Version::Http10),
            "HTTP/1.1" => Some(Version::Http11),
            _ => None,
        }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Version::Http10 => "HTTP/1.0",
            Version::Http11 => "HTTP/1.1",
        })
    }
}

/// Response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200.
    Ok,
    /// 400.
    BadRequest,
    /// 403.
    Forbidden,
    /// 404.
    NotFound,
    /// 405.
    MethodNotAllowed,
    /// 500.
    InternalError,
    /// 501.
    NotImplemented,
    /// 503.
    ServiceUnavailable,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::BadRequest => 400,
            Status::Forbidden => 403,
            Status::NotFound => 404,
            Status::MethodNotAllowed => 405,
            Status::InternalError => 500,
            Status::NotImplemented => 501,
            Status::ServiceUnavailable => 503,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::BadRequest => "Bad Request",
            Status::Forbidden => "Forbidden",
            Status::NotFound => "Not Found",
            Status::MethodNotAllowed => "Method Not Allowed",
            Status::InternalError => "Internal Server Error",
            Status::NotImplemented => "Not Implemented",
            Status::ServiceUnavailable => "Service Unavailable",
        }
    }
}

/// An ordered, case-insensitive header collection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Empty header set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a header (duplicates allowed, as in HTTP).
    pub fn push(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// First value of a header, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request target (path).
    pub target: String,
    /// Protocol version.
    pub version: Version,
    /// Request headers.
    pub headers: Headers,
}

impl Request {
    /// Whether the connection stays open after this exchange: HTTP/1.1
    /// defaults to keep-alive, HTTP/1.0 to close, both overridable by the
    /// `Connection` header.
    pub fn keep_alive(&self) -> bool {
        match self.headers.get("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version == Version::Http11,
        }
    }
}

/// A response to encode.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status line status.
    pub status: Status,
    /// Protocol version to answer with.
    pub version: Version,
    /// Response headers (Content-Length is added by the encoder).
    pub headers: Headers,
    /// Body bytes (shared: cached files are served without copying).
    pub body: Arc<Vec<u8>>,
    /// Suppress the body (HEAD requests).
    pub head_only: bool,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
}

impl Response {
    /// A 200 response with the given body and content type.
    pub fn ok(body: Arc<Vec<u8>>, content_type: &str, version: Version) -> Self {
        let mut headers = Headers::new();
        headers.push("Content-Type", content_type);
        Self {
            status: Status::Ok,
            version,
            headers,
            body,
            head_only: false,
            keep_alive: true,
        }
    }

    /// An error response with a small text body.
    pub fn error(status: Status, version: Version) -> Self {
        let body = format!("{} {}\n", status.code(), status.reason());
        let mut headers = Headers::new();
        headers.push("Content-Type", "text/plain");
        Self {
            status,
            version,
            headers,
            body: Arc::new(body.into_bytes()),
            head_only: false,
            keep_alive: true,
        }
    }

    /// Mark as a HEAD response (headers only).
    pub fn head(mut self) -> Self {
        self.head_only = true;
        self
    }

    /// Set the keep-alive decision.
    pub fn with_keep_alive(mut self, ka: bool) -> Self {
        self.keep_alive = ka;
        self
    }
}

/// Minimal content-type guess from a path extension.
pub fn mime_for(path: &str) -> &'static str {
    let ext = path.rsplit('.').next().unwrap_or("");
    match ext {
        "html" | "htm" => "text/html",
        "txt" => "text/plain",
        "css" => "text/css",
        "js" => "application/javascript",
        "png" => "image/png",
        "jpg" | "jpeg" => "image/jpeg",
        "gif" => "image/gif",
        _ => "application/octet-stream",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_and_version_parse() {
        assert_eq!(Method::parse("GET"), Some(Method::Get));
        assert_eq!(Method::parse("HEAD"), Some(Method::Head));
        assert_eq!(Method::parse("POST"), None);
        assert_eq!(Version::parse("HTTP/1.1"), Some(Version::Http11));
        assert_eq!(Version::parse("HTTP/2"), None);
    }

    #[test]
    fn status_codes_and_reasons() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::NotFound.code(), 404);
        assert_eq!(Status::NotFound.reason(), "Not Found");
        assert_eq!(Status::ServiceUnavailable.code(), 503);
    }

    #[test]
    fn headers_case_insensitive_first_match() {
        let mut h = Headers::new();
        h.push("Content-Type", "text/html");
        h.push("X-Test", "1");
        h.push("x-test", "2");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("X-TEST"), Some("1"));
        assert_eq!(h.len(), 3);
        assert!(h.get("missing").is_none());
    }

    #[test]
    fn keep_alive_defaults_by_version() {
        let mk = |version, conn: Option<&str>| {
            let mut headers = Headers::new();
            if let Some(c) = conn {
                headers.push("Connection", c);
            }
            Request {
                method: Method::Get,
                target: "/".into(),
                version,
                headers,
            }
        };
        assert!(mk(Version::Http11, None).keep_alive());
        assert!(!mk(Version::Http10, None).keep_alive());
        assert!(!mk(Version::Http11, Some("close")).keep_alive());
        assert!(mk(Version::Http10, Some("keep-alive")).keep_alive());
        assert!(mk(Version::Http10, Some("Keep-Alive")).keep_alive());
    }

    #[test]
    fn response_constructors() {
        let r = Response::ok(Arc::new(b"hi".to_vec()), "text/plain", Version::Http11);
        assert_eq!(r.status, Status::Ok);
        assert!(!r.head_only);
        let e = Response::error(Status::NotFound, Version::Http10).head();
        assert!(e.head_only);
        assert!(String::from_utf8_lossy(&e.body).contains("404"));
    }

    #[test]
    fn mime_guesses() {
        assert_eq!(mime_for("/a/b/index.html"), "text/html");
        assert_eq!(mime_for("x.txt"), "text/plain");
        assert_eq!(mime_for("noext"), "application/octet-stream");
        assert_eq!(mime_for("pic.jpeg"), "image/jpeg");
    }
}
