//! Flight-recorder diagnostics: watchdog quiescence under healthy load,
//! snapshot/exposition reconciliation over both protocols, and a strict
//! grammar check of the full Prometheus text exposition.
//!
//! The steady-state test is the watchdog's false-positive contract: a
//! thousand served requests under an armed watchdog must produce zero
//! triggers and zero snapshots. The reconciliation tests pin the
//! operator surfaces against each other — `/debug/snapshot` against
//! `/server-status`, FTP `SITE DUMP` against `STAT` — so the JSON and
//! text expositions can never drift apart silently. The grammar test
//! parses every line of a traffic-serving server's exposition under the
//! Prometheus text-format rules.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use nserver_cache::{PolicyKind, SharedFileCache};
use nserver_core::diag::{DiagHub, WatchdogConfig};
use nserver_core::metrics::MetricsRegistry;
use nserver_core::options::{Mode, OverloadControl, ServerOptions};
use nserver_core::pipeline::{Action, Codec, ConnCtx, ProtocolError, Service};
use nserver_core::profiling::ServerStats;
use nserver_core::server::ServerBuilder;
use nserver_core::transport::{mem, ReadOutcome, StreamIo};
use nserver_ftp::{cops_ftp_options, FtpCodec, FtpService, UserRegistry, Vfs};
use nserver_http::service::cache_stats_provider;
use nserver_http::{
    cops_http_options, text_page, HttpCodec, MemStore, RoutedService, StaticFileService, Status,
};

fn http_request(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: diag\r\nConnection: close\r\n\r\n").into_bytes()
}

fn write_all(conn: &mut mem::MemStream, data: &[u8], deadline: Instant) -> bool {
    let mut sent = 0;
    while sent < data.len() {
        if Instant::now() > deadline {
            return false;
        }
        match conn.try_write(&data[sent..]) {
            Ok(0) => std::thread::sleep(Duration::from_micros(200)),
            Ok(n) => sent += n,
            Err(_) => return false,
        }
    }
    true
}

fn read_to_close(conn: &mut mem::MemStream, deadline: Instant) -> Vec<u8> {
    let mut acc = Vec::new();
    let mut buf = [0u8; 8192];
    loop {
        assert!(Instant::now() <= deadline, "read timed out");
        match conn.try_read(&mut buf) {
            Err(_) | Ok(ReadOutcome::Closed) => return acc,
            Ok(ReadOutcome::WouldBlock) => std::thread::sleep(Duration::from_micros(200)),
            Ok(ReadOutcome::Data(n)) => acc.extend_from_slice(&buf[..n]),
        }
    }
}

/// One full HTTP exchange; returns the response body (after the blank
/// line), asserting a 200 status.
fn get_body(connector: &mem::MemConnector, path: &str) -> String {
    let mut conn = connector.connect();
    let deadline = Instant::now() + Duration::from_secs(5);
    assert!(write_all(&mut conn, &http_request(path), deadline));
    let raw = read_to_close(&mut conn, deadline);
    let text = String::from_utf8_lossy(&raw).into_owned();
    assert!(text.starts_with("HTTP/1.1 200"), "got: {text}");
    let at = text.find("\r\n\r\n").expect("header terminator");
    text[at + 4..].to_string()
}

fn read_until(conn: &mut mem::MemStream, needle: &str, deadline: Instant) -> String {
    let mut acc = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        if String::from_utf8_lossy(&acc).contains(needle) {
            return String::from_utf8_lossy(&acc).into_owned();
        }
        assert!(
            Instant::now() <= deadline,
            "read timed out waiting for {needle:?}"
        );
        match conn.try_read(&mut buf) {
            Err(e) => panic!("read failed: {e}"),
            Ok(ReadOutcome::Closed) => panic!("connection dropped"),
            Ok(ReadOutcome::WouldBlock) => std::thread::sleep(Duration::from_micros(200)),
            Ok(ReadOutcome::Data(n)) => acc.extend_from_slice(&buf[..n]),
        }
    }
}

// ---------------------------------------------------------------------
// Steady state: no spurious triggers
// ---------------------------------------------------------------------

struct LineCodec;

impl Codec for LineCodec {
    type Request = String;
    type Response = String;

    fn decode(&self, buf: &mut BytesMut) -> Result<Option<String>, ProtocolError> {
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                let line = buf.split_to(i + 1);
                Ok(Some(String::from_utf8_lossy(&line[..i]).into_owned()))
            }
            None => Ok(None),
        }
    }

    fn encode(&self, r: &String, out: &mut BytesMut) -> Result<(), ProtocolError> {
        out.extend_from_slice(r.as_bytes());
        out.extend_from_slice(b"\n");
        Ok(())
    }
}

struct Echo;

impl Service<LineCodec> for Echo {
    fn handle(&self, _ctx: &ConnCtx, req: String) -> Action<String> {
        Action::Reply(format!("echo {req}"))
    }
}

/// A thousand healthy requests under an armed watchdog (fast ticks, all
/// four invariants live) must produce zero triggers and zero snapshots —
/// the false-positive contract. An idle tail lets the liveness ping
/// cycle run many times against a healthy dispatcher.
#[test]
fn steady_state_traffic_never_triggers_the_watchdog() {
    let opts = ServerOptions {
        mode: Mode::Debug,
        profiling: true,
        overload_control: OverloadControl::Watermark { high: 512, low: 8 },
        ..ServerOptions::default()
    };
    let (listener, connector) = mem::listener("diag-steady");
    let server = ServerBuilder::new(opts, LineCodec, Echo)
        .unwrap()
        .watchdog(WatchdogConfig {
            tick: Duration::from_millis(2),
            stuck_ceiling: Duration::from_secs(1),
            p99_slo_us: Some(5_000_000),
            ..Default::default()
        })
        .serve(listener);

    let mut conn = connector.connect();
    let deadline = Instant::now() + Duration::from_secs(30);
    const TOTAL: usize = 1_000;
    const BATCH: usize = 100;
    for batch in 0..TOTAL / BATCH {
        let mut out = String::new();
        for i in 0..BATCH {
            out.push_str(&format!("ping {}\n", batch * BATCH + i));
        }
        assert!(write_all(&mut conn, out.as_bytes(), deadline));
        let mut acc = Vec::new();
        let mut buf = [0u8; 8192];
        while acc.iter().filter(|&&b| b == b'\n').count() < BATCH {
            assert!(Instant::now() <= deadline, "echo batch timed out");
            match conn.try_read(&mut buf) {
                Err(e) => panic!("read failed: {e}"),
                Ok(ReadOutcome::Closed) => panic!("server closed mid-run"),
                Ok(ReadOutcome::WouldBlock) => std::thread::sleep(Duration::from_micros(100)),
                Ok(ReadOutcome::Data(n)) => acc.extend_from_slice(&buf[..n]),
            }
        }
    }
    drop(conn);
    // Idle tail: dozens of watchdog ticks with nothing happening, so the
    // liveness invariant judges a quiet-but-healthy dispatcher.
    std::thread::sleep(Duration::from_millis(100));

    assert!(!server.watchdog_fired(), "spurious watchdog trigger");
    assert_eq!(server.diag().watchdog_triggers(), 0);
    assert_eq!(
        server.diag().snapshots_captured(),
        0,
        "healthy load must capture no snapshots"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------
// Reconciliation: JSON snapshot vs text expositions
// ---------------------------------------------------------------------

/// `/debug/snapshot` must reconcile with `/server-status`: the same
/// counters, one connection apart (each scrape is itself a connection).
/// The snapshot's worker table must show the worker capturing it,
/// running the handle stage on the scrape's own connection.
#[test]
fn http_snapshot_reconciles_with_server_status() {
    let mut store = MemStore::new();
    store.insert("/index.html", b"<html>home</html>".to_vec());
    let hub = DiagHub::new(ServerStats::new_shared(), MetricsRegistry::enabled());
    let service = RoutedService::new(StaticFileService::new(store, None))
        .route("/page", text_page(Status::Ok, |_| "dynamic page".into()))
        .server_status_diag(hub.clone())
        .debug_snapshot(hub.clone());
    let opts = ServerOptions {
        mode: Mode::Debug,
        profiling: true,
        ..cops_http_options()
    };
    let (listener, connector) = mem::listener("diag-http-reconcile");
    let server = ServerBuilder::new(opts, HttpCodec::new(), service)
        .unwrap()
        .diag(hub)
        .serve(listener);

    for _ in 0..5 {
        assert_eq!(get_body(&connector, "/page"), "dynamic page");
    }
    // Scrape six: the Prometheus text surface.
    let status = get_body(&connector, "/server-status");
    for needle in [
        "nserver_connections_accepted 6",
        "nserver_requests_decoded 6",
        "nserver_stage_latency_us_count{stage=\"handle\"} 5",
    ] {
        assert!(status.contains(needle), "missing {needle:?} in:\n{status}");
    }
    // Scrape seven: the JSON snapshot, captured while its own handle
    // stage is open — so counters run one connection ahead of scrape six
    // and the worker table names the capturing worker.
    let snapshot = get_body(&connector, "/debug/snapshot");
    for needle in [
        "\"reason\":\"http_on_demand\"",
        "\"connections_accepted\":7",
        "\"requests_decoded\":7",
        "\"state\":\"running\",\"stage\":\"handle\",\"conn\":7",
        "\"watchdog\":{\"triggers\":0}",
    ] {
        assert!(
            snapshot.contains(needle),
            "missing {needle:?} in:\n{snapshot}"
        );
    }
    // `?latest` replays the stored capture instead of taking a new one.
    let replay = get_body(&connector, "/debug/snapshot?latest");
    assert!(
        replay.contains("\"connections_accepted\":7"),
        "replay drifted:\n{replay}"
    );
    assert_eq!(server.diag().snapshots_captured(), 1);
    server.shutdown();
}

/// FTP `SITE DUMP` must reconcile with `STAT` over the same session:
/// STAT renders at four decoded commands, the dump (command five) shows
/// five, and both report the single control connection.
#[test]
fn ftp_site_dump_reconciles_with_stat() {
    let hub = DiagHub::new(ServerStats::new_shared(), MetricsRegistry::enabled());
    let vfs = Arc::new(Vfs::new());
    let users = Arc::new(UserRegistry::new().with_anonymous());
    let service = FtpService::new(vfs, users);
    service.attach_stats(Arc::clone(hub.stats()), Arc::clone(hub.metrics()));
    service.attach_diag(hub.clone());
    let opts = ServerOptions {
        mode: Mode::Debug,
        profiling: true,
        ..cops_ftp_options()
    };
    let (listener, connector) = mem::listener("diag-ftp-reconcile");
    let server = ServerBuilder::new(opts, FtpCodec, service)
        .unwrap()
        .diag(hub)
        .serve(listener);

    let mut conn = connector.connect();
    let deadline = Instant::now() + Duration::from_secs(5);
    read_until(&mut conn, "220", deadline); // greeting
    for (cmd, code) in [
        ("USER anonymous", "331"),
        ("PASS guest", "230"),
        ("PWD", "257"),
    ] {
        assert!(write_all(
            &mut conn,
            format!("{cmd}\r\n").as_bytes(),
            deadline
        ));
        read_until(&mut conn, code, deadline);
    }
    assert!(write_all(&mut conn, b"STAT\r\n", deadline));
    let stat = read_until(&mut conn, "211 End", deadline);
    assert!(stat.contains("connections accepted: 1"), "STAT:\n{stat}");
    assert!(stat.contains("decode: count=4"), "STAT:\n{stat}");

    assert!(write_all(&mut conn, b"SITE DUMP\r\n", deadline));
    let dump = read_until(&mut conn, "211 End", deadline);
    for needle in [
        "\"reason\":\"ftp_site_dump\"",
        "\"connections_accepted\":1",
        "\"requests_decoded\":5",
        "\"state\":\"running\",\"stage\":\"handle\",\"conn\":1",
    ] {
        assert!(dump.contains(needle), "missing {needle:?} in:\n{dump}");
    }
    assert_eq!(server.diag().snapshots_captured(), 1);

    assert!(write_all(&mut conn, b"QUIT\r\n", deadline));
    read_until(&mut conn, "221", deadline);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Strict Prometheus text-format grammar
// ---------------------------------------------------------------------

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().unwrap().is_ascii_alphabetic()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_key(s: &str) -> bool {
    !s.is_empty()
        && (s.chars().next().unwrap().is_ascii_alphabetic() || s.starts_with('_'))
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Split `k="v",k2="v2"` into pairs, validating quoting and key syntax.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest}"))?;
        let key = &rest[..eq];
        if !valid_label_key(key) {
            return Err(format!("bad label key {key:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("unquoted label value after {key}"));
        }
        // Our expositions never emit escaped quotes inside label values,
        // so the close quote is the next one.
        let close = after[1..]
            .find('"')
            .ok_or_else(|| format!("unterminated label value for {key}"))?;
        let value = &after[1..1 + close];
        pairs.push((key.to_string(), value.to_string()));
        rest = &after[2 + close..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
            if rest.is_empty() {
                return Err("trailing comma in label set".into());
            }
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
    Ok(pairs)
}

#[derive(Default)]
struct Family {
    help: bool,
    typ: Option<String>,
    samples: usize,
    closed: bool,
}

/// Parse a full exposition under the strict rules our writers promise:
/// every family declares `# HELP` then `# TYPE` exactly once before its
/// samples, families are contiguous, every declared family has samples,
/// sample names and labels are grammatical, values are finite numbers,
/// no series repeats, histogram families emit only `_bucket`/`_sum`/
/// `_count` with a `+Inf` bucket whose count equals `_count` and
/// cumulative bucket counts that never decrease.
fn strict_parse(text: &str) -> BTreeMap<String, Family> {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    let mut seen_series: BTreeMap<String, ()> = BTreeMap::new();
    let mut current: Option<String> = None;
    // family -> (labels-without-le rendered, le, cumulative count)
    let mut buckets: Vec<(String, String, f64, f64)> = Vec::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();

    for (no, line) in text.lines().enumerate() {
        let n = no + 1;
        if line.is_empty() {
            continue;
        }
        assert_eq!(line.trim(), line, "line {n}: stray whitespace: {line:?}");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("line {n}: HELP without text"));
            assert!(
                valid_metric_name(name),
                "line {n}: bad family name {name:?}"
            );
            assert!(!help.is_empty(), "line {n}: empty HELP text");
            let fam = families.entry(name.to_string()).or_default();
            assert!(!fam.help, "line {n}: duplicate HELP for {name}");
            assert_eq!(fam.samples, 0, "line {n}: HELP after samples for {name}");
            fam.help = true;
            // A new header closes the previous family block.
            if let Some(prev) = current.replace(name.to_string()) {
                if prev != name {
                    families.get_mut(&prev).unwrap().closed = true;
                }
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, typ) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("line {n}: TYPE without kind"));
            assert!(
                matches!(typ, "counter" | "gauge" | "histogram"),
                "line {n}: unknown type {typ:?}"
            );
            let fam = families
                .get_mut(name)
                .unwrap_or_else(|| panic!("line {n}: TYPE before HELP for {name}"));
            assert!(fam.help, "line {n}: TYPE before HELP for {name}");
            assert!(fam.typ.is_none(), "line {n}: duplicate TYPE for {name}");
            assert_eq!(fam.samples, 0, "line {n}: TYPE after samples for {name}");
            fam.typ = Some(typ.to_string());
            continue;
        }
        assert!(
            !line.starts_with('#'),
            "line {n}: malformed comment {line:?}"
        );

        // A sample line: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("line {n}: no value: {line:?}"));
        let v: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("line {n}: bad value {value:?}"));
        assert!(v.is_finite(), "line {n}: non-finite value");
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("line {n}: unterminated labels"));
                (
                    name,
                    parse_labels(body).unwrap_or_else(|e| panic!("line {n}: {e}")),
                )
            }
            None => (series, Vec::new()),
        };
        assert!(
            valid_metric_name(name),
            "line {n}: bad sample name {name:?}"
        );
        assert!(
            seen_series.insert(series.to_string(), ()).is_none(),
            "line {n}: duplicate series {series}"
        );

        // Resolve the declaring family: histograms own their suffixed
        // samples; everything else must match a declared name exactly.
        let fam_name = ["_bucket", "_sum", "_count"]
            .iter()
            .filter_map(|suf| series.split('{').next().unwrap().strip_suffix(suf))
            .find(|base| {
                families
                    .get(*base)
                    .is_some_and(|f| f.typ.as_deref() == Some("histogram"))
            })
            .unwrap_or(name)
            .to_string();
        let fam = families
            .get_mut(&fam_name)
            .unwrap_or_else(|| panic!("line {n}: sample {series} has no declared family"));
        assert!(
            fam.help && fam.typ.is_some(),
            "line {n}: {fam_name} samples before declaration"
        );
        assert!(
            !fam.closed,
            "line {n}: family {fam_name} not contiguous (resumed after closing)"
        );
        fam.samples += 1;
        if current.as_deref() != Some(fam_name.as_str()) {
            if let Some(prev) = current.replace(fam_name.clone()) {
                families.get_mut(&prev).unwrap().closed = true;
            }
        }
        assert!(v >= 0.0, "line {n}: negative sample in our exposition");

        if families[&fam_name].typ.as_deref() == Some("histogram") {
            let others: Vec<String> = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let key = others.join(",");
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .unwrap_or_else(|| panic!("line {n}: bucket without le"))
                    .1
                    .clone();
                let le_v = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse()
                        .unwrap_or_else(|_| panic!("line {n}: bad le {le:?}"))
                };
                buckets.push((fam_name.clone(), key, le_v, v));
            } else if name.ends_with("_count") {
                counts.insert((fam_name.clone(), key), v);
            } else {
                assert!(
                    name.ends_with("_sum"),
                    "line {n}: stray histogram sample {name}"
                );
            }
        } else {
            assert!(
                !labels.iter().any(|(k, _)| k == "le"),
                "line {n}: le label outside a histogram"
            );
        }
    }

    // Histogram invariants: cumulative buckets never decrease and the
    // +Inf bucket equals _count, per labelled sub-series.
    let mut by_series: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    for (fam, key, le, v) in buckets {
        by_series.entry((fam, key)).or_default().push((le, v));
    }
    for ((fam, key), mut bs) in by_series {
        bs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut prev = 0.0;
        for (le, v) in &bs {
            assert!(*v >= prev, "{fam}{{{key}}}: bucket le={le} decreased");
            prev = *v;
        }
        let (last_le, last_v) = bs.last().unwrap();
        assert!(last_le.is_infinite(), "{fam}{{{key}}}: no +Inf bucket");
        let count = counts
            .get(&(fam.clone(), key.clone()))
            .unwrap_or_else(|| panic!("{fam}{{{key}}}: buckets without _count"));
        assert_eq!(*last_v, *count, "{fam}{{{key}}}: +Inf bucket != _count");
    }

    for (name, fam) in &families {
        assert!(fam.typ.is_some(), "family {name} declared HELP but no TYPE");
        assert!(
            fam.samples > 0,
            "family {name} declared but emitted no samples"
        );
    }
    families
}

/// The full exposition of a traffic-serving, fully wired server (cache,
/// overload, watchdog, trace ring all live) parses under the strict
/// Prometheus text-format grammar, and carries every family the
/// diagnostics layer promises.
#[test]
fn full_exposition_is_strictly_well_formed_prometheus_text() {
    let mut store = MemStore::new();
    store.insert("/a.txt", vec![b'a'; 600]);
    store.insert("/b.txt", vec![b'b'; 300]);
    let cache = SharedFileCache::sharded(1 << 20, PolicyKind::Lru, nserver_cache::DEFAULT_SHARDS);
    let hub = DiagHub::new(ServerStats::new_shared(), MetricsRegistry::enabled());
    hub.set_cache_provider(cache_stats_provider(cache.clone()));
    let service = RoutedService::new(StaticFileService::new(store, Some(cache)))
        .server_status_diag(hub.clone());
    let opts = ServerOptions {
        mode: Mode::Debug,
        profiling: true,
        overload_control: OverloadControl::Watermark { high: 256, low: 8 },
        ..cops_http_options()
    };
    let (listener, connector) = mem::listener("diag-prom-grammar");
    let server = ServerBuilder::new(opts, HttpCodec::new(), service)
        .unwrap()
        .diag(hub)
        .watchdog(WatchdogConfig::default())
        .serve(listener);

    // Traffic that exercises every family: cache misses then hits, and
    // enough requests for non-trivial histograms.
    for _ in 0..3 {
        for path in ["/a.txt", "/b.txt"] {
            let _ = get_body(&connector, path);
        }
    }
    let text = get_body(&connector, "/server-status");
    let families = strict_parse(&text);

    for required in [
        "nserver_connections_accepted",
        "nserver_requests_decoded",
        "nserver_stage_latency_us",
        "nserver_stage_latency_quantile_us",
        "nserver_queue_wait_us",
        "nserver_queue_wait_quantile_us",
        "nserver_queue_depth",
        "nserver_queue_depth_high_water",
        "nserver_trace_dropped_spans",
        "nserver_cache_hits",
        "nserver_cache_misses",
        "nserver_cache_evictions",
        "nserver_cache_coalesced_waits",
        "nserver_cache_used_bytes",
        "nserver_overload_paused",
        "nserver_overload_pauses",
        "nserver_overload_resumes",
        "nserver_workers_running",
        "nserver_workers_idle",
        "nserver_watchdog_triggers",
        "nserver_diag_snapshots",
    ] {
        assert!(
            families.contains_key(required),
            "family {required} missing from exposition"
        );
    }
    assert_eq!(
        families["nserver_stage_latency_us"].typ.as_deref(),
        Some("histogram")
    );
    assert_eq!(
        families["nserver_connections_accepted"].typ.as_deref(),
        Some("counter")
    );
    assert_eq!(
        families["nserver_queue_depth"].typ.as_deref(),
        Some("gauge")
    );
    server.shutdown();
}
