//! Measurement utilities: streaming moments, latency histograms, and the
//! Jain fairness index used in Fig. 4.

use crate::time::SimTime;

/// Jain fairness index over per-client allocations:
/// `f(x) = (Σ xᵢ)² / (N · Σ xᵢ²)`.
///
/// Equal shares give 1.0; if k of N clients receive equal service and the
/// rest nothing, the index is k/N (both properties are unit-tested, since
/// the paper uses the latter to interpret Apache's 0.51 at 1024 clients).
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        // All-zero allocation: conventionally perfectly fair.
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sumsq)
}

/// Streaming count/mean/variance/min/max (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        if self.n == 1 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Add a [`SimTime`] observation in milliseconds.
    pub fn add_time_ms(&mut self, t: SimTime) {
        self.add(t.as_millis_f64());
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator; 0 when n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel combination).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A logarithmic latency histogram over microsecond durations.
///
/// Buckets are powers of two: bucket `i` covers `[2^i, 2^(i+1))` µs, with
/// bucket 0 covering `[0, 2)`. Good to ~2× resolution across twelve decades
/// with 64 fixed counters — plenty for shape comparisons.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum_us: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum_us: 0,
        }
    }

    /// Bucket index — delegated to the promoted core histogram so the
    /// simulator and the O11 runtime agree bucket-for-bucket.
    fn bucket_of(us: u64) -> usize {
        nserver_core::metrics::bucket_of(us)
    }

    /// Record a duration.
    pub fn record(&mut self, t: SimTime) {
        let us = t.as_micros();
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us += us as u128;
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean duration.
    pub fn mean(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_micros((self.sum_us / self.count as u128) as u64)
        }
    }

    /// Approximate quantile (`q` in `[0,1]`): upper bound of the bucket
    /// containing the q-th observation.
    pub fn quantile(&self, q: f64) -> SimTime {
        if self.count == 0 {
            return SimTime::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return SimTime::from_micros(nserver_core::metrics::bucket_upper_us(i));
            }
        }
        SimTime::from_micros(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_equal_allocation_is_one() {
        assert!((jain_index(&[5.0; 10]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_k_of_n_property() {
        // k clients get equal service, N-k get none -> index = k/N.
        let mut xs = vec![0.0; 100];
        for x in xs.iter_mut().take(37) {
            *x = 8.0;
        }
        assert!((jain_index(&xs) - 0.37).abs() < 1e-12);
    }

    #[test]
    fn jain_edge_cases() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn online_stats_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.add(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.add(x);
        }
        for &x in &data[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.add(3.0);
        let before = (a.count(), a.mean());
        a.merge(&OnlineStats::new());
        assert_eq!((a.count(), a.mean()), before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 3.0);
    }

    #[test]
    fn histogram_mean_and_count() {
        let mut h = Histogram::new();
        h.record(SimTime::from_micros(100));
        h.record(SimTime::from_micros(300));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), SimTime::from_micros(200));
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimTime::from_micros(i));
        }
        let q50 = h.quantile(0.5);
        let q95 = h.quantile(0.95);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q95 && q95 <= q99);
        // Median of 1..=1000 µs lies in the bucket containing 500.
        assert!(q50 >= SimTime::from_micros(500));
        assert!(q50 <= SimTime::from_micros(1023));
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.mean(), SimTime::ZERO);
        assert_eq!(h.quantile(0.99), SimTime::ZERO);
    }
}
