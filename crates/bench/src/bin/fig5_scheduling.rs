//! Fig. 5 — differentiated service levels via event scheduling (option
//! O8): throughput of corporate-portal vs personal-homepage requests at
//! several priority-quota settings, plus the portal-only maximum.
//!
//! Expected shape (paper): the throughput ratio between the classes
//! tracks the quota ratio, with a small gap ("the COPS-HTTP variant
//! exerts no control over the management and scheduling of many operating
//! system resources").

use nserver_baselines::{run_scheduling_experiment, SchedulingParams};
use nserver_bench::{quick_mode, render_table, write_csv};
use nserver_netsim::SimTime;

fn main() {
    let quick = quick_mode();
    let shrink = |mut p: SchedulingParams| {
        if quick {
            p.warmup = SimTime::from_secs(2);
            p.measure = SimTime::from_secs(15);
        }
        p
    };

    println!("FIG. 5 — SERVICE THROUGHPUT FOR DIFFERENTIATED SERVICE LEVELS");
    println!(
        "priority setting x/y: x = homepage quota, y = corporate-portal quota;\n\
         cache disabled, dual-CPU host, both classes saturating the server\n"
    );

    let settings: [(u32, u32); 4] = [(1, 1), (1, 2), (1, 5), (1, 10)];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (x, y) in settings {
        let out = run_scheduling_experiment(shrink(SchedulingParams::paper(x, y)));
        rows.push(vec![
            format!("{x}/{y}"),
            format!("{:.1}", out.homepage_rps),
            format!("{:.1}", out.portal_rps),
            format!("{:.2}", out.ratio()),
            format!("{:.2}", y as f64 / x as f64),
        ]);
        csv.push(format!(
            "{x}/{y},{:.2},{:.2},{:.3}",
            out.homepage_rps,
            out.portal_rps,
            out.ratio()
        ));
        eprintln!("  ran quota {x}/{y}");
    }
    let max = run_scheduling_experiment(shrink(SchedulingParams::portal_only()));
    rows.push(vec![
        "portal only".into(),
        "0.0".into(),
        format!("{:.1}", max.portal_rps),
        "-".into(),
        "-".into(),
    ]);
    csv.push(format!("portal_only,0,{:.2},0", max.portal_rps));

    println!(
        "{}",
        render_table(
            &[
                "setting x/y",
                "homepage rps",
                "portal rps",
                "measured ratio",
                "quota ratio",
            ],
            &rows,
        )
    );
    println!(
        "Paper shape: measured portal/homepage ratio ≈ quota ratio y/x, with a\n\
         small gap; the rightmost column is the portal-only maximum."
    );
    write_csv(
        "fig5_scheduling.csv",
        "setting,homepage_rps,portal_rps,ratio",
        &csv,
    );
}
