//! Event queues: the FIFO default and the blocking wrapper the Event
//! Processor workers consume from.
//!
//! When event scheduling (O8) is enabled, the generated framework swaps the
//! plain FIFO for the [`crate::scheduler::PriorityQuotaQueue`] — the paper
//! calls out precisely this substitution as one of the crosscutting
//! structural variations the template performs.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::event::Priority;
use crate::metrics::MetricsRegistry;

/// An in-memory event queue. Implementations decide the service order;
/// callers supply a priority that FIFO queues simply ignore.
pub trait EventQueue<T>: Send {
    /// Enqueue an item at the given priority.
    fn push(&mut self, item: T, prio: Priority);
    /// Dequeue the next item according to the queue's discipline.
    fn pop(&mut self) -> Option<T>;
    /// Items currently queued.
    fn len(&self) -> usize;
    /// True when no items are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Plain FIFO queue (O8 = No).
#[derive(Debug)]
pub struct FifoQueue<T> {
    q: VecDeque<T>,
}

impl<T> Default for FifoQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FifoQueue<T> {
    /// Empty FIFO queue.
    pub fn new() -> Self {
        Self { q: VecDeque::new() }
    }
}

impl<T: Send> EventQueue<T> for FifoQueue<T> {
    fn push(&mut self, item: T, _prio: Priority) {
        self.q.push_back(item);
    }

    fn pop(&mut self) -> Option<T> {
        self.q.pop_front()
    }

    fn len(&self) -> usize {
        self.q.len()
    }
}

/// Low-watermark value paired with the callback it triggers.
type DrainHook = (usize, Box<dyn Fn() + Send + Sync>);

/// Envelope pairing an item with its enqueue instant. The stamp travels
/// with the item through whatever discipline the inner queue applies
/// (FIFO or priority-quota reordering), so the dequeue side can attribute
/// the exact per-item wait. The clock is only read when a metrics
/// registry is attached *and* enabled — the O11 = No hot path stays
/// clock-free and allocation-free. Only [`BlockingQueue`] constructs
/// these; the type is public solely because it names the inner queue's
/// item type in [`BlockingQueue::new`].
pub struct Stamped<T> {
    item: T,
    enqueued_at: Option<Instant>,
}

/// A thread-safe blocking façade over any [`EventQueue`]: workers block on
/// `pop_wait`, the dispatcher pushes, and the overload controller (O9)
/// observes the exact queue length through a shared gauge without taking
/// the lock.
pub struct BlockingQueue<T> {
    inner: Mutex<Box<dyn EventQueue<Stamped<T>>>>,
    available: Condvar,
    len_gauge: Arc<AtomicUsize>,
    closed: Mutex<bool>,
    /// Queue-wait accounting (O11): when attached, every push stamps the
    /// enqueue instant and every pop records the enqueue→dequeue delay
    /// into the registry's queue-wait histogram.
    wait_metrics: OnceLock<Arc<MetricsRegistry>>,
    /// Workers currently parked in `pop_wait`. Maintained under the inner
    /// lock so an observer that sees a waiter knows its `notify` cannot be
    /// lost — test synchronization without sleeps.
    waiters: AtomicUsize,
    /// Fires when a pop brings the length down to the low mark; the
    /// watermark controller (O9) uses it to wake the gated acceptor the
    /// moment the backlog drains. `(low, hook)`.
    drain_hook: Mutex<Option<DrainHook>>,
    drain_armed: AtomicBool,
}

impl<T: Send + 'static> BlockingQueue<T> {
    /// Wrap a queue discipline. The discipline stores [`Stamped`]
    /// envelopes, but generic inference keeps call sites unchanged:
    /// `BlockingQueue::new(Box::new(FifoQueue::new()))` still compiles.
    pub fn new(queue: Box<dyn EventQueue<Stamped<T>>>) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(queue),
            available: Condvar::new(),
            len_gauge: Arc::new(AtomicUsize::new(0)),
            closed: Mutex::new(false),
            wait_metrics: OnceLock::new(),
            waiters: AtomicUsize::new(0),
            drain_hook: Mutex::new(None),
            drain_armed: AtomicBool::new(false),
        })
    }

    /// Attach the registry whose queue-wait histogram pops record into.
    /// One-shot; later calls are ignored. A disabled registry keeps the
    /// stamping off entirely (no clock reads on push or pop).
    pub fn set_wait_metrics(&self, metrics: Arc<MetricsRegistry>) {
        let _ = self.wait_metrics.set(metrics);
    }

    fn stamp(&self) -> Option<Instant> {
        match self.wait_metrics.get() {
            Some(m) if m.is_enabled() => Some(Instant::now()),
            _ => None,
        }
    }

    fn record_wait(&self, enqueued_at: Option<Instant>) {
        if let (Some(at), Some(m)) = (enqueued_at, self.wait_metrics.get()) {
            m.record_queue_wait(at.elapsed().as_micros() as u64);
        }
    }

    /// Shared gauge mirroring the queue length (for watermark probes).
    pub fn len_gauge(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.len_gauge)
    }

    /// Workers currently blocked in [`BlockingQueue::pop_wait`].
    pub fn waiters(&self) -> usize {
        self.waiters.load(Ordering::Relaxed)
    }

    /// Install the drain notification: `hook` runs (off the queue lock)
    /// whenever a pop lowers the length to exactly `low`. Pops are
    /// serialized by the inner lock, so the length passes through every
    /// value on its way down and the crossing is never skipped.
    pub fn set_drain_hook(&self, low: usize, hook: impl Fn() + Send + Sync + 'static) {
        *self.drain_hook.lock() = Some((low, Box::new(hook)));
        self.drain_armed.store(true, Ordering::Relaxed);
    }

    fn maybe_fire_drain(&self, len: usize) {
        if !self.drain_armed.load(Ordering::Relaxed) {
            return;
        }
        let hook = self.drain_hook.lock();
        if let Some((low, f)) = hook.as_ref() {
            if len == *low {
                f();
            }
        }
    }

    /// Current queue length.
    pub fn len(&self) -> usize {
        self.len_gauge.load(Ordering::Relaxed)
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue an item; wakes one waiting worker.
    pub fn push(&self, item: T, prio: Priority) {
        let stamped = Stamped {
            item,
            enqueued_at: self.stamp(),
        };
        let mut q = self.inner.lock();
        q.push(stamped, prio);
        self.len_gauge.store(q.len(), Ordering::Relaxed);
        drop(q);
        self.available.notify_one();
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        let mut q = self.inner.lock();
        let item = q.pop();
        let len = q.len();
        self.len_gauge.store(len, Ordering::Relaxed);
        drop(q);
        item.map(|s| {
            self.maybe_fire_drain(len);
            self.record_wait(s.enqueued_at);
            s.item
        })
    }

    /// Block up to `timeout` for an item. Returns `None` on timeout or when
    /// the queue has been closed and drained.
    pub fn pop_wait(&self, timeout: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.inner.lock();
        loop {
            if let Some(s) = q.pop() {
                let len = q.len();
                self.len_gauge.store(len, Ordering::Relaxed);
                drop(q);
                self.maybe_fire_drain(len);
                self.record_wait(s.enqueued_at);
                return Some(s.item);
            }
            if *self.closed.lock() {
                return None;
            }
            // Wait on the guard we already hold: releasing and re-taking
            // the lock here would open a missed-wakeup window between the
            // emptiness check and the wait. The waiter count is bumped
            // under the same lock for the same reason: whoever observes it
            // pushes (and notifies) only after we are parked.
            self.waiters.fetch_add(1, Ordering::Relaxed);
            let timed_out = self.available.wait_until(&mut q, deadline).timed_out();
            self.waiters.fetch_sub(1, Ordering::Relaxed);
            if timed_out {
                let item = q.pop();
                let len = q.len();
                self.len_gauge.store(len, Ordering::Relaxed);
                drop(q);
                return item.map(|s| {
                    self.maybe_fire_drain(len);
                    self.record_wait(s.enqueued_at);
                    s.item
                });
            }
        }
    }

    /// Close the queue: waiting workers wake and drain what remains, then
    /// receive `None`.
    pub fn close(&self) {
        *self.closed.lock() = true;
        self.available.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        *self.closed.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_preserves_order() {
        let mut q = FifoQueue::new();
        for i in 0..10 {
            q.push(i, Priority(0));
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_ignores_priority() {
        let mut q = FifoQueue::new();
        q.push("low", Priority(9));
        q.push("high", Priority(0));
        assert_eq!(q.pop(), Some("low"));
    }

    #[test]
    fn blocking_queue_push_pop() {
        let q = BlockingQueue::new(Box::new(FifoQueue::new()));
        q.push(1, Priority(0));
        q.push(2, Priority(0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.pop_wait(Duration::from_millis(1)), Some(2));
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop_wait(Duration::from_millis(1)), None);
    }

    /// Deterministic replacement for the old sleep-and-hope: the waiter
    /// gauge is bumped under the queue lock, so once it reads 1 the worker
    /// is parked (or about to re-check with the notification pending).
    fn await_waiter<T: Send + 'static>(q: &BlockingQueue<T>) {
        while q.waiters() == 0 {
            thread::yield_now();
        }
    }

    #[test]
    fn blocking_queue_wakes_waiter() {
        let q = BlockingQueue::new(Box::new(FifoQueue::new()));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.pop_wait(Duration::from_secs(5)));
        await_waiter(&q);
        q.push(42, Priority(0));
        assert_eq!(h.join().unwrap(), Some(42));
    }

    #[test]
    fn close_releases_waiters() {
        let q: Arc<BlockingQueue<i32>> = BlockingQueue::new(Box::new(FifoQueue::new()));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.pop_wait(Duration::from_secs(5)));
        await_waiter(&q);
        q.close();
        assert_eq!(h.join().unwrap(), None);
        assert!(q.is_closed());
        assert_eq!(q.waiters(), 0);
    }

    #[test]
    fn drain_hook_fires_on_low_mark_crossing() {
        let q = BlockingQueue::new(Box::new(FifoQueue::new()));
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        q.set_drain_hook(1, move || {
            f.fetch_add(1, Ordering::Relaxed);
        });
        for i in 0..3 {
            q.push(i, Priority(0));
        }
        assert_eq!(q.try_pop(), Some(0)); // 3 -> 2: no fire
        assert_eq!(fired.load(Ordering::Relaxed), 0);
        assert_eq!(q.try_pop(), Some(1)); // 2 -> 1: fire
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        assert_eq!(q.try_pop(), Some(2)); // 1 -> 0: no fire (already low)
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        // Refill above the mark and drain through pop_wait too.
        q.push(9, Priority(0));
        q.push(10, Priority(0));
        assert_eq!(q.pop_wait(Duration::from_millis(10)), Some(9));
        assert_eq!(fired.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn close_still_drains_pending_items() {
        let q = BlockingQueue::new(Box::new(FifoQueue::new()));
        q.push(7, Priority(0));
        q.close();
        assert_eq!(q.pop_wait(Duration::from_millis(1)), Some(7));
        assert_eq!(q.pop_wait(Duration::from_millis(1)), None);
    }

    #[test]
    fn len_gauge_tracks_length() {
        let q = BlockingQueue::new(Box::new(FifoQueue::new()));
        let gauge = q.len_gauge();
        q.push(1, Priority(0));
        q.push(2, Priority(0));
        assert_eq!(gauge.load(Ordering::Relaxed), 2);
        q.try_pop();
        assert_eq!(gauge.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn attached_metrics_record_queue_wait() {
        let q = BlockingQueue::new(Box::new(FifoQueue::new()));
        let m = MetricsRegistry::enabled();
        q.set_wait_metrics(Arc::clone(&m));
        q.push(1, Priority(0));
        q.push(2, Priority(0));
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.pop_wait(Duration::from_millis(5)), Some(2));
        let lat = m.latency_snapshot();
        assert_eq!(lat.queue_wait.count, 2, "both pops must record a wait");
    }

    #[test]
    fn disabled_metrics_record_no_queue_wait() {
        let q = BlockingQueue::new(Box::new(FifoQueue::new()));
        let m = MetricsRegistry::disabled();
        q.set_wait_metrics(Arc::clone(&m));
        q.push(1, Priority(0));
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(m.latency_snapshot().queue_wait.count, 0);
        assert_eq!(m.samples_recorded(), 0, "O11=No pin: zero samples");
    }

    #[test]
    fn concurrent_producers_consumers_deliver_everything() {
        let q = BlockingQueue::new(Box::new(FifoQueue::new()));
        let mut producers = Vec::new();
        for p in 0..4 {
            let q = Arc::clone(&q);
            producers.push(thread::spawn(move || {
                for i in 0..250 {
                    q.push(p * 1000 + i, Priority(0));
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let q = Arc::clone(&q);
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop_wait(Duration::from_millis(200)) {
                    got.push(v);
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        assert_eq!(all.len(), 1000);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000, "duplicate or lost items");
    }
}
