//! A hashed timer wheel driving time-based framework behaviour — most
//! importantly the termination of long-idle connections (option O7):
//! "Long-idle connections may consume unnecessary resources and degrade
//! the performance of network server applications."
//!
//! The wheel is deliberately framework-internal: timers are polled from
//! the dispatcher loop (single consumer), so no locking is needed.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// A scheduled timer returning a user key `K` when it fires.
#[derive(Debug)]
struct TimerEntry<K> {
    deadline: Instant,
    key: K,
}

/// Hashed timer wheel with fixed-width slots.
#[derive(Debug)]
pub struct TimerWheel<K> {
    slots: Vec<VecDeque<TimerEntry<K>>>,
    slot_width: Duration,
    /// Start of the slot `cursor` currently points at.
    slot_start: Instant,
    cursor: usize,
    len: usize,
}

impl<K> TimerWheel<K> {
    /// Create a wheel of `slots` buckets, each `slot_width` wide. The wheel
    /// spans `slots × slot_width`; longer timeouts are parked in the slot
    /// they hash to and re-checked on expiry (standard hashed-wheel
    /// behaviour).
    pub fn new(slots: usize, slot_width: Duration, now: Instant) -> Self {
        assert!(slots >= 2, "wheel needs at least two slots");
        assert!(slot_width > Duration::ZERO);
        Self {
            slots: (0..slots).map(|_| VecDeque::new()).collect(),
            slot_width,
            slot_start: now,
            cursor: 0,
            len: 0,
        }
    }

    /// Scheduled timer count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no timers are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `key` to fire `after` the given `now`.
    pub fn schedule(&mut self, now: Instant, after: Duration, key: K) {
        let deadline = now + after;
        let ticks = (after.as_nanos() / self.slot_width.as_nanos().max(1)) as usize;
        let slot = (self.cursor + ticks.min(self.slots.len() * 8)) % self.slots.len();
        self.slots[slot].push_back(TimerEntry { deadline, key });
        self.len += 1;
    }

    /// Advance the wheel to `now`, collecting every fired key.
    pub fn poll(&mut self, now: Instant) -> Vec<K> {
        let mut fired = Vec::new();
        // Advance slot by slot until the wheel catches up with `now`.
        loop {
            self.collect_expired(now, &mut fired);
            let slot_end = self.slot_start + self.slot_width;
            if slot_end <= now {
                self.slot_start = slot_end;
                self.cursor = (self.cursor + 1) % self.slots.len();
            } else {
                break;
            }
        }
        fired
    }

    fn collect_expired(&mut self, now: Instant, fired: &mut Vec<K>) {
        let slot = &mut self.slots[self.cursor];
        let mut remaining = VecDeque::new();
        while let Some(e) = slot.pop_front() {
            if e.deadline <= now {
                fired.push(e.key);
                self.len -= 1;
            } else {
                remaining.push_back(e);
            }
        }
        *slot = remaining;
    }
}

/// Per-connection idle tracking for O7: records last activity and reports
/// which connections exceeded the idle limit on each sweep.
#[derive(Debug)]
pub struct IdleTracker {
    limit: Duration,
    last_activity: std::collections::HashMap<u64, Instant>,
}

impl IdleTracker {
    /// Track idleness against the given limit.
    pub fn new(limit: Duration) -> Self {
        Self {
            limit,
            last_activity: std::collections::HashMap::new(),
        }
    }

    /// Record activity (connect, read or write) on a connection.
    pub fn touch(&mut self, conn: u64, now: Instant) {
        self.last_activity.insert(conn, now);
    }

    /// Stop tracking a closed connection.
    pub fn forget(&mut self, conn: u64) {
        self.last_activity.remove(&conn);
    }

    /// Connections idle longer than the limit as of `now`. The returned
    /// connections are forgotten (the caller closes them).
    pub fn sweep(&mut self, now: Instant) -> Vec<u64> {
        let limit = self.limit;
        let expired: Vec<u64> = self
            .last_activity
            .iter()
            .filter(|(_, &t)| now.duration_since(t) > limit)
            .map(|(&c, _)| c)
            .collect();
        for c in &expired {
            self.last_activity.remove(c);
        }
        expired
    }

    /// The earliest instant at which some tracked connection becomes
    /// idle-expired, or `None` when nothing is tracked. The dispatcher
    /// uses this as its poll timeout so it sleeps exactly until the next
    /// sweep is due instead of waking on a fixed cadence.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.last_activity.values().min().map(|&t| t + self.limit)
    }

    /// Number of tracked connections.
    pub fn len(&self) -> usize {
        self.last_activity.len()
    }

    /// True when no connections are tracked.
    pub fn is_empty(&self) -> bool {
        self.last_activity.is_empty()
    }
}

/// Per-connection **stage** deadlines — the hardening companion to
/// [`IdleTracker`] driven by [`crate::options::StageDeadlines`].
///
/// The idle tracker is refreshed by *any* byte, so a slow-loris peer that
/// dribbles bytes keeps its connection alive forever. The stage tracker
/// instead bounds two specific pipeline stages:
///
/// * the **header-read window**: armed at accept and re-armed each time a
///   reply finishes flushing; it is *not* refreshed by partial reads, so a
///   connection that never completes a request expires;
/// * the **write-drain window**: armed while the outbox holds bytes the
///   peer refuses to read, cleared when the outbox drains.
///
/// Like the idle tracker it is dispatcher-local (single consumer, no
/// locking) and reports the earliest deadline so the dispatch loop can use
/// it as its poll timeout.
#[derive(Debug)]
pub struct StageTracker {
    header_limit: Option<Duration>,
    drain_limit: Option<Duration>,
    header: std::collections::HashMap<u64, Instant>,
    drain: std::collections::HashMap<u64, Instant>,
}

impl StageTracker {
    /// Track the given stage limits (`None` disables a stage).
    pub fn new(header_limit: Option<Duration>, drain_limit: Option<Duration>) -> Self {
        Self {
            header_limit,
            drain_limit,
            header: std::collections::HashMap::new(),
            drain: std::collections::HashMap::new(),
        }
    }

    /// Build from the options value; `None` when both stages are disabled.
    pub fn from_options(d: &crate::options::StageDeadlines) -> Option<Self> {
        if d.any() {
            Some(Self::new(
                d.header_read_ms.map(Duration::from_millis),
                d.write_drain_ms.map(Duration::from_millis),
            ))
        } else {
            None
        }
    }

    /// (Re-)arm the header-read window: the connection has until the
    /// deadline to deliver a complete request. Called at accept and after
    /// each completed reply.
    pub fn arm_header(&mut self, conn: u64, now: Instant) {
        if let Some(limit) = self.header_limit {
            self.header.insert(conn, now + limit);
        }
    }

    /// Disarm the header-read window (connection is closing or half-open).
    pub fn clear_header(&mut self, conn: u64) {
        self.header.remove(&conn);
    }

    /// Arm the write-drain window if not already armed: the peer has until
    /// the deadline to start consuming the queued reply bytes.
    pub fn arm_drain(&mut self, conn: u64, now: Instant) {
        if let Some(limit) = self.drain_limit {
            self.drain.entry(conn).or_insert(now + limit);
        }
    }

    /// The outbox drained: disarm the write-drain window.
    pub fn clear_drain(&mut self, conn: u64) {
        self.drain.remove(&conn);
    }

    /// Stop tracking a closed connection entirely.
    pub fn forget(&mut self, conn: u64) {
        self.header.remove(&conn);
        self.drain.remove(&conn);
    }

    /// Connections whose armed stage deadline has passed as of `now`. The
    /// returned connections are forgotten (the caller closes them).
    pub fn sweep(&mut self, now: Instant) -> Vec<u64> {
        let mut expired: Vec<u64> = self
            .header
            .iter()
            .chain(self.drain.iter())
            .filter(|(_, &d)| d <= now)
            .map(|(&c, _)| c)
            .collect();
        expired.sort_unstable();
        expired.dedup();
        for c in &expired {
            self.forget(*c);
        }
        expired
    }

    /// The earliest armed deadline across both stages, or `None` when
    /// nothing is armed.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.header
            .values()
            .chain(self.drain.values())
            .min()
            .copied()
    }

    /// Number of connections with at least one armed stage window.
    pub fn len(&self) -> usize {
        let mut ids: Vec<u64> = self
            .header
            .keys()
            .chain(self.drain.keys())
            .copied()
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// True when no stage window is armed.
    pub fn is_empty(&self) -> bool {
        self.header.is_empty() && self.drain.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_fires_after_deadline() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(8, Duration::from_millis(10), t0);
        w.schedule(t0, Duration::from_millis(25), "a");
        assert!(w.poll(t0 + Duration::from_millis(10)).is_empty());
        assert!(w.poll(t0 + Duration::from_millis(24)).is_empty());
        assert_eq!(w.poll(t0 + Duration::from_millis(30)), vec!["a"]);
        assert!(w.is_empty());
    }

    #[test]
    fn multiple_timers_fire_once_each() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(4, Duration::from_millis(5), t0);
        for i in 0..10u32 {
            w.schedule(t0, Duration::from_millis(i as u64 * 3), i);
        }
        assert_eq!(w.len(), 10);
        let mut all = Vec::new();
        for step in 1..=10 {
            all.extend(w.poll(t0 + Duration::from_millis(step * 4)));
        }
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        assert!(w.poll(t0 + Duration::from_secs(1)).is_empty());
    }

    #[test]
    fn long_timeouts_survive_wheel_wraparound() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(4, Duration::from_millis(1), t0);
        // 20 ms timeout on a 4 ms wheel: wraps five times.
        w.schedule(t0, Duration::from_millis(20), "late");
        assert!(w.poll(t0 + Duration::from_millis(10)).is_empty());
        assert_eq!(w.poll(t0 + Duration::from_millis(21)), vec!["late"]);
    }

    #[test]
    fn zero_delay_fires_immediately() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(4, Duration::from_millis(10), t0);
        w.schedule(t0, Duration::ZERO, 1);
        assert_eq!(w.poll(t0), vec![1]);
    }

    #[test]
    fn idle_tracker_sweeps_only_expired() {
        let t0 = Instant::now();
        let mut it = IdleTracker::new(Duration::from_millis(100));
        it.touch(1, t0);
        it.touch(2, t0 + Duration::from_millis(80));
        let expired = it.sweep(t0 + Duration::from_millis(150));
        assert_eq!(expired, vec![1]);
        assert_eq!(it.len(), 1);
        // Touching resets idleness.
        it.touch(2, t0 + Duration::from_millis(160));
        assert!(it.sweep(t0 + Duration::from_millis(200)).is_empty());
        assert!(!it.is_empty());
    }

    #[test]
    fn idle_tracker_next_deadline_is_earliest_expiry() {
        let t0 = Instant::now();
        let mut it = IdleTracker::new(Duration::from_millis(100));
        assert!(it.next_deadline().is_none());
        it.touch(1, t0 + Duration::from_millis(50));
        it.touch(2, t0);
        assert_eq!(it.next_deadline(), Some(t0 + Duration::from_millis(100)));
        it.forget(2);
        assert_eq!(it.next_deadline(), Some(t0 + Duration::from_millis(150)));
    }

    #[test]
    fn idle_tracker_forget() {
        let t0 = Instant::now();
        let mut it = IdleTracker::new(Duration::from_millis(10));
        it.touch(1, t0);
        it.forget(1);
        assert!(it.sweep(t0 + Duration::from_secs(1)).is_empty());
    }

    #[test]
    fn stage_tracker_header_window_is_not_refreshed_by_partial_activity() {
        let t0 = Instant::now();
        let mut st = StageTracker::new(Some(Duration::from_millis(100)), None);
        st.arm_header(1, t0);
        // Unlike IdleTracker there is no touch-on-read: the window holds
        // from accept until a complete request, so a dribbling peer has no
        // way to extend it.
        assert!(st.sweep(t0 + Duration::from_millis(50)).is_empty());
        assert_eq!(st.sweep(t0 + Duration::from_millis(101)), vec![1]);
        assert!(st.is_empty());
    }

    #[test]
    fn stage_tracker_rearm_header_extends_the_window() {
        let t0 = Instant::now();
        let mut st = StageTracker::new(Some(Duration::from_millis(100)), None);
        st.arm_header(1, t0);
        // A completed reply re-arms the window for the next request.
        st.arm_header(1, t0 + Duration::from_millis(80));
        assert!(st.sweep(t0 + Duration::from_millis(120)).is_empty());
        assert_eq!(st.sweep(t0 + Duration::from_millis(181)), vec![1]);
    }

    #[test]
    fn stage_tracker_drain_window_arms_once_and_clears() {
        let t0 = Instant::now();
        let mut st = StageTracker::new(None, Some(Duration::from_millis(50)));
        st.arm_drain(2, t0);
        // Re-arming while already armed keeps the original deadline: a
        // stalled reader cannot extend its grace by accepting one byte.
        st.arm_drain(2, t0 + Duration::from_millis(40));
        assert_eq!(st.next_deadline(), Some(t0 + Duration::from_millis(50)));
        st.clear_drain(2);
        assert!(st.sweep(t0 + Duration::from_secs(1)).is_empty());
    }

    #[test]
    fn stage_tracker_next_deadline_spans_both_stages() {
        let t0 = Instant::now();
        let mut st = StageTracker::new(
            Some(Duration::from_millis(100)),
            Some(Duration::from_millis(30)),
        );
        st.arm_header(1, t0);
        st.arm_drain(2, t0);
        assert_eq!(st.next_deadline(), Some(t0 + Duration::from_millis(30)));
        assert_eq!(st.len(), 2);
        st.forget(2);
        assert_eq!(st.next_deadline(), Some(t0 + Duration::from_millis(100)));
        st.forget(1);
        assert!(st.next_deadline().is_none());
        assert!(st.is_empty());
    }

    #[test]
    fn stage_tracker_sweep_reports_a_connection_once() {
        let t0 = Instant::now();
        let mut st = StageTracker::new(
            Some(Duration::from_millis(10)),
            Some(Duration::from_millis(10)),
        );
        st.arm_header(3, t0);
        st.arm_drain(3, t0);
        assert_eq!(st.sweep(t0 + Duration::from_millis(20)), vec![3]);
        assert!(st.is_empty());
    }

    #[test]
    fn stage_tracker_from_options() {
        use crate::options::StageDeadlines;
        assert!(StageTracker::from_options(&StageDeadlines::NONE).is_none());
        let st = StageTracker::from_options(&StageDeadlines {
            header_read_ms: Some(5),
            write_drain_ms: None,
        })
        .unwrap();
        assert!(st.is_empty());
    }
}
