//! The Reactor: event demultiplexing and dispatching.
//!
//! "The Event Dispatcher repeatedly polls for ready events and dispatches
//! a registered Event Handler to process each one." Here each dispatcher
//! thread owns a partition of the connections (option O1: one dispatcher,
//! or several with connections partitioned between them), blocks in a
//! [`Poller`] until one of them is ready, performs the framework-owned
//! Read Request and Send Reply steps, and hands the application-dependent
//! steps to the Event Processor (O2 = Yes) or runs them in place (O2 = No
//! — the classic single-threaded Reactor).
//!
//! Readiness is demultiplexed, never scanned: the loop sleeps in
//! `Poller::wait` (epoll for TCP, a condvar wake-list for the in-memory
//! transport) and only touches connections the poller reported. Events
//! that originate off the wire — a worker finished a reply, a Proactor
//! completion arrived, the overload controller unblocked the acceptor,
//! shutdown — reach the loop through a [`DispatchNotifier`], which pairs
//! each dispatcher's injection channel with its poller's [`Waker`].
//!
//! The Acceptor half of the Acceptor-Connector pattern lives here too:
//! dispatcher 0 owns the listening endpoint, consults the overload
//! controller (O9) before accepting, assigns the connection its priority
//! (O8) via the application's priority policy, and distributes accepted
//! connections across dispatchers. While the controller pauses accepting,
//! the listener is deregistered from the poller so a backlog of pending
//! connections cannot spin the loop.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::event::{CompletionToken, ConnId, EventKind, Priority};
use crate::metrics::Stage;
use crate::options::StageDeadlines;
use crate::overload::OverloadController;
use crate::pipeline::{Codec, ConnShared, Engine, Service, Work};
use crate::processor::EventProcessor;
use crate::profiling::ServerStats;
use crate::timer::{IdleTracker, StageTracker};
use crate::trace::SpanEvent;
use crate::transport::{
    Interest, Listener, PollEvent, Poller, ReadOutcome, StreamIo, Waker, LISTENER_TOKEN,
};

/// Where ready events go: the Event Processor pool (O2 = Yes) or inline on
/// the dispatcher (O2 = No).
pub enum SubmitMode<R: Send + 'static> {
    /// Run handlers on the dispatcher thread.
    Inline,
    /// Queue work for the Event Processor.
    Pool(Arc<EventProcessor<Work<R>>>),
}

impl<R: Send + 'static> Clone for SubmitMode<R> {
    fn clone(&self) -> Self {
        match self {
            SubmitMode::Inline => SubmitMode::Inline,
            SubmitMode::Pool(p) => SubmitMode::Pool(Arc::clone(p)),
        }
    }
}

/// How a peer label maps to a scheduling priority (option O8). The paper's
/// Fig. 5 experiment uses the client IP address for exactly this.
pub type PriorityPolicy = Arc<dyn Fn(&str) -> Priority + Send + Sync>;

/// A newly accepted connection being handed to its owning dispatcher.
pub struct NewConn<St> {
    id: ConnId,
    stream: St,
    shared: Arc<ConnShared>,
    /// Accept timestamp — carried across the handoff so the O11
    /// accept→header-read histogram includes the cross-thread latency.
    accepted_at: Instant,
}

/// Routes off-wire events to the dispatcher that owns a connection.
///
/// Worker threads cannot write to the wire themselves (streams are owned
/// by dispatcher loops), so when a reply lands in a connection's outbox —
/// or the connection starts closing — the engine notifies the owning
/// dispatcher here: the connection id goes down that dispatcher's flush
/// channel and its poller is woken. Ownership follows the same partition
/// the acceptor uses: connection `id` belongs to dispatcher `id % n`.
#[derive(Clone)]
pub struct DispatchNotifier {
    targets: Arc<Vec<(Sender<ConnId>, Waker)>>,
}

impl DispatchNotifier {
    /// A notifier wired to every dispatcher's flush channel and waker,
    /// in dispatcher-index order.
    pub fn new(targets: Vec<(Sender<ConnId>, Waker)>) -> Self {
        Self {
            targets: Arc::new(targets),
        }
    }

    /// A no-op notifier for engines that run without dispatcher loops
    /// (unit tests, direct `Engine` use).
    pub fn disabled() -> Self {
        Self {
            targets: Arc::new(Vec::new()),
        }
    }

    /// Tell the dispatcher owning `id` that the connection needs service
    /// (outbox gained bytes, or its close conditions may now hold).
    pub fn notify_conn(&self, id: ConnId) {
        if self.targets.is_empty() {
            return;
        }
        let (tx, waker) = &self.targets[(id as usize) % self.targets.len()];
        let _ = tx.send(id);
        waker.wake();
    }

    /// Wake one dispatcher without queueing a connection (re-check state:
    /// injected connections, accept gate, stop flag).
    pub fn wake(&self, index: usize) {
        if let Some((_, waker)) = self.targets.get(index) {
            waker.wake();
        }
    }

    /// Wake dispatcher 0, the completion sink: it drains the Proactor
    /// completion channel and owns the (possibly gated) acceptor.
    pub fn wake_completion_sink(&self) {
        self.wake(0);
    }

    /// Wake every dispatcher (shutdown).
    pub fn wake_all(&self) {
        for (_, waker) in self.targets.iter() {
            waker.wake();
        }
    }
}

impl std::fmt::Debug for DispatchNotifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DispatchNotifier")
            .field("targets", &self.targets.len())
            .finish()
    }
}

/// One dispatcher thread's configuration and state.
pub struct Dispatcher<C: Codec, S: Service<C>, L: Listener> {
    /// Dispatcher index (0 owns the listener).
    pub index: usize,
    /// Shared engine.
    pub engine: Arc<Engine<C, S>>,
    /// The listening endpoint (dispatcher 0 only).
    pub listener: Option<L>,
    /// This dispatcher's readiness demultiplexer.
    pub poller: L::Poller,
    /// Incoming connections assigned to this dispatcher.
    pub inj_rx: Receiver<NewConn<L::Stream>>,
    /// Handles to every dispatcher's injection queue (used by dispatcher 0).
    pub inj_txs: Vec<Sender<NewConn<L::Stream>>>,
    /// Connections flagged by workers as needing service (reply ready,
    /// close requested). Paired with this dispatcher's waker in the
    /// [`DispatchNotifier`].
    pub flush_rx: Receiver<ConnId>,
    /// Cross-dispatcher notification fabric.
    pub notifier: DispatchNotifier,
    /// Work submission mode.
    pub submit: SubmitMode<C::Response>,
    /// Overload controller (consulted by dispatcher 0 before accepting).
    pub overload: Arc<Mutex<OverloadController>>,
    /// Completion events from the Proactor helper pool (dispatcher 0 only).
    pub completion_rx: Option<Receiver<(CompletionToken, C::Response)>>,
    /// Priority assignment at accept time.
    pub priority_policy: PriorityPolicy,
    /// O7 idle limit.
    pub idle_limit: Option<Duration>,
    /// Per-stage deadlines (header read, write drain).
    pub stage_deadlines: StageDeadlines,
    /// Cooperative shutdown flag.
    pub stop: Arc<AtomicBool>,
    /// Graceful-drain flag: stop accepting, finish in-flight work, close
    /// each connection as it quiesces.
    pub drain: Arc<AtomicBool>,
    /// Connection id allocator shared by all dispatchers.
    pub next_conn_id: Arc<AtomicU64>,
    /// Diagnostics worker table (None when diagnostics are not wired).
    pub worker_table: Option<Arc<crate::diag::WorkerStateTable>>,
}

struct ConnLocal<St> {
    stream: St,
    shared: Arc<ConnShared>,
    peer_eof: bool,
    /// Interest currently registered with the poller.
    armed: Interest,
    /// When the connection was accepted (O11 accept→header-read stage).
    accepted_at: Instant,
    /// Whether the first request bytes have been seen.
    header_seen: bool,
    /// When the outbox was first observed non-empty (O11 write-drain
    /// stage); cleared when it drains.
    drain_from: Option<Instant>,
    /// `Some(deadline)` while the connection is in the lingering-close
    /// state: the outbox drained, FIN went out via
    /// [`StreamIo::shutdown_write`], and the read side is held open —
    /// discarding whatever the peer pipelined past the close — until the
    /// peer's own FIN or this deadline. The application-level close
    /// (registry slot, `on_close`, counters) already happened at linger
    /// entry; only the socket teardown is deferred.
    linger_until: Option<Instant>,
}

/// How long a gated acceptor sleeps before re-checking the overload
/// controller when no other event wakes it first.
const GATED_ACCEPT_RECHECK: Duration = Duration::from_millis(10);

/// How long a server-initiated close lingers — FIN sent, outbox empty,
/// read side open — waiting for the peer's FIN before the hard close.
/// Mirrors the cluster relay's `LINGER_DRAIN`: long enough for any
/// response bytes in flight to be consumed, short enough that a peer
/// that never acknowledges cannot pin the socket.
const LINGER_CLOSE: Duration = Duration::from_secs(1);

impl<C: Codec, S: Service<C>, L: Listener> Dispatcher<C, S, L> {
    /// The dispatch loop. Blocks in the poller until some owned connection
    /// (or the listener, or a waker) is ready; runs until the stop flag is
    /// raised, then closes every connection it owns.
    pub fn run(mut self) {
        // Diagnostics: publish this dispatcher's activity in the worker
        // state table (it handles events inline when O2 = No, and its
        // liveness matters in every mode). No-op when no table is wired.
        if let Some(table) = &self.worker_table {
            crate::diag::attach_worker(table, crate::diag::WorkerRole::Dispatcher);
        }
        let mut conns: HashMap<ConnId, ConnLocal<L::Stream>> = HashMap::new();
        let mut idle = self.idle_limit.map(IdleTracker::new);
        let mut stage = StageTracker::from_options(&self.stage_deadlines);
        let mut read_buf = vec![0u8; 16 * 1024];
        let mut events: Vec<PollEvent> = Vec::new();
        // Connections (or LISTENER_TOKEN) that hit a fairness cap with
        // work left: re-serviced next iteration without waiting. The mem
        // transport notifies once per write, so capped intake must be
        // carried forward explicitly.
        let mut ready_backlog: VecDeque<u64> = VecDeque::new();
        // Lingering-close deadlines in entry order (the linger duration
        // is constant, so the front is always the earliest).
        let mut linger_queue: VecDeque<(ConnId, Instant)> = VecDeque::new();
        let mut pend: HashSet<ConnId> = HashSet::new();
        let mut accept_gated = false;
        let mut listener_armed = false;

        if let Some(listener) = &self.listener {
            if listener.register_listener(&mut self.poller).is_ok() {
                listener_armed = true;
            }
        }

        loop {
            if self.stop.load(Ordering::Relaxed) {
                for (_, mut c) in conns.drain() {
                    self.finalize(&mut c);
                }
                crate::diag::detach_worker();
                return;
            }
            let draining = self.drain.load(Ordering::Relaxed);
            if draining && listener_armed {
                if let Some(listener) = &self.listener {
                    let _ = listener.deregister_listener(&mut self.poller);
                }
                listener_armed = false;
            }

            // 1. Gather this iteration's work set: carried-over backlog,
            //    poller events, and worker notifications.
            pend.clear();
            let mut accept_signal = false;
            for token in ready_backlog.drain(..) {
                if token == LISTENER_TOKEN {
                    accept_signal = true;
                } else {
                    pend.insert(token);
                }
            }
            for ev in events.drain(..) {
                if ev.token == LISTENER_TOKEN {
                    accept_signal = true;
                } else {
                    pend.insert(ev.token);
                }
            }
            while let Ok(id) = self.flush_rx.try_recv() {
                pend.insert(id);
            }

            // 2. Adopt connections assigned to this dispatcher.
            while let Ok(nc) = self.inj_rx.try_recv() {
                if let Some(ref mut tracker) = idle {
                    tracker.touch(nc.id, Instant::now());
                }
                if let Some(ref mut st) = stage {
                    st.arm_header(nc.id, Instant::now());
                }
                let want = Interest {
                    readable: true,
                    writable: !nc.shared.outbox.lock().is_empty(),
                };
                let _ = self.poller.register(nc.id, &nc.stream, want);
                conns.insert(
                    nc.id,
                    ConnLocal {
                        stream: nc.stream,
                        shared: nc.shared,
                        peer_eof: false,
                        armed: want,
                        accepted_at: nc.accepted_at,
                        header_seen: false,
                        drain_from: None,
                        linger_until: None,
                    },
                );
                // Service immediately: flush any greeting, read early data.
                pend.insert(nc.id);
            }

            // 3. Accept new connections (dispatcher 0) when the listener
            //    reported readiness or a pause is being re-checked. A
            //    draining dispatcher stops accepting entirely.
            if !draining && self.listener.is_some() && (accept_signal || accept_gated) {
                let saturated = self.accept_pending(
                    &mut conns,
                    &mut idle,
                    &mut stage,
                    &mut pend,
                    &mut accept_gated,
                    &mut listener_armed,
                );
                if saturated {
                    // Fairness cap hit with connections possibly still
                    // queued; revisit without blocking.
                    ready_backlog.push_back(LISTENER_TOKEN);
                }
            }

            // 4. Route Proactor completions (dispatcher 0).
            if let Some(rx) = &self.completion_rx {
                while let Ok((token, resp)) = rx.try_recv() {
                    let prio = self
                        .engine
                        .conn(token.conn)
                        .map(|c| c.priority)
                        .unwrap_or_default();
                    self.submit_work(Work::Completion(token, resp), prio);
                }
            }

            // 5. Per-connection I/O on ready connections: Send Reply then
            //    Read Request, then re-arm poller interest. While draining
            //    every connection is revisited so close conditions are
            //    evaluated as in-flight work completes.
            if draining {
                pend.extend(conns.keys().copied());
            }
            let mut to_remove: Vec<ConnId> = Vec::new();
            for &id in pend.iter() {
                let c = match conns.get_mut(&id) {
                    Some(c) => c,
                    // Stale event for a connection already closed.
                    None => continue,
                };
                // A lingering close only drains: every response byte is
                // on the wire and FIN is sent; keep reading and
                // discarding until the peer answers with its own FIN (or
                // errors), then tear the socket down.
                if c.linger_until.is_some() {
                    let mut reads = 0;
                    loop {
                        if reads == 8 {
                            // Fairness cap: revisit without waiting.
                            ready_backlog.push_back(id);
                            break;
                        }
                        reads += 1;
                        match c.stream.try_read(&mut read_buf) {
                            Ok(ReadOutcome::Data(n)) => {
                                // Discarded, but read off the transport —
                                // keep the byte accounting aligned with
                                // the trace.
                                ServerStats::add(&self.engine.stats.bytes_read, n as u64);
                            }
                            Ok(ReadOutcome::WouldBlock) => break,
                            Ok(ReadOutcome::Closed) | Err(_) => {
                                to_remove.push(id);
                                break;
                            }
                        }
                    }
                    continue;
                }
                // O11 write-drain stage opens when reply bytes are observed
                // queued — checked before the flush as well, so a reply that
                // drains within one service pass still gets its window.
                if c.drain_from.is_none()
                    && (self.engine.metrics.is_enabled() || self.engine.tracer.is_enabled())
                    && !c.shared.outbox.lock().is_empty()
                {
                    c.drain_from = Some(Instant::now());
                }
                let wrote_any = Self::flush(&self.engine.stats, c);
                let was_eof = c.peer_eof;
                let (read, saturated) = self.read_into_inbox(c, &mut read_buf);
                if saturated {
                    ready_backlog.push_back(id);
                }
                if read {
                    if !c.header_seen {
                        // First request bytes: close the accept→header
                        // stage and mark the causal span.
                        c.header_seen = true;
                        if self.engine.metrics.is_enabled() {
                            self.engine.metrics.record_stage(
                                Stage::AcceptToHeader,
                                c.accepted_at.elapsed().as_micros() as u64,
                            );
                        }
                        self.engine.tracer.span(SpanEvent::HeaderRead, id);
                    }
                    if let Some(ref mut tracker) = idle {
                        tracker.touch(id, Instant::now());
                    }
                    self.submit_work(Work::Process(id), c.shared.priority);
                } else if c.peer_eof && !was_eof && !c.shared.inbox.lock().is_empty() {
                    // Peer half-closed with a partial request buffered and
                    // no fresh bytes to trigger a decode pass: submit one
                    // final pass so the decode loop can observe `peer_eof`
                    // and reap the fragment that can never complete.
                    self.submit_work(Work::Process(id), c.shared.priority);
                }
                let closing = c.shared.closing.load(Ordering::Relaxed);
                // Sampling order matters: `responses_pending` (the send
                // lock) before the outbox. `complete` moves ready replies
                // into the outbox while holding the send lock, so a
                // completion racing this close test is either still
                // pending (sampled first → close deferred one pass) or
                // its bytes are already visible to the outbox sample
                // below. Outbox-first sampling lost that race: both
                // looked clear while the final response landed between
                // the two samples, and the close discarded it.
                let pending = c.shared.responses_pending();
                let outbox_empty = c.shared.outbox.lock().is_empty();
                // O11 write-drain stage: opens when reply bytes are first
                // observed queued, closes when the outbox fully drains.
                if outbox_empty {
                    if let Some(t0) = c.drain_from.take() {
                        if self.engine.metrics.is_enabled() {
                            self.engine
                                .metrics
                                .record_stage(Stage::WriteDrain, t0.elapsed().as_micros() as u64);
                        }
                        self.engine.tracer.span(SpanEvent::WriteDrain, id);
                    }
                } else if c.drain_from.is_none()
                    && (self.engine.metrics.is_enabled() || self.engine.tracer.is_enabled())
                {
                    c.drain_from = Some(Instant::now());
                }
                // After peer EOF, a non-empty inbox may still hold a
                // complete request a worker has not decoded yet, so the
                // connection is kept until the inbox drains (the decode
                // loop reaps fragments that can never complete — see
                // `peer_eof` in `ConnShared`). A draining dispatcher
                // applies the same quiesce test to every connection, EOF
                // or not.
                if (closing && outbox_empty && !pending)
                    || ((c.peer_eof || draining)
                        && outbox_empty
                        && !pending
                        && c.shared.inbox.lock().is_empty())
                {
                    if c.peer_eof || c.shared.sink_dead.load(Ordering::Relaxed) {
                        // Hard close: the peer's byte stream is fully
                        // consumed (FIN seen) or the transport already
                        // failed — no unread bytes are left for a close
                        // to RST-discard.
                        to_remove.push(id);
                    } else {
                        // Server-initiated close with a live peer:
                        // lingering close. The outbox is drained
                        // (asserted — `shutdown_write` does not flush);
                        // FIN goes out now, and the read side stays open
                        // so bytes the peer pipelined past the
                        // close-triggering request are consumed instead
                        // of provoking an RST that can discard the final
                        // response still in flight.
                        // Re-check under the lock before committing the
                        // FIN: a reply that slipped into the outbox since
                        // the sample above must flush first. Defer one
                        // pass rather than half-close over queued bytes
                        // (`shutdown_write` does not flush).
                        if !c.shared.outbox.lock().is_empty() {
                            ready_backlog.push_back(id);
                            continue;
                        }
                        c.stream.shutdown_write();
                        let deadline = Instant::now() + LINGER_CLOSE;
                        c.linger_until = Some(deadline);
                        linger_queue.push_back((id, deadline));
                        ServerStats::bump(&self.engine.stats.connections_lingered);
                        // The application-level close happens now — the
                        // slot stops counting against overload admission
                        // and the service sees `on_close`; only the
                        // socket teardown is deferred.
                        self.release(c);
                        if let Some(ref mut tracker) = idle {
                            tracker.forget(id);
                        }
                        if let Some(ref mut st) = stage {
                            st.forget(id);
                        }
                        // Keep reading (discard-only) and drain anything
                        // already buffered on the next pass.
                        let want = Interest::READABLE;
                        if c.armed != want {
                            let _ = self.poller.reregister(id, &c.stream, want);
                            c.armed = want;
                        }
                        ready_backlog.push_back(id);
                    }
                    continue;
                }
                // Stage deadlines: the write-drain window opens while reply
                // bytes are queued (and is not extended by partial writes);
                // once a reply fully drains, a fresh header-read window
                // opens for the next request. A slow-loris peer that never
                // completes a request exhausts the header window.
                if let Some(ref mut st) = stage {
                    let now = Instant::now();
                    if outbox_empty {
                        st.clear_drain(id);
                        if wrote_any {
                            st.arm_header(id, now);
                        }
                    } else {
                        st.arm_drain(id, now);
                    }
                }
                // Re-arm interest: stop read-polling a half-closed or
                // closing peer (level-triggered EOF would re-report
                // forever), poll for writability only while reply bytes
                // are actually queued.
                let want = Interest {
                    readable: !(c.peer_eof || closing),
                    writable: !outbox_empty,
                };
                if want != c.armed {
                    let _ = self.poller.reregister(id, &c.stream, want);
                    c.armed = want;
                }
            }
            for id in to_remove {
                if let Some(mut c) = conns.remove(&id) {
                    self.finalize(&mut c);
                    if let Some(ref mut tracker) = idle {
                        tracker.forget(id);
                    }
                    if let Some(ref mut st) = stage {
                        st.forget(id);
                    }
                }
            }

            // 6. Idle sweep (O7): runs exactly when the earliest deadline
            //    passes (the poll timeout below wakes us for it).
            if let Some(ref mut tracker) = idle {
                let now = Instant::now();
                if tracker.next_deadline().is_some_and(|d| d <= now) {
                    for id in tracker.sweep(now) {
                        if let Some(c) = conns.get(&id) {
                            c.shared.closing.store(true, Ordering::Relaxed);
                            ServerStats::bump(&self.engine.stats.connections_idle_closed);
                            self.engine
                                .tracer
                                .record(EventKind::Timer, Some(id), "idle shutdown");
                            // Reap on the next (immediate) pass.
                            ready_backlog.push_back(id);
                        }
                    }
                }
            }

            // 6b. Stage-deadline sweep: reap connections that exhausted a
            //     header-read or write-drain window (slow-loris peers,
            //     stalled readers). A reaped connection's outbox is
            //     dropped — the peer has demonstrably stopped consuming.
            if let Some(ref mut st) = stage {
                let now = Instant::now();
                if st.next_deadline().is_some_and(|d| d <= now) {
                    for id in st.sweep(now) {
                        if let Some(c) = conns.get_mut(&id) {
                            c.shared.closing.store(true, Ordering::Relaxed);
                            c.shared.outbox.lock().clear();
                            ServerStats::bump(&self.engine.stats.connections_timed_out);
                            self.engine.tracer.record(
                                EventKind::Timer,
                                Some(id),
                                "stage deadline exceeded",
                            );
                            ready_backlog.push_back(id);
                        }
                    }
                }
            }

            // 6c. Linger sweep: hard-close lingering connections whose
            //     deadline passed without a peer FIN. The peer had a full
            //     linger window to consume the final response; its unread
            //     bytes (if any) are forfeit now.
            if linger_queue
                .front()
                .is_some_and(|&(_, deadline)| deadline <= Instant::now())
            {
                let now = Instant::now();
                while let Some(&(id, deadline)) = linger_queue.front() {
                    if deadline > now {
                        break;
                    }
                    linger_queue.pop_front();
                    if let Some(mut c) = conns.remove(&id) {
                        ServerStats::bump(&self.engine.stats.linger_reaped);
                        self.engine
                            .tracer
                            .record(EventKind::Timer, Some(id), "linger deadline");
                        self.finalize(&mut c);
                    }
                }
            }

            // 7. Block until readiness, a waker, or the next deadline. No
            //    deadline and no backlog means a fully event-driven sleep.
            let timeout = if !ready_backlog.is_empty() {
                Some(Duration::ZERO)
            } else {
                let mut t: Option<Duration> = None;
                if accept_gated {
                    t = Some(GATED_ACCEPT_RECHECK);
                }
                if let Some(ref tracker) = idle {
                    if let Some(deadline) = tracker.next_deadline() {
                        let d = deadline.saturating_duration_since(Instant::now());
                        t = Some(t.map_or(d, |cur| cur.min(d)));
                    }
                }
                if let Some(ref st) = stage {
                    if let Some(deadline) = st.next_deadline() {
                        let d = deadline.saturating_duration_since(Instant::now());
                        t = Some(t.map_or(d, |cur| cur.min(d)));
                    }
                }
                // Earliest live linger deadline (stale entries for
                // connections the peer's FIN already closed are dropped).
                while let Some(&(id, deadline)) = linger_queue.front() {
                    if conns.contains_key(&id) {
                        let d = deadline.saturating_duration_since(Instant::now());
                        t = Some(t.map_or(d, |cur| cur.min(d)));
                        break;
                    }
                    linger_queue.pop_front();
                }
                if draining && !conns.is_empty() {
                    // No readiness event marks "in-flight work completed";
                    // poll the quiesce conditions at a drain tick.
                    let tick = Duration::from_millis(10);
                    t = Some(t.map_or(tick, |cur| cur.min(tick)));
                }
                t
            };
            if self.poller.wait(&mut events, timeout).is_err() {
                events.clear();
            }
            ServerStats::bump(&self.engine.stats.dispatcher_wakeups);
        }
    }

    /// Accept up to a fairness cap of pending connections. Returns true
    /// when the cap was reached with connections possibly still queued.
    /// While the overload controller refuses (O9), the listening endpoint
    /// is deregistered from the poller — a level-triggered backlog would
    /// otherwise wake the loop continuously — and re-armed when the
    /// controller relents.
    fn accept_pending(
        &mut self,
        conns: &mut HashMap<ConnId, ConnLocal<L::Stream>>,
        idle: &mut Option<IdleTracker>,
        stage: &mut Option<StageTracker>,
        pend: &mut HashSet<ConnId>,
        gated: &mut bool,
        armed: &mut bool,
    ) -> bool {
        for _ in 0..64 {
            let open = self.engine.registry.read().len();
            if !self.overload.lock().may_accept(open) {
                ServerStats::bump(&self.engine.stats.accepts_deferred);
                if *armed {
                    if let Some(listener) = &self.listener {
                        let _ = listener.deregister_listener(&mut self.poller);
                    }
                    *armed = false;
                }
                *gated = true;
                return false;
            }
            if !*armed {
                if let Some(listener) = &self.listener {
                    let _ = listener.register_listener(&mut self.poller);
                }
                *armed = true;
            }
            *gated = false;
            let listener = self.listener.as_mut().expect("only dispatcher 0 accepts");
            match listener.try_accept() {
                Ok(Some(stream)) => {
                    self.register(stream, conns, idle, stage, pend);
                }
                Ok(None) => return false,
                Err(e) => {
                    // One failed accept must not wedge the acceptor: count
                    // it and keep draining the backlog (the fairness cap
                    // bounds how many errors one pass absorbs).
                    ServerStats::bump(&self.engine.stats.accept_errors);
                    if self.engine.tracer.is_enabled() {
                        self.engine.tracer.record(
                            EventKind::Accepted,
                            None,
                            format!("accept error: {e}"),
                        );
                    }
                    continue;
                }
            }
        }
        true
    }

    fn register(
        &mut self,
        stream: L::Stream,
        conns: &mut HashMap<ConnId, ConnLocal<L::Stream>>,
        idle: &mut Option<IdleTracker>,
        stage: &mut Option<StageTracker>,
        pend: &mut HashSet<ConnId>,
    ) {
        let id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let accepted_at = Instant::now();
        let peer = stream.peer_label();
        let priority = (self.priority_policy)(&peer);
        let shared = ConnShared::new(id, peer, priority);
        self.engine.registry.write().insert(id, Arc::clone(&shared));
        ServerStats::bump(&self.engine.stats.connections_accepted);
        self.engine.tracer.span(SpanEvent::Accept, id);

        // Server-speaks-first greeting (e.g. FTP 220).
        if let Some(greeting) = self.engine.service.on_open(&shared.ctx()) {
            let mut out = crate::pipeline::EncodedReply::new();
            if self.engine.codec.encode_reply(&greeting, &mut out).is_ok() {
                shared.outbox.lock().push_reply(out);
            }
        }

        let target = (id as usize) % self.inj_txs.len();
        if target == self.index {
            if let Some(ref mut tracker) = idle {
                tracker.touch(id, Instant::now());
            }
            if let Some(ref mut st) = stage {
                st.arm_header(id, Instant::now());
            }
            let want = Interest {
                readable: true,
                writable: !shared.outbox.lock().is_empty(),
            };
            let _ = self.poller.register(id, &stream, want);
            conns.insert(
                id,
                ConnLocal {
                    stream,
                    shared,
                    peer_eof: false,
                    armed: want,
                    accepted_at,
                    header_seen: false,
                    drain_from: None,
                    linger_until: None,
                },
            );
            pend.insert(id);
        } else {
            let _ = self.inj_txs[target].send(NewConn {
                id,
                stream,
                shared,
                accepted_at,
            });
            self.notifier.wake(target);
        }
    }

    fn submit_work(&self, work: Work<C::Response>, prio: Priority) {
        match &self.submit {
            SubmitMode::Inline => self.engine.handle_work(work),
            SubmitMode::Pool(p) => p.submit(work, prio),
        }
    }

    /// Send Reply: move outbox bytes to the wire, one segment chunk at a
    /// time — shared body segments are written straight from their cache
    /// `Arc`, never copied into the queue. Returns true if any bytes were
    /// written.
    fn flush(stats: &ServerStats, c: &mut ConnLocal<L::Stream>) -> bool {
        let mut out = c.shared.outbox.lock();
        // A reply completed after the peer reset may have raced into the
        // outbox; a dead sink never gets another write attempt.
        if c.shared.sink_dead.load(Ordering::Relaxed) {
            out.clear();
            return false;
        }
        if out.is_empty() {
            return false;
        }
        let mut wrote_any = false;
        loop {
            let n = {
                let Some(chunk) = out.front_chunk() else {
                    break;
                };
                match c.stream.try_write(chunk) {
                    Ok(0) => break,
                    Ok(n) => n,
                    Err(_) => {
                        // swap() so a connection that errors on both the
                        // read and write side still counts as one reset.
                        c.shared.sink_dead.store(true, Ordering::Relaxed);
                        if !c.shared.closing.swap(true, Ordering::Relaxed) {
                            ServerStats::bump(&stats.connections_reset);
                        }
                        out.clear();
                        break;
                    }
                }
            };
            out.advance(n);
            ServerStats::add(&stats.bytes_sent, n as u64);
            wrote_any = true;
        }
        wrote_any
    }

    /// Read Request: pull available bytes into the inbox. Returns
    /// `(read_any, saturated)` — `saturated` means the fairness cap was
    /// hit without draining the stream, so the caller must re-service
    /// this connection without waiting for another readiness event.
    fn read_into_inbox(&self, c: &mut ConnLocal<L::Stream>, buf: &mut [u8]) -> (bool, bool) {
        if c.peer_eof || c.shared.closing.load(Ordering::Relaxed) {
            return (false, false);
        }
        let mut got = false;
        // Cap per-iteration intake so one chatty peer cannot monopolise the
        // dispatcher.
        for _ in 0..8 {
            match c.stream.try_read(buf) {
                Ok(ReadOutcome::Data(n)) => {
                    c.shared.inbox.lock().extend_from_slice(&buf[..n]);
                    ServerStats::add(&self.engine.stats.bytes_read, n as u64);
                    got = true;
                }
                Ok(ReadOutcome::WouldBlock) => return (got, false),
                Ok(ReadOutcome::Closed) => {
                    c.peer_eof = true;
                    c.shared.peer_eof.store(true, Ordering::Relaxed);
                    return (got, false);
                }
                Err(_) => {
                    // A hard read error is a reset: both directions of the
                    // stream are gone, so the sink is dead too.
                    c.peer_eof = true;
                    c.shared.peer_eof.store(true, Ordering::Relaxed);
                    c.shared.sink_dead.store(true, Ordering::Relaxed);
                    if !c.shared.closing.swap(true, Ordering::Relaxed) {
                        ServerStats::bump(&self.engine.stats.connections_reset);
                    }
                    return (got, false);
                }
            }
        }
        (got, true)
    }

    fn finalize(&mut self, c: &mut ConnLocal<L::Stream>) {
        let id = c.shared.id;
        let _ = self.poller.deregister(id, &c.stream);
        c.stream.shutdown();
        // A lingering close already released the application-level state
        // at linger entry; only the socket teardown remained.
        if c.linger_until.is_none() {
            self.release(c);
        }
    }

    /// The application-visible half of closing a connection: free the
    /// registry slot (overload admission), run the close hook, count and
    /// stamp the close. Runs at linger entry for a lingering close, at
    /// `finalize` otherwise — exactly once either way.
    fn release(&mut self, c: &ConnLocal<L::Stream>) {
        let id = c.shared.id;
        self.engine.registry.write().remove(&id);
        ServerStats::bump(&self.engine.stats.connections_closed);
        self.engine.service.on_close(&c.shared.ctx());
        self.engine.tracer.span(SpanEvent::Close, id);
        // A closed connection may unblock a gated acceptor: let
        // dispatcher 0 re-check the overload controller now instead of on
        // its next re-check tick.
        self.notifier.wake_completion_sink();
    }
}
