//! Per-connection FTP session state: the authentication FSM, current
//! directory, transfer type and passive-mode data listener.

use std::net::TcpListener;

/// Authentication progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionState {
    /// No USER yet.
    Greeted,
    /// USER received; waiting for PASS.
    NeedPassword {
        /// The claimed user name.
        user: String,
    },
    /// Logged in.
    LoggedIn {
        /// The authenticated user name.
        user: String,
    },
}

/// One control connection's state.
pub struct Session {
    /// Authentication FSM state.
    pub state: SessionState,
    /// Current working directory.
    pub cwd: String,
    /// Transfer type (`A` or `I`).
    pub transfer_type: char,
    /// Passive-mode listener awaiting a data connection.
    pub pasv: Option<TcpListener>,
    /// Count of listener-consuming transfer attempts so far (LIST, RETR,
    /// STOR with a usable listener and path). Tags data-connection traces
    /// so conformance checking can join each data socket to the transfer
    /// command that owns it.
    pub transfer_seq: u32,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// Fresh session at the root directory.
    pub fn new() -> Self {
        Self {
            state: SessionState::Greeted,
            cwd: "/".to_string(),
            transfer_type: 'A',
            pasv: None,
            transfer_seq: 0,
        }
    }

    /// Whether the session is authenticated.
    pub fn logged_in(&self) -> bool {
        matches!(self.state, SessionState::LoggedIn { .. })
    }

    /// Take the passive listener for a data transfer (single use).
    pub fn take_pasv(&mut self) -> Option<TcpListener> {
        self.pasv.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_session_defaults() {
        let s = Session::new();
        assert_eq!(s.state, SessionState::Greeted);
        assert_eq!(s.cwd, "/");
        assert_eq!(s.transfer_type, 'A');
        assert!(!s.logged_in());
    }

    #[test]
    fn login_fsm_transitions() {
        let mut s = Session::new();
        s.state = SessionState::NeedPassword { user: "u".into() };
        assert!(!s.logged_in());
        s.state = SessionState::LoggedIn { user: "u".into() };
        assert!(s.logged_in());
    }

    #[test]
    fn pasv_listener_is_single_use() {
        let mut s = Session::new();
        s.pasv = Some(TcpListener::bind("127.0.0.1:0").unwrap());
        assert!(s.take_pasv().is_some());
        assert!(s.take_pasv().is_none());
    }
}
