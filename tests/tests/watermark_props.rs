//! Property tests for the O9 watermark hysteresis state machine.
//!
//! The paper's overload control postpones accepts "if there is a queue
//! whose length exceeds its specified high watermark … until the length
//! drops below a specified low watermark". The properties here pin the
//! hysteresis invariants under arbitrary queue-length walks: state
//! changes happen only at the marks, the band between them never flaps,
//! and a multi-queue controller pauses while *any* watched queue is hot.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nserver_core::overload::{LenProbe, OverloadController, Watermark};
use proptest::prelude::*;

/// A random walk of queue lengths around the watermark band.
fn walks(max_len: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..=max_len, 1..200)
}

proptest! {
    /// Transitions only happen at the marks: pausing requires the length
    /// to be at or above `high`, resuming requires it at or below `low`.
    #[test]
    fn transitions_only_at_the_marks(
        low in 0usize..20,
        band in 1usize..20,
        lens in walks(60),
    ) {
        let high = low + band;
        let mut wm = Watermark::new(high, low);
        let mut was = wm.is_paused();
        for len in lens {
            let now = wm.observe(len);
            if now && !was {
                prop_assert!(len >= high, "paused at {len} < high {high}");
            }
            if !now && was {
                prop_assert!(len <= low, "resumed at {len} > low {low}");
            }
            prop_assert_eq!(now, wm.is_paused());
            was = now;
        }
    }

    /// Inside the open band (low, high) the state never changes — the
    /// hysteresis band absorbs oscillation instead of flapping.
    #[test]
    fn no_flapping_inside_the_band(
        low in 0usize..20,
        band in 2usize..20,
        lens in walks(60),
        start_paused in any::<bool>(),
    ) {
        let high = low + band;
        let mut wm = Watermark::new(high, low);
        if start_paused {
            wm.observe(high); // force the paused state
        }
        let before = wm.is_paused();
        let mut state = before;
        for len in lens {
            if len > low && len < high {
                let now = wm.observe(len);
                prop_assert_eq!(
                    now, state,
                    "state changed inside the band at len {}", len
                );
            } else {
                state = wm.observe(len);
            }
        }
    }

    /// The state is a pure function of the observation history: feeding
    /// the same walk twice gives identical pause traces (determinism —
    /// the property the seeded chaos plans rely on).
    #[test]
    fn observation_history_determines_state(
        low in 0usize..20,
        band in 1usize..20,
        lens in walks(60),
    ) {
        let high = low + band;
        let trace = |mut wm: Watermark| -> Vec<bool> {
            lens.iter().map(|&l| wm.observe(l)).collect()
        };
        prop_assert_eq!(
            trace(Watermark::new(high, low)),
            trace(Watermark::new(high, low))
        );
    }

    /// A multi-queue controller pauses exactly while at least one watched
    /// queue's own watermark would pause — one hot bottleneck (CPU *or*
    /// disk) is enough to shed load.
    #[test]
    fn controller_pauses_while_any_queue_is_hot(
        walk in prop::collection::vec((0usize..40, 0usize..40), 1..120),
    ) {
        let cpu: LenProbe = Arc::new(AtomicUsize::new(0));
        let disk: LenProbe = Arc::new(AtomicUsize::new(0));
        let mut ctl = OverloadController::with_watermark(Arc::clone(&cpu), 20, 5);
        ctl.watch(Arc::clone(&disk), 10, 2);
        // Shadow watermarks tracking what each queue alone would do.
        let mut cpu_wm = Watermark::new(20, 5);
        let mut disk_wm = Watermark::new(10, 2);
        for (cpu_len, disk_len) in walk {
            cpu.store(cpu_len, Ordering::Relaxed);
            disk.store(disk_len, Ordering::Relaxed);
            let accept = ctl.may_accept(0);
            let cpu_hot = cpu_wm.observe(cpu_len);
            let disk_hot = disk_wm.observe(disk_len);
            prop_assert_eq!(
                accept,
                !(cpu_hot || disk_hot),
                "cpu {} disk {}", cpu_len, disk_len
            );
        }
    }

    /// `pause_transitions` counts rising edges only: it increases by at
    /// most one per observation and never decreases.
    #[test]
    fn pause_transitions_count_rising_edges(lens in walks(60)) {
        let probe: LenProbe = Arc::new(AtomicUsize::new(0));
        let mut ctl = OverloadController::with_watermark(Arc::clone(&probe), 20, 5);
        let mut prev = ctl.pause_transitions();
        for len in lens {
            probe.store(len, Ordering::Relaxed);
            ctl.may_accept(0);
            let now = ctl.pause_transitions();
            prop_assert!(now >= prev && now - prev <= 1);
            prev = now;
        }
    }
}
