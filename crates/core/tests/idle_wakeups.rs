//! The property the readiness demultiplexer buys: an idle server does not
//! spin. Under the old scan-and-sleep loop the dispatcher woke every
//! 200 µs whether or not anything happened (~5000 iterations per second);
//! with a real poller it blocks in `wait` until readiness or a waker.
//!
//! The assertion is counter-based, not timing-based: we watch the
//! `dispatcher_wakeups` stat over a quiet window and require the delta to
//! stay far below what even one second of polling would produce.

use std::time::Duration;

use bytes::BytesMut;
use nserver_core::options::{Mode, ServerOptions};
use nserver_core::pipeline::{Action, Codec, ConnCtx, ProtocolError, Service};
use nserver_core::server::ServerBuilder;
use nserver_core::transport::mem;
use nserver_core::transport::{ReadOutcome, StreamIo};

struct LineCodec;

impl Codec for LineCodec {
    type Request = String;
    type Response = String;

    fn decode(&self, buf: &mut BytesMut) -> Result<Option<String>, ProtocolError> {
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                let line = buf.split_to(i + 1);
                Ok(Some(
                    std::str::from_utf8(&line[..i])
                        .map_err(|_| ProtocolError("not utf8".into()))?
                        .to_string(),
                ))
            }
            None => Ok(None),
        }
    }

    fn encode(&self, r: &String, out: &mut BytesMut) -> Result<(), ProtocolError> {
        out.extend_from_slice(r.as_bytes());
        out.extend_from_slice(b"\n");
        Ok(())
    }
}

struct EchoService;

impl Service<LineCodec> for EchoService {
    fn handle(&self, _ctx: &ConnCtx, req: String) -> Action<String> {
        Action::Reply(format!("echo:{req}"))
    }
}

fn read_line(stream: &mut mem::MemStream) -> String {
    let mut acc = Vec::new();
    let mut buf = [0u8; 256];
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while std::time::Instant::now() < deadline {
        match stream.try_read(&mut buf).unwrap() {
            ReadOutcome::Data(n) => acc.extend_from_slice(&buf[..n]),
            ReadOutcome::WouldBlock => std::thread::sleep(Duration::from_micros(200)),
            ReadOutcome::Closed => break,
        }
        if acc.contains(&b'\n') {
            break;
        }
    }
    String::from_utf8(acc).unwrap().trim_end().to_string()
}

#[test]
fn idle_server_performs_no_busy_iterations() {
    let opts = ServerOptions {
        mode: Mode::Production,
        profiling: true,
        ..ServerOptions::default()
    };
    let (listener, connector) = mem::listener("quiet");
    let server = ServerBuilder::new(opts, LineCodec, EchoService)
        .unwrap()
        .serve(listener);

    // Prove the server is alive (this costs a handful of wakeups).
    let mut c = connector.connect();
    c.try_write(b"ping\n").unwrap();
    assert_eq!(read_line(&mut c), "echo:ping");

    // Quiet window: one open connection, no traffic. Every dispatcher
    // should be parked in its poller the whole time.
    let before = server.stats().dispatcher_wakeups;
    std::thread::sleep(Duration::from_millis(500));
    let after = server.stats().dispatcher_wakeups;
    let delta = after - before;

    // The old loop would have logged ~2500 iterations in this window
    // (200 µs period). Allow a generous margin for stragglers from the
    // ping exchange and spurious condvar wakes.
    assert!(
        delta <= 25,
        "idle dispatchers woke {delta} times in 500ms — dispatch loop is polling"
    );

    // The fabric still works after sitting idle: wakeups resume on demand.
    c.try_write(b"again\n").unwrap();
    assert_eq!(read_line(&mut c), "echo:again");
    assert!(server.stats().dispatcher_wakeups > after);

    server.shutdown();
}
