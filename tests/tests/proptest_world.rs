//! Property-based tests over the experiment world at small scale: for
//! arbitrary (bounded) configurations, the simulation must uphold its
//! accounting invariants and stay deterministic.

use nserver_baselines::world::CopsParams;
use nserver_baselines::{ApacheParams, ExperimentParams, ServerKind, World};
use nserver_netsim::SimTime;
use proptest::prelude::*;

fn tiny(clients: usize, kind: ServerKind, seed: u64) -> ExperimentParams {
    let mut p = ExperimentParams::figure3(clients, kind);
    p.warmup = SimTime::from_secs(2);
    p.measure = SimTime::from_secs(10);
    p.seed = seed;
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the load and server, the measured quantities are sane:
    /// fairness in (0,1], non-negative times, responses consistent with
    /// throughput, combined time ≥ response time.
    #[test]
    fn world_invariants_hold(
        clients in 1usize..96,
        apache in any::<bool>(),
        seed in 1u64..1000,
    ) {
        let kind = if apache {
            ServerKind::Apache(ApacheParams::default())
        } else {
            ServerKind::Cops(CopsParams::default())
        };
        let out = World::new(tiny(clients, kind, seed)).run();
        prop_assert!(out.fairness > 0.0 && out.fairness <= 1.0 + 1e-12);
        prop_assert!(out.mean_response_ms >= 0.0);
        prop_assert!(out.mean_combined_ms + 1e-9 >= out.mean_response_ms,
            "combined {} < response {}", out.mean_combined_ms, out.mean_response_ms);
        let implied = out.responses as f64 / 10.0;
        prop_assert!((out.throughput_rps - implied).abs() < 1e-6);
        // A live system must make progress.
        prop_assert!(out.responses > 0, "no responses at {clients} clients");
        // p95 is at least the mean's order of magnitude.
        prop_assert!(out.p95_response_ms >= 0.0);
    }

    /// Same seed ⇒ bit-identical outcome; different seed ⇒ same shape
    /// (throughput within a modest band), so results are robust, not
    /// seed-artifacts.
    #[test]
    fn world_is_deterministic_and_seed_robust(seed in 1u64..500) {
        let kind = ServerKind::Cops(CopsParams::default());
        let a = World::new(tiny(32, kind, seed)).run();
        let b = World::new(tiny(32, kind, seed)).run();
        prop_assert_eq!(a.responses, b.responses);
        prop_assert_eq!(a.fairness, b.fairness);
        let c = World::new(tiny(32, kind, seed + 1)).run();
        let ratio = a.throughput_rps / c.throughput_rps;
        prop_assert!((0.8..1.25).contains(&ratio), "seed sensitivity: {ratio}");
    }

    /// Offered load monotonicity (coarse): doubling the clients never
    /// *reduces* throughput by more than a small tolerance in the
    /// unsaturated region.
    #[test]
    fn throughput_is_monotone_in_light_load(clients in 1usize..24, seed in 1u64..200) {
        let kind = ServerKind::Cops(CopsParams::default());
        let small = World::new(tiny(clients, kind, seed)).run();
        let big = World::new(tiny(clients * 2, kind, seed)).run();
        prop_assert!(
            big.throughput_rps > small.throughput_rps * 1.2,
            "{} clients: {} rps, {} clients: {} rps",
            clients, small.throughput_rps, clients * 2, big.throughput_rps
        );
    }
}
