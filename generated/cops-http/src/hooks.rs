//! APPLICATION HOOKS — the three application-dependent steps of the
//! request pipeline (Decode Request, Handle Request, Encode Reply).
//! Replace the stub bodies with your protocol and service logic.
use bytes::BytesMut;
use nserver_core::prelude::*;

/// Decode Request / Encode Reply hooks (stub: newline-delimited text).
#[derive(Default)]
pub struct AppCodec;

impl Codec for AppCodec {
    type Request = String;
    type Response = String;

    fn decode(&self, buf: &mut BytesMut) -> Result<Option<String>, ProtocolError> {
        // HOOK: parse one request off the front of `buf`.
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                let line = buf.split_to(i + 1);
                Ok(Some(String::from_utf8_lossy(&line[..i]).into_owned()))
            }
            None => Ok(None),
        }
    }

    fn encode(&self, resp: &String, out: &mut BytesMut) -> Result<(), ProtocolError> {
        // HOOK: serialize one response.
        out.extend_from_slice(resp.as_bytes());
        out.extend_from_slice(b"\n");
        Ok(())
    }
}

/// Handle Request hook (stub: echo).
#[derive(Default)]
pub struct AppService;

impl AppService {
    /// Construct the service.
    pub fn new() -> Self {
        Self
    }
}

impl Service<AppCodec> for AppService {
    fn handle(&self, _ctx: &ConnCtx, req: String) -> Action<String> {
        // HOOK: your service logic.
        Action::Reply(req)
    }
}
