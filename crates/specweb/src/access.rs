//! Access-frequency sampling: Zipf popularity across directories, the
//! 35/50/14/1 class mix, and a mild within-class skew — the SpecWeb99
//! shape the paper's workload follows.

use rand::Rng;

use crate::fileset::{FileSet, FileSpec};

/// A discrete Zipf(α) sampler over ranks `0..n` (rank 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` items with exponent `alpha` (SpecWeb99 uses
    /// α = 1 across directories).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0);
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(alpha);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Self { cumulative }
    }

    /// Sample a rank using a uniform draw in `[0,1)`.
    pub fn sample_with(&self, u: f64) -> usize {
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Sample a rank from an RNG.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        self.sample_with(rng.gen::<f64>())
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (a sampler has ≥ 1 rank).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Samples files from a [`FileSet`] with the SpecWeb99 popularity
/// structure.
#[derive(Debug, Clone)]
pub struct AccessSampler {
    dir_zipf: Zipf,
    // Within a class, SpecWeb99's table is mildly skewed toward middle
    // files; we use Zipf(0.8) over a fixed popularity order as a stand-in.
    file_zipf: Zipf,
    class_cumulative: [f64; 4],
}

impl AccessSampler {
    /// Build a sampler for the given file set.
    pub fn new(fileset: &FileSet) -> Self {
        let mut class_cumulative = [0.0; 4];
        let mut acc = 0.0;
        for c in 0..4u8 {
            acc += crate::fileset::FileClass(c).access_weight();
            class_cumulative[c as usize] = acc;
        }
        // Normalize to exactly 1 to be safe against float drift.
        for c in &mut class_cumulative {
            *c /= acc;
        }
        Self {
            dir_zipf: Zipf::new(fileset.dirs() as usize, 1.0),
            file_zipf: Zipf::new(9, 0.8),
            class_cumulative,
        }
    }

    /// Sample one file id, using three uniform draws in `[0,1)` (caller
    /// supplies them so both `rand` and the simulator's deterministic RNG
    /// can drive the sampler).
    pub fn sample_with(&self, fileset: &FileSet, u_dir: f64, u_class: f64, u_file: f64) -> u64 {
        let dir = self.dir_zipf.sample_with(u_dir) as u32;
        let class = self
            .class_cumulative
            .iter()
            .position(|&c| u_class < c)
            .unwrap_or(3) as u8;
        let index = self.file_zipf.sample_with(u_file) as u8 + 1;
        fileset
            .lookup(dir, class, index)
            .expect("sampler stays in range")
            .id
    }

    /// Sample one file with a `rand` RNG.
    pub fn sample<R: Rng>(&self, fileset: &FileSet, rng: &mut R) -> u64 {
        self.sample_with(fileset, rng.gen(), rng.gen(), rng.gen())
    }

    /// Sample a full [`FileSpec`].
    pub fn sample_spec<'a, R: Rng>(&self, fileset: &'a FileSet, rng: &mut R) -> &'a FileSpec {
        fileset.file(self.sample(fileset, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_first_rank_is_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Rank 0 of Zipf(1, n=100) has probability 1/H(100) ≈ 0.193.
        let p0 = counts[0] as f64 / 100_000.0;
        assert!((p0 - 0.193).abs() < 0.02, "p0 = {p0}");
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn zipf_sample_with_is_monotone_in_u() {
        let z = Zipf::new(50, 1.0);
        let mut last = 0;
        for i in 0..100 {
            let u = i as f64 / 100.0;
            let r = z.sample_with(u);
            assert!(r >= last, "rank must be non-decreasing in u");
            last = r;
        }
        assert!(z.sample_with(0.999999) < z.len());
    }

    #[test]
    fn class_mix_matches_spec() {
        let fs = FileSet::with_dirs(10);
        let sampler = AccessSampler::new(&fs);
        let mut rng = StdRng::seed_from_u64(3);
        let mut class_counts = [0u32; 4];
        let n = 200_000;
        for _ in 0..n {
            let spec = sampler.sample_spec(&fs, &mut rng);
            class_counts[spec.class.0 as usize] += 1;
        }
        let frac = |c: usize| class_counts[c] as f64 / n as f64;
        assert!((frac(0) - 0.35).abs() < 0.01, "class0 {}", frac(0));
        assert!((frac(1) - 0.50).abs() < 0.01, "class1 {}", frac(1));
        assert!((frac(2) - 0.14).abs() < 0.01, "class2 {}", frac(2));
        assert!((frac(3) - 0.01).abs() < 0.005, "class3 {}", frac(3));
    }

    #[test]
    fn mean_transfer_size_is_about_15kb() {
        // The paper reports a 16 KB average file size; the SpecWeb99 mix
        // yields a weighted mean transfer in that neighbourhood.
        let fs = FileSet::with_dirs(41);
        let sampler = AccessSampler::new(&fs);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let total: u64 = (0..n)
            .map(|_| sampler.sample_spec(&fs, &mut rng).size)
            .sum();
        let mean = total as f64 / n as f64;
        assert!(
            (10_000.0..22_000.0).contains(&mean),
            "mean transfer {mean} bytes"
        );
    }

    #[test]
    fn popular_directories_dominate() {
        let fs = FileSet::with_dirs(41);
        let sampler = AccessSampler::new(&fs);
        let mut rng = StdRng::seed_from_u64(5);
        let mut dir_counts = [0u32; 41];
        for _ in 0..100_000 {
            dir_counts[sampler.sample_spec(&fs, &mut rng).dir as usize] += 1;
        }
        assert!(dir_counts[0] > dir_counts[20] * 3);
    }

    #[test]
    fn deterministic_draws_are_reproducible() {
        let fs = FileSet::with_dirs(5);
        let sampler = AccessSampler::new(&fs);
        let a = sampler.sample_with(&fs, 0.3, 0.6, 0.9);
        let b = sampler.sample_with(&fs, 0.3, 0.6, 0.9);
        assert_eq!(a, b);
    }
}
