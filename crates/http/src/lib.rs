//! # nserver-http
//!
//! The HTTP protocol library and the **COPS-HTTP** server logic.
//!
//! In the paper's Table 4 code-distribution study, COPS-HTTP consists of
//! automatically generated framework code plus two handwritten parts: an
//! HTTP protocol library (449 NCSS) and server-specific application code
//! (785 NCSS). This crate is those two handwritten parts:
//!
//! * [`types`] / [`parse`] — the protocol library: request/response
//!   types, an incremental request parser and a response encoder;
//! * [`codec`] — the Decode Request / Encode Reply hooks plugging the
//!   protocol library into the N-Server pipeline;
//! * [`service`] — the Handle Request hook: static file serving through
//!   the transparent file cache (template option O6), with misses emulated
//!   as non-blocking file I/O via `Action::Defer` (option O4);
//! * [`dynamic`] — the paper's noted extension: prefix-routed dynamic
//!   content handlers in front of the static file service;
//! * [`preset`] — the exact Table 1 option columns for COPS-HTTP,
//!   including the event-scheduling and overload-control variants used in
//!   the paper's second and third experiments.

pub mod codec;
pub mod dynamic;
pub mod log;
pub mod observe;
pub mod parse;
pub mod preset;
pub mod service;
pub mod types;

pub use codec::HttpCodec;
pub use dynamic::{text_page, RoutedService};
pub use log::{clf_line, clf_line_now};
pub use observe::{
    extract_requests, split_responses, ObservedResponse, RequestStream, RequestStreamEnd,
    ResponseStream, ResponseStreamEnd,
};
pub use parse::{encode_response, parse_request, ParseOutcome};
pub use preset::{cops_http_options, cops_http_overload_options, cops_http_scheduling_options};
pub use service::{ContentStore, MemStore, StaticFileService};
pub use types::{Headers, Method, Request, Response, Status, Version};
