//! Hot-path ablation artifact: keep-alive cached-hit throughput with and
//! without the zero-copy segmented outbox, plus the single-flight
//! miss-coalescing effect under a thundering herd.
//!
//! Three measurements, written to `BENCH_throughput.json`:
//!
//! * `copy_encode` — the pre-segmentation hot path: every response body
//!   is memcpy'd from the cache `Arc` into the outbox (the default
//!   `Codec::encode_reply`, forced via a wrapper codec that does not
//!   override it).
//! * `zero_copy` — the current design: the head rides in an owned
//!   segment, the 64 KiB cached body as a shared `Arc` segment that the
//!   drain loop writes straight from the cache's allocation.
//! * `single_flight` — a herd of workers missing one cold path at once:
//!   store loads and time to last reply, coalescing off vs on.
//!
//! The pipeline is driven exactly as a dispatcher drives it — decode →
//! handle → encode through [`Engine::handle_work`], then the outbox is
//! drained `front_chunk`/`advance`-wise in socket-sized writes — so the
//! comparison isolates the per-request encode + drain work without the
//! mem-pipe's byte-at-a-time shuffling drowning it. A full-server smoke
//! exchange over the mem transport guards against the driver drifting
//! from the real assembly. Pass `--quick` for the CI smoke run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use nserver_cache::{PolicyKind, SharedFileCache, DEFAULT_SHARDS};
use nserver_core::metrics::MetricsRegistry;
use nserver_core::pipeline::{
    Action, Codec, ConnCtx, ConnShared, DecodeState, Engine, ProtocolError, Service, Work,
};
use nserver_core::profiling::ServerStats;
use nserver_core::reactor::DispatchNotifier;
use nserver_core::server::ServerBuilder;
use nserver_core::trace::DebugTracer;
use nserver_core::transport::{mem, ReadOutcome, StreamIo};
use nserver_http::{
    cops_http_options, ContentStore, HttpCodec, MemStore, Request, Response, StaticFileService,
};
use parking_lot::RwLock;

const FILE_BYTES: usize = 64 * 1024;
const FILE_PATH: &str = "/bench64k.bin";
/// Socket-sized drain granularity (a realistic per-`try_write` quantum).
const WRITE_QUANTUM: usize = 16 * 1024;

/// The pre-segmentation codec: identical parsing, but replies go through
/// the default `encode_reply`, which copies the body into an owned
/// buffer — the behavior this change removed from the hot path.
#[derive(Debug, Default, Clone, Copy)]
struct CopyHttpCodec(HttpCodec);

impl Codec for CopyHttpCodec {
    type Request = Request;
    type Response = Response;

    fn decode(&self, buf: &mut BytesMut) -> Result<Option<Request>, ProtocolError> {
        self.0.decode(buf)
    }

    fn decode_with(
        &self,
        buf: &mut BytesMut,
        state: &mut DecodeState,
    ) -> Result<Option<Request>, ProtocolError> {
        self.0.decode_with(buf, state)
    }

    fn encode(&self, resp: &Response, out: &mut BytesMut) -> Result<(), ProtocolError> {
        self.0.encode(resp, out)
    }
    // No encode_reply override: the provided default copies the body.
}

/// `StaticFileService` is a `Service<HttpCodec>`; re-expose it under the
/// copying codec (same request/response types, so a pure delegation).
struct CopyService(StaticFileService<MemStore>);

impl Service<CopyHttpCodec> for CopyService {
    fn handle(&self, ctx: &ConnCtx, req: Request) -> Action<Response> {
        self.0.handle(ctx, req)
    }
}

fn store() -> MemStore {
    let mut s = MemStore::new();
    s.insert(FILE_PATH, vec![0x5A; FILE_BYTES]);
    s
}

fn file_service() -> StaticFileService<MemStore> {
    let cache = SharedFileCache::sharded(8 << 20, PolicyKind::Lru, DEFAULT_SHARDS);
    StaticFileService::new(store(), Some(cache))
}

/// Keep-alive request/response cycles on `conns` pipeline connections:
/// feed one GET, run the engine synchronously (helper pool absent, so
/// deferred warm-up loads run in place), drain the outbox in
/// socket-sized chunks. Returns requests/second over the whole run.
fn measure_pipeline<C, S>(codec: C, service: S, conns: usize, reqs_per_conn: usize) -> f64
where
    C: Codec<Request = Request, Response = Response>,
    S: Service<C>,
{
    let e = Engine {
        codec: Arc::new(codec),
        service: Arc::new(service),
        registry: Arc::new(RwLock::new(HashMap::new())),
        stats: ServerStats::new_shared(),
        metrics: MetricsRegistry::disabled(),
        tracer: DebugTracer::disabled(),
        logger: None,
        helper: None,
        completion_tx: None,
        notifier: DispatchNotifier::disabled(),
    };
    let request =
        format!("GET {FILE_PATH} HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\r\n");
    let conn_list: Vec<_> = (1..=conns as u64)
        .map(|id| {
            let conn = ConnShared::new(id, format!("bench-{id}"), nserver_core::event::Priority(0));
            e.registry.write().insert(id, Arc::clone(&conn));
            conn
        })
        .collect();
    // Warm the cache: one request per connection, drained and discarded.
    for (i, conn) in conn_list.iter().enumerate() {
        conn.inbox.lock().extend_from_slice(request.as_bytes());
        e.handle_work(Work::Process(i as u64 + 1));
        conn.outbox.lock().clear();
    }

    let mut sink = 0usize;
    let t0 = Instant::now();
    for _ in 0..reqs_per_conn {
        for (i, conn) in conn_list.iter().enumerate() {
            conn.inbox.lock().extend_from_slice(request.as_bytes());
            e.handle_work(Work::Process(i as u64 + 1));
            // Send Reply: drain exactly as the dispatcher flush loop does.
            let mut out = conn.outbox.lock();
            loop {
                let n = {
                    let Some(chunk) = out.front_chunk() else {
                        break;
                    };
                    let n = chunk.len().min(WRITE_QUANTUM);
                    sink = sink.wrapping_add(chunk[..n.min(8)].iter().map(|&b| b as usize).sum());
                    n
                };
                out.advance(n);
            }
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    assert!(sink > 0, "drained bytes were observed");
    (conns * reqs_per_conn) as f64 / secs
}

/// A store that counts loads and emulates disk latency. Clones share
/// the counter (the orphan rule forbids `impl ContentStore for Arc<_>`
/// outside the trait's crate).
#[derive(Clone)]
struct SlowCountingStore {
    inner: Arc<MemStore>,
    loads: Arc<AtomicUsize>,
    latency: Duration,
}

impl ContentStore for SlowCountingStore {
    fn load(&self, path: &str) -> Option<Arc<Vec<u8>>> {
        self.loads.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.latency);
        self.inner.load(path)
    }
}

/// A thundering herd of `herd` workers missing one cold path at once
/// (every deferred job runs concurrently, as on the Proactor helper
/// pool). Returns (store loads, elapsed ms to the last reply).
fn measure_herd(herd: usize, coalesce: bool, miss_latency: Duration) -> (usize, f64) {
    let store = SlowCountingStore {
        inner: Arc::new(store()),
        loads: Arc::new(AtomicUsize::new(0)),
        latency: miss_latency,
    };
    let cache = SharedFileCache::sharded(8 << 20, PolicyKind::Lru, DEFAULT_SHARDS);
    let svc = StaticFileService::new(store.clone(), Some(cache));
    let svc = if coalesce {
        svc
    } else {
        svc.without_miss_coalescing()
    };
    let ctx = ConnCtx {
        id: 1,
        peer: "herd".into(),
        priority: nserver_core::event::Priority(0),
    };
    let req = Request {
        method: nserver_http::Method::Get,
        target: FILE_PATH.into(),
        version: nserver_http::Version::Http11,
        headers: nserver_http::Headers::new(),
    };
    // Every worker sees the miss before any job runs (the herd shape).
    let jobs: Vec<_> = (0..herd)
        .map(|_| match svc.handle(&ctx, req.clone()) {
            Action::Defer(job) => job,
            other => panic!("expected Defer on cold path, got {other:?}"),
        })
        .collect();
    let barrier = Arc::new(Barrier::new(jobs.len()));
    let t0 = Instant::now();
    let handles: Vec<_> = jobs
        .into_iter()
        .map(|job| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                job()
            })
        })
        .collect();
    for h in handles {
        let resp = h.join().unwrap();
        assert_eq!(resp.body.len(), FILE_BYTES);
    }
    let elapsed = t0.elapsed().as_secs_f64() * 1e3;
    (store.loads.load(Ordering::SeqCst), elapsed)
}

/// End-to-end guard: one exchange against the fully assembled COPS-HTTP
/// server over the mem transport, so the pipeline driver above cannot
/// drift from what the real assembly serves.
fn smoke_full_server() {
    let cache = SharedFileCache::sharded(8 << 20, PolicyKind::Lru, DEFAULT_SHARDS);
    let (listener, connector) = mem::listener("keepalive-bench-smoke");
    let server = ServerBuilder::new(
        cops_http_options(),
        HttpCodec::new(),
        StaticFileService::new(store(), Some(cache)),
    )
    .unwrap()
    .serve(listener);
    let request = format!("GET {FILE_PATH} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n");
    let mut conn = connector.connect();
    let mut sent = 0;
    let bytes = request.as_bytes();
    while sent < bytes.len() {
        match conn.try_write(&bytes[sent..]) {
            Ok(0) => std::thread::sleep(Duration::from_micros(50)),
            Ok(n) => sent += n,
            Err(e) => panic!("smoke write failed: {e}"),
        }
    }
    let mut got = Vec::new();
    let mut buf = [0u8; 8192];
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match conn.try_read(&mut buf) {
            Ok(ReadOutcome::Closed) => break,
            Ok(ReadOutcome::WouldBlock) => {
                if Instant::now() > deadline {
                    panic!("smoke exchange timed out with {} bytes", got.len());
                }
                std::thread::sleep(Duration::from_micros(50));
            }
            Ok(ReadOutcome::Data(n)) => got.extend_from_slice(&buf[..n]),
            Err(e) => panic!("smoke read failed: {e}"),
        }
    }
    server.shutdown();
    let head_end = got
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let body = &got[head_end + 4..];
    assert_eq!(body.len(), FILE_BYTES, "full body served");
    assert!(body.iter().all(|&b| b == 0x5A), "body bytes intact");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (conns, reqs) = if quick { (4, 200) } else { (8, 4000) };
    let herd = 8;
    let miss_latency = Duration::from_millis(if quick { 2 } else { 10 });

    println!(
        "keep-alive cached-hit throughput: {conns} connections x {reqs} requests, {FILE_BYTES}-byte file\n"
    );
    // Interleaved warmup of both modes before measuring either.
    let _ = measure_pipeline(CopyHttpCodec::default(), CopyService(file_service()), 2, 50);
    let _ = measure_pipeline(HttpCodec::new(), file_service(), 2, 50);

    let copy_rps = measure_pipeline(
        CopyHttpCodec::default(),
        CopyService(file_service()),
        conns,
        reqs,
    );
    let zero_rps = measure_pipeline(HttpCodec::new(), file_service(), conns, reqs);
    let improvement = (zero_rps / copy_rps - 1.0) * 100.0;
    let mb = |rps: f64| rps * FILE_BYTES as f64 / (1024.0 * 1024.0);

    println!("{:<14} {:>14} {:>12}", "mode", "req/s", "MiB/s");
    println!(
        "{:<14} {:>14.0} {:>12.1}",
        "copy_encode",
        copy_rps,
        mb(copy_rps)
    );
    println!(
        "{:<14} {:>14.0} {:>12.1}",
        "zero_copy",
        zero_rps,
        mb(zero_rps)
    );
    println!("\nzero-copy throughput improvement: {improvement:+.1}%");

    println!(
        "\nsingle-flight: herd of {herd} cold misses, {:?} disk latency",
        miss_latency
    );
    let (loads_before, ms_before) = measure_herd(herd, false, miss_latency);
    let (loads_after, ms_after) = measure_herd(herd, true, miss_latency);
    println!("{:<14} {:>12} {:>12}", "mode", "store loads", "ms");
    println!(
        "{:<14} {:>12} {:>12.1}",
        "independent", loads_before, ms_before
    );
    println!("{:<14} {:>12} {:>12.1}", "coalesced", loads_after, ms_after);

    smoke_full_server();
    println!("\nfull-server smoke exchange: ok");

    let json = format!(
        "{{\n  \"benchmark\": \"keepalive_throughput\",\n  \"file_bytes\": {FILE_BYTES},\n  \"connections\": {conns},\n  \"requests_per_connection\": {reqs},\n  \"copy_encode\": {{ \"requests_per_sec\": {copy_rps:.0}, \"mib_per_sec\": {:.1} }},\n  \"zero_copy\": {{ \"requests_per_sec\": {zero_rps:.0}, \"mib_per_sec\": {:.1} }},\n  \"improvement_pct\": {improvement:.1},\n  \"single_flight\": {{\n    \"herd\": {herd},\n    \"miss_latency_ms\": {},\n    \"independent\": {{ \"store_loads\": {loads_before}, \"elapsed_ms\": {ms_before:.1} }},\n    \"coalesced\": {{ \"store_loads\": {loads_after}, \"elapsed_ms\": {ms_after:.1} }}\n  }}\n}}\n",
        mb(copy_rps),
        mb(zero_rps),
        miss_latency.as_millis(),
    );
    let path = nserver_bench::crates_dir()
        .parent()
        .map(|p| p.join("BENCH_throughput.json"))
        .unwrap_or_else(|| "BENCH_throughput.json".into());
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
