//! O1 ablation artifact: idle-wake latency of the dispatch loop.
//!
//! Measures how long an idle dispatch thread takes to notice newly
//! arrived work under two regimes:
//!
//! * `sleep_poll` — the scan-and-sleep loop this repository used before
//!   readiness demultiplexing: check for work, sleep 200 µs, repeat.
//! * `poller_waker` — the current design: block in `MemPoller::wait`
//!   until the registered [`Waker`] fires.
//!
//! Writes `BENCH_dispatch.json` at the workspace root recording the
//! distributions and the mean-latency improvement factor. Pass `--quick`
//! for a shortened run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

use nserver_core::transport::{mem, Poller};

/// Latency distribution summary in nanoseconds.
struct Summary {
    mean_ns: f64,
    p50_ns: u64,
    p95_ns: u64,
    max_ns: u64,
}

fn summarize(mut samples: Vec<u64>) -> Summary {
    samples.sort_unstable();
    let n = samples.len();
    Summary {
        mean_ns: samples.iter().sum::<u64>() as f64 / n as f64,
        p50_ns: samples[n / 2],
        p95_ns: samples[n * 95 / 100],
        max_ns: samples[n - 1],
    }
}

/// The pre-demultiplexing dispatch loop: poll a flag, sleep 200 µs when
/// idle. Reported latency is signal → loop notices.
fn measure_sleep_poll(iters: usize) -> Summary {
    let flag = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let (ack_tx, ack_rx) = channel::<()>();
    let worker = {
        let flag = Arc::clone(&flag);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if flag.swap(false, Ordering::Relaxed) {
                    let _ = ack_tx.send(());
                } else {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        })
    };
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        flag.store(true, Ordering::Relaxed);
        ack_rx.recv().unwrap();
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    stop.store(true, Ordering::Relaxed);
    flag.store(true, Ordering::Relaxed);
    let _ = worker.join();
    summarize(samples)
}

/// The demultiplexed dispatch loop: block in the poller, get pulled out
/// by the waker. Reported latency is wake → `wait` returns.
fn measure_poller_waker(iters: usize) -> Summary {
    let mut poller = mem::MemPoller::new();
    let waker = poller.waker();
    let stop = Arc::new(AtomicBool::new(false));
    let (ack_tx, ack_rx) = channel::<()>();
    let worker = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut events = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                poller.wait(&mut events, None).unwrap();
                let _ = ack_tx.send(());
            }
        })
    };
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        waker.wake();
        ack_rx.recv().unwrap();
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    stop.store(true, Ordering::Relaxed);
    waker.wake();
    let _ = worker.join();
    summarize(samples)
}

fn json_block(name: &str, s: &Summary) -> String {
    format!(
        "  \"{name}\": {{\n    \"mean_ns\": {:.0},\n    \"p50_ns\": {},\n    \"p95_ns\": {},\n    \"max_ns\": {}\n  }}",
        s.mean_ns, s.p50_ns, s.p95_ns, s.max_ns
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 200 } else { 2000 };

    println!("idle-wake latency, {iters} wake cycles per mode\n");
    // Interleave a warmup of each before measuring either.
    let _ = measure_sleep_poll(50);
    let _ = measure_poller_waker(50);

    let sleep = measure_sleep_poll(iters);
    let poller = measure_poller_waker(iters);
    let speedup = sleep.mean_ns / poller.mean_ns;

    println!("{:<16} {:>12} {:>12} {:>12} {:>12}", "mode", "mean ns", "p50 ns", "p95 ns", "max ns");
    for (name, s) in [("sleep_poll", &sleep), ("poller_waker", &poller)] {
        println!(
            "{name:<16} {:>12.0} {:>12} {:>12} {:>12}",
            s.mean_ns, s.p50_ns, s.p95_ns, s.max_ns
        );
    }
    println!("\nmean idle-wake latency improvement: {speedup:.1}x");

    let json = format!(
        "{{\n  \"benchmark\": \"idle_wake_latency\",\n  \"iters_per_mode\": {iters},\n{},\n{},\n  \"mean_speedup\": {:.2}\n}}\n",
        json_block("sleep_poll", &sleep),
        json_block("poller_waker", &poller),
        speedup
    );
    let path = nserver_bench::crates_dir()
        .parent()
        .map(|p| p.join("BENCH_dispatch.json"))
        .unwrap_or_else(|| "BENCH_dispatch.json".into());
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
