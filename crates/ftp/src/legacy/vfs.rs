//! An in-memory virtual filesystem — part of the reusable library layer
//! (the equivalent of Apache FTPServer's file-system abstraction).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

/// A node in the virtual tree.
#[derive(Debug, Clone)]
enum Node {
    File(Arc<Vec<u8>>),
    Dir,
}

/// Thread-safe virtual filesystem with absolute `/`-separated paths.
#[derive(Default)]
pub struct Vfs {
    nodes: RwLock<BTreeMap<String, Node>>,
}

/// Normalise an absolute path: collapse `//`, resolve `.` and `..`,
/// reject escapes above root.
pub fn normalize(base: &str, path: &str) -> Option<String> {
    let joined = if path.starts_with('/') {
        path.to_string()
    } else if base.ends_with('/') {
        format!("{base}{path}")
    } else {
        format!("{base}/{path}")
    };
    let mut parts: Vec<&str> = Vec::new();
    for seg in joined.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                parts.pop()?;
            }
            s => parts.push(s),
        }
    }
    Some(format!("/{}", parts.join("/")))
}

impl Vfs {
    /// Empty filesystem containing only `/`.
    pub fn new() -> Self {
        let vfs = Self::default();
        vfs.nodes.write().insert("/".into(), Node::Dir);
        vfs
    }

    /// Create a directory (parents must exist).
    pub fn mkdir(&self, path: &str) -> bool {
        let path = match normalize("/", path) {
            Some(p) => p,
            None => return false,
        };
        let mut nodes = self.nodes.write();
        if nodes.contains_key(&path) {
            return false;
        }
        if !Self::parent_is_dir(&nodes, &path) {
            return false;
        }
        nodes.insert(path, Node::Dir);
        true
    }

    /// Write a file (parent directory must exist; overwrites).
    pub fn write(&self, path: &str, data: Vec<u8>) -> bool {
        let path = match normalize("/", path) {
            Some(p) => p,
            None => return false,
        };
        let mut nodes = self.nodes.write();
        if matches!(nodes.get(&path), Some(Node::Dir)) {
            return false;
        }
        if !Self::parent_is_dir(&nodes, &path) {
            return false;
        }
        nodes.insert(path, Node::File(Arc::new(data)));
        true
    }

    /// Read a file.
    pub fn read(&self, path: &str) -> Option<Arc<Vec<u8>>> {
        let path = normalize("/", path)?;
        match self.nodes.read().get(&path) {
            Some(Node::File(data)) => Some(Arc::clone(data)),
            _ => None,
        }
    }

    /// Delete a file (not directories).
    pub fn delete(&self, path: &str) -> bool {
        let path = match normalize("/", path) {
            Some(p) => p,
            None => return false,
        };
        let mut nodes = self.nodes.write();
        match nodes.get(&path) {
            Some(Node::File(_)) => {
                nodes.remove(&path);
                true
            }
            _ => false,
        }
    }

    /// Whether the path names a directory.
    pub fn is_dir(&self, path: &str) -> bool {
        match normalize("/", path) {
            Some(p) => matches!(self.nodes.read().get(&p), Some(Node::Dir)),
            None => false,
        }
    }

    /// List the immediate children of a directory, as `name` (files) and
    /// `name/` (directories), sorted.
    pub fn list(&self, path: &str) -> Option<Vec<String>> {
        let path = normalize("/", path)?;
        let nodes = self.nodes.read();
        if !matches!(nodes.get(&path), Some(Node::Dir)) {
            return None;
        }
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let mut out = Vec::new();
        for (p, node) in nodes.range(prefix.clone()..) {
            if !p.starts_with(&prefix) {
                break;
            }
            let rest = &p[prefix.len()..];
            if rest.is_empty() || rest.contains('/') {
                continue;
            }
            match node {
                Node::Dir => out.push(format!("{rest}/")),
                Node::File(_) => out.push(rest.to_string()),
            }
        }
        Some(out)
    }

    /// File size, if the path names a file.
    pub fn size(&self, path: &str) -> Option<u64> {
        self.read(path).map(|d| d.len() as u64)
    }

    fn parent_is_dir(nodes: &BTreeMap<String, Node>, path: &str) -> bool {
        let parent = match path.rfind('/') {
            Some(0) => "/",
            Some(i) => &path[..i],
            None => return false,
        };
        matches!(nodes.get(parent), Some(Node::Dir))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_paths() {
        assert_eq!(normalize("/", "a/b").unwrap(), "/a/b");
        assert_eq!(normalize("/a", "b").unwrap(), "/a/b");
        assert_eq!(normalize("/a/b", "../c").unwrap(), "/a/c");
        assert_eq!(normalize("/", "/x//y/./z").unwrap(), "/x/y/z");
        assert_eq!(normalize("/a", "..").unwrap(), "/");
        assert!(normalize("/", "../..").is_none());
    }

    #[test]
    fn mkdir_write_read_round_trip() {
        let vfs = Vfs::new();
        assert!(vfs.mkdir("/pub"));
        assert!(vfs.write("/pub/readme.txt", b"hello".to_vec()));
        assert_eq!(&**vfs.read("/pub/readme.txt").unwrap(), b"hello");
        assert_eq!(vfs.size("/pub/readme.txt"), Some(5));
    }

    #[test]
    fn mkdir_requires_parent_and_uniqueness() {
        let vfs = Vfs::new();
        assert!(!vfs.mkdir("/a/b"), "parent missing");
        assert!(vfs.mkdir("/a"));
        assert!(vfs.mkdir("/a/b"));
        assert!(!vfs.mkdir("/a"), "already exists");
    }

    #[test]
    fn write_refuses_dir_path_and_missing_parent() {
        let vfs = Vfs::new();
        vfs.mkdir("/d");
        assert!(!vfs.write("/d", b"x".to_vec()), "is a directory");
        assert!(!vfs.write("/missing/f", b"x".to_vec()));
    }

    #[test]
    fn list_returns_children_sorted_with_dir_suffix() {
        let vfs = Vfs::new();
        vfs.mkdir("/pub");
        vfs.mkdir("/pub/sub");
        vfs.write("/pub/b.txt", vec![1]);
        vfs.write("/pub/a.txt", vec![2]);
        vfs.write("/pub/sub/deep.txt", vec![3]);
        let listing = vfs.list("/pub").unwrap();
        assert_eq!(listing, vec!["a.txt", "b.txt", "sub/"]);
        // Root listing sees only top-level entries.
        assert_eq!(vfs.list("/").unwrap(), vec!["pub/"]);
        // Listing a file fails.
        assert!(vfs.list("/pub/a.txt").is_none());
    }

    #[test]
    fn delete_only_files() {
        let vfs = Vfs::new();
        vfs.mkdir("/d");
        vfs.write("/f", vec![0]);
        assert!(vfs.delete("/f"));
        assert!(!vfs.delete("/f"), "already gone");
        assert!(!vfs.delete("/d"), "directories are not deletable");
        assert!(vfs.is_dir("/d"));
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::thread;
        let vfs = Arc::new(Vfs::new());
        vfs.mkdir("/t");
        let mut handles = Vec::new();
        for t in 0..4 {
            let vfs = Arc::clone(&vfs);
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    vfs.write(&format!("/t/f{t}_{i}"), vec![t as u8; 10]);
                    vfs.read(&format!("/t/f{t}_{i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(vfs.list("/t").unwrap().len(), 400);
    }
}
