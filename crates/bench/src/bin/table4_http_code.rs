//! Table 4 — the COPS-HTTP code distribution.
//!
//! Paper: 2,697 NCSS generated, 449 NCSS of HTTP protocol library, 785
//! NCSS of other application code — i.e. with an existing protocol
//! library only ~20% of the server is handwritten. We measure the same
//! three categories: the generated framework for the COPS-HTTP preset,
//! our protocol library (`types.rs` + `parse.rs`), and the server-
//! specific application code (codec, static-file service, presets).

use nserver_bench::{render_table, stats_for, write_csv};
use nserver_codegen::generate;
use nserver_http::cops_http_options;

fn main() {
    let generated_fw = generate("cops-http", &cops_http_options(), "../crates");
    let generated = generated_fw.generated_stats();
    let protocol = stats_for("http", &["types.rs", "parse.rs"]);
    let app = stats_for("http", &["lib.rs", "codec.rs", "service.rs", "preset.rs"]);
    let total = generated.merge(protocol).merge(app);

    let paper = [
        ("Generated code", 79, 474, 2697),
        ("HTTP protocol code", 10, 50, 449),
        ("Other application code", 16, 89, 785),
        ("Total code", 105, 613, 3931),
    ];
    let ours = [generated, protocol, app, total];

    println!("TABLE 4 — THE CODE DISTRIBUTION OF COPS-HTTP");
    println!("(paper counts Java classes/methods/NCSS; ours count Rust types/fns/NCSS)\n");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for ((name, p_classes, p_methods, p_ncss), s) in paper.iter().zip(&ours) {
        rows.push(vec![
            name.to_string(),
            format!("{p_classes}"),
            format!("{p_methods}"),
            format!("{p_ncss}"),
            format!("{}", s.classes),
            format!("{}", s.methods),
            format!("{}", s.ncss),
        ]);
        csv.push(format!(
            "{name},{p_classes},{p_methods},{p_ncss},{},{},{}",
            s.classes, s.methods, s.ncss
        ));
    }
    println!(
        "{}",
        render_table(
            &[
                "Category",
                "paper classes",
                "paper methods",
                "paper NCSS",
                "our types",
                "our fns",
                "our NCSS",
            ],
            &rows,
        )
    );

    let hand_frac = app.ncss as f64 / total.ncss as f64 * 100.0;
    println!(
        "Shape check (paper: ~20% handwritten given an existing protocol\n\
         library): our server-specific application code is {} NCSS of {} total\n\
         = {:.0}%.",
        app.ncss, total.ncss, hand_frac
    );

    write_csv(
        "table4_http_code.csv",
        "category,paper_classes,paper_methods,paper_ncss,our_types,our_fns,our_ncss",
        &csv,
    );
}
