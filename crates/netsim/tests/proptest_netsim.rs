//! Property-based tests over the simulation substrate: event ordering,
//! link FIFO/monotonicity, statistics correctness.

use nserver_netsim::{jain_index, Link, Model, OnlineStats, Scheduler, SimTime};
use proptest::prelude::*;

struct Collector {
    seen: Vec<(u64, u32)>,
}

impl Model for Collector {
    type Ev = u32;
    fn handle(&mut self, now: SimTime, ev: u32, _s: &mut Scheduler<u32>) {
        self.seen.push((now.as_micros(), ev));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events always arrive in non-decreasing time order, and ties honour
    /// insertion order.
    #[test]
    fn engine_delivers_in_time_order(times in proptest::collection::vec(0u64..10_000, 1..300)) {
        let mut m = Collector { seen: Vec::new() };
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.at(SimTime::from_micros(t), i as u32);
        }
        s.run_to_completion(&mut m);
        prop_assert_eq!(m.seen.len(), times.len());
        for w in m.seen.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broke insertion order");
            }
        }
    }

    /// Splitting a run at an arbitrary horizon changes nothing: run_until
    /// then run_to_completion sees the same sequence as one shot.
    #[test]
    fn engine_split_runs_are_equivalent(
        times in proptest::collection::vec(0u64..10_000, 1..200),
        split in 0u64..10_000,
    ) {
        let build = |times: &[u64]| {
            let mut s = Scheduler::new();
            for (i, &t) in times.iter().enumerate() {
                s.at(SimTime::from_micros(t), i as u32);
            }
            s
        };
        let mut whole = Collector { seen: Vec::new() };
        let mut s1 = build(&times);
        s1.run_to_completion(&mut whole);

        let mut parts = Collector { seen: Vec::new() };
        let mut s2 = build(&times);
        s2.run_until(&mut parts, SimTime::from_micros(split));
        s2.run_to_completion(&mut parts);
        prop_assert_eq!(whole.seen, parts.seen);
    }

    /// Link FIFO: completion times are non-decreasing in send order, and
    /// every message takes at least its serialization time.
    #[test]
    fn link_is_fifo_and_causal(
        msgs in proptest::collection::vec((0u64..1000, 1u64..100_000), 1..100),
    ) {
        let mut link = Link::new(100_000_000);
        let mut sorted = msgs.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut last_done = SimTime::ZERO;
        for &(t, bytes) in &sorted {
            let now = SimTime::from_micros(t);
            let done = link.send(now, bytes);
            prop_assert!(done >= last_done, "FIFO violated");
            prop_assert!(done >= now + link.tx_time(bytes), "faster than line rate");
            last_done = done;
        }
        // Conservation: bytes carried equals sum of payloads.
        let total: u64 = sorted.iter().map(|&(_, b)| b).sum();
        prop_assert_eq!(link.bytes_carried(), total);
    }

    /// Jain index is scale-invariant, bounded by (0, 1], and maximal only
    /// for equal allocations.
    #[test]
    fn jain_properties(xs in proptest::collection::vec(0.0f64..1e6, 1..100), k in 1.0f64..100.0) {
        let j = jain_index(&xs);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-12, "out of range: {j}");
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let js = jain_index(&scaled);
        prop_assert!((j - js).abs() < 1e-9, "not scale-invariant: {j} vs {js}");
        // Equal allocations are perfectly fair.
        let equal = vec![xs[0].max(1.0); xs.len()];
        prop_assert!((jain_index(&equal) - 1.0).abs() < 1e-12);
    }

    /// OnlineStats matches a naive reference implementation.
    #[test]
    fn online_stats_matches_reference(xs in proptest::collection::vec(-1e5f64..1e5, 2..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-5 * (1.0 + var.abs()));
        prop_assert_eq!(s.count(), xs.len() as u64);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
    }
}
