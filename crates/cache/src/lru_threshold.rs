//! LRU-Threshold replacement (Abrams et al. — reference [1] of the paper).

use crate::lru::Lru;
use crate::policy::{EntryId, EntryMeta, ReplacementPolicy};

/// LRU with an admission threshold: documents larger than a configured
/// fraction of the cache capacity are never cached at all (they would
/// displace too many small, popular documents); everything admitted is
/// managed with plain LRU.
#[derive(Debug)]
pub struct LruThreshold {
    inner: Lru,
    max_size_permille: u32,
}

impl LruThreshold {
    /// `max_size_permille` is the largest cacheable object size expressed in
    /// parts-per-thousand of the cache capacity (e.g. `250` = 25 %).
    pub fn new(max_size_permille: u32) -> Self {
        Self {
            inner: Lru::new(),
            max_size_permille,
        }
    }

    /// The configured threshold in permille of capacity.
    pub fn max_size_permille(&self) -> u32 {
        self.max_size_permille
    }
}

impl ReplacementPolicy for LruThreshold {
    fn name(&self) -> &'static str {
        "LRU-Threshold"
    }

    fn admits(&self, size: u64, capacity: u64) -> bool {
        // ceil-free integer compare: size/capacity <= permille/1000.
        size.saturating_mul(1000) <= capacity.saturating_mul(self.max_size_permille as u64)
    }

    fn on_insert(&mut self, id: EntryId, meta: &EntryMeta) {
        self.inner.on_insert(id, meta);
    }

    fn on_access(&mut self, id: EntryId, meta: &EntryMeta) {
        self.inner.on_access(id, meta);
    }

    fn on_remove(&mut self, id: EntryId) {
        self.inner.on_remove(id);
    }

    fn choose_victim(&mut self, incoming_size: u64) -> Option<EntryId> {
        self.inner.choose_victim(incoming_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta_at(t: u64) -> EntryMeta {
        EntryMeta {
            size: 1,
            last_access: t,
            access_count: 1,
            inserted_at: t,
        }
    }

    #[test]
    fn rejects_documents_over_threshold() {
        let p = LruThreshold::new(250); // 25% of capacity
        assert!(p.admits(250, 1000));
        assert!(!p.admits(251, 1000));
        assert!(p.admits(0, 1000));
    }

    #[test]
    fn threshold_of_1000_admits_anything_that_fits() {
        let p = LruThreshold::new(1000);
        assert!(p.admits(1000, 1000));
        assert!(!p.admits(1001, 1000));
    }

    #[test]
    fn eviction_is_plain_lru() {
        let mut p = LruThreshold::new(500);
        p.on_insert(1, &meta_at(0));
        p.on_insert(2, &meta_at(1));
        p.on_access(1, &meta_at(2));
        assert_eq!(p.choose_victim(1), Some(2));
        p.on_remove(2);
        assert_eq!(p.choose_victim(1), Some(1));
    }

    #[test]
    fn admits_handles_overflow_sizes() {
        let p = LruThreshold::new(250);
        assert!(!p.admits(u64::MAX / 2, 1000));
    }
}
