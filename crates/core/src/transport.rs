//! Transport abstraction: non-blocking listeners and streams, plus the
//! readiness demultiplexer ([`Poller`]) that drives the dispatch loop.
//!
//! The paper's framework relies on Java NIO for non-blocking socket I/O:
//! the Event Dispatcher blocks in a `Selector` until some registered
//! channel is ready, instead of scanning sockets in a loop. The Rust
//! analogue here is the [`Poller`] trait — implemented over raw `epoll`
//! for TCP ([`EpollPoller`]) and over a condvar wake-list for the
//! in-memory [`mem`] transport ([`mem::MemPoller`]) — so the entire
//! framework, including its blocking-wait behaviour, can be exercised
//! deterministically without touching the network stack.
//!
//! A [`Waker`] is the cross-thread half of the demultiplexer: worker
//! threads, the Proactor helper pool and the shutdown path use it to pull
//! a dispatcher out of [`Poller::wait`] when an event originates off the
//! wire (a reply became ready, a completion arrived, the server stops).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Result of a non-blocking read attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// `n` bytes were read into the buffer.
    Data(usize),
    /// No data available right now.
    WouldBlock,
    /// The peer closed its end.
    Closed,
}

/// A non-blocking byte stream.
pub trait StreamIo: Send + 'static {
    /// Attempt to read into `buf` without blocking.
    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<ReadOutcome>;
    /// Attempt to write from `data` without blocking; returns bytes
    /// written (0 means "would block").
    fn try_write(&mut self, data: &[u8]) -> io::Result<usize>;
    /// Human-readable peer identity (IP:port for TCP).
    fn peer_label(&self) -> String;
    /// Close the stream (idempotent). Closing while unread peer bytes
    /// sit in the receive queue makes a kernel transport answer with RST
    /// — discarding reply data the peer has not yet consumed. Server
    /// close paths that owe the peer bytes must use
    /// [`shutdown_write`](Self::shutdown_write) plus a lingering drain
    /// instead.
    fn shutdown(&mut self);
    /// Half-close: send FIN (end the write side) but keep reading. This
    /// does **not** flush: the caller must have fully drained its
    /// outgoing queue first — any bytes still queued above this call are
    /// lost. After the FIN the caller keeps reading and discarding until
    /// peer EOF or a linger deadline (lingering close), then calls
    /// [`shutdown`](Self::shutdown).
    fn shutdown_write(&mut self);
}

// ---------------------------------------------------------------------------
// Readiness demultiplexing
// ---------------------------------------------------------------------------

/// The token under which a dispatcher registers its listening endpoint.
/// Connection ids start at 1, so 0 is free.
pub const LISTENER_TOKEN: u64 = 0;

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the source has bytes (or EOF) to read.
    pub readable: bool,
    /// Wake when the sink can accept bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// No interest: stay registered but silent (a connection that is
    /// draining replies for a peer we no longer read from).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness event returned by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the source was registered under.
    pub token: u64,
    /// The source is readable (data, EOF, or error — reading will not
    /// block either way).
    pub readable: bool,
    /// The sink is writable.
    pub writable: bool,
}

/// A cheap, cloneable handle that pulls a [`Poller`] out of `wait` from
/// any thread. Outlives its poller: waking a dropped poller is a no-op.
#[derive(Clone)]
pub struct Waker {
    inner: Arc<dyn Fn() + Send + Sync>,
}

impl Waker {
    /// Wrap a wake closure.
    pub fn new(f: impl Fn() + Send + Sync + 'static) -> Self {
        Self { inner: Arc::new(f) }
    }

    /// A waker that does nothing (for tests and standalone engines).
    pub fn noop() -> Self {
        Self::new(|| {})
    }

    /// Interrupt the poller's wait. Spurious wakes are allowed; callers
    /// of `wait` must tolerate returning with zero events.
    pub fn wake(&self) {
        (self.inner)();
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Waker")
    }
}

/// A readiness demultiplexer: the Rust analogue of Java NIO's `Selector`.
///
/// Sources are registered under a caller-chosen token; `wait` blocks until
/// at least one registered source is ready, the timeout elapses, or a
/// [`Waker`] fires. Implementations are level-triggered where the OS is
/// (epoll); the in-memory backend is notification-based, so callers that
/// stop consuming before draining a source must re-poll it themselves.
pub trait Poller: Send + 'static {
    /// The stream type this poller understands.
    type Stream: StreamIo;

    /// Start watching a stream under `token`.
    fn register(&mut self, token: u64, stream: &Self::Stream, interest: Interest)
        -> io::Result<()>;

    /// Change the interest set of an already-registered stream.
    fn reregister(
        &mut self,
        token: u64,
        stream: &Self::Stream,
        interest: Interest,
    ) -> io::Result<()>;

    /// Stop watching a stream.
    fn deregister(&mut self, token: u64, stream: &Self::Stream) -> io::Result<()>;

    /// Block until a registered source is ready, the timeout elapses, or a
    /// waker fires. Ready events are appended to `events` (cleared first).
    /// `None` blocks indefinitely. May return with zero events (timeout or
    /// spurious wake).
    fn wait(&mut self, events: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()>;

    /// A handle that interrupts `wait` from another thread.
    fn waker(&self) -> Waker;
}

/// A non-blocking connection acceptor.
pub trait Listener: Send + 'static {
    /// The stream type produced.
    type Stream: StreamIo;
    /// The demultiplexer that watches this listener's streams.
    type Poller: Poller<Stream = Self::Stream>;
    /// Accept one pending connection if available.
    fn try_accept(&mut self) -> io::Result<Option<Self::Stream>>;
    /// Human-readable local address.
    fn local_label(&self) -> String;
    /// Create a poller compatible with this transport. Every dispatcher
    /// gets one, whether or not it owns the listener.
    fn new_poller() -> io::Result<Self::Poller>;
    /// Register the listening endpoint itself with a poller under
    /// [`LISTENER_TOKEN`]; accept-readiness then surfaces through `wait`.
    fn register_listener(&self, poller: &mut Self::Poller) -> io::Result<()>;
    /// Stop watching the listening endpoint (the dispatcher disarms the
    /// acceptor while the overload controller pauses accepting).
    fn deregister_listener(&self, poller: &mut Self::Poller) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// TCP implementation
// ---------------------------------------------------------------------------

/// Non-blocking TCP listener.
pub struct TcpListenerNb {
    inner: TcpListener,
    label: String,
}

impl TcpListenerNb {
    /// Bind and switch to non-blocking mode. Binding port 0 picks a free
    /// port; see [`TcpListenerNb::local_label`] for the result.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let inner = TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        let label = inner
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into());
        Ok(Self { inner, label })
    }
}

impl Listener for TcpListenerNb {
    type Stream = TcpStreamNb;
    type Poller = TcpPoller;

    fn try_accept(&mut self) -> io::Result<Option<TcpStreamNb>> {
        match self.inner.accept() {
            Ok((stream, peer)) => {
                stream.set_nonblocking(true)?;
                let _ = stream.set_nodelay(true);
                Ok(Some(TcpStreamNb {
                    inner: stream,
                    peer: peer.to_string(),
                    open: true,
                }))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn local_label(&self) -> String {
        self.label.clone()
    }

    fn new_poller() -> io::Result<TcpPoller> {
        TcpPoller::new()
    }

    fn register_listener(&self, poller: &mut TcpPoller) -> io::Result<()> {
        poller.add_fd(LISTENER_TOKEN, raw_fd(&self.inner), Interest::READABLE)
    }

    fn deregister_listener(&self, poller: &mut TcpPoller) -> io::Result<()> {
        poller.del_fd(LISTENER_TOKEN, raw_fd(&self.inner))
    }
}

/// Non-blocking TCP stream.
pub struct TcpStreamNb {
    inner: TcpStream,
    peer: String,
    open: bool,
}

impl TcpStreamNb {
    /// Client-side connect (used by the Connector half of the
    /// Acceptor-Connector pattern and by tests).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let inner = TcpStream::connect(addr)?;
        inner.set_nonblocking(true)?;
        let _ = inner.set_nodelay(true);
        let peer = inner
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into());
        Ok(Self {
            inner,
            peer,
            open: true,
        })
    }

    #[cfg(unix)]
    fn fd(&self) -> i32 {
        raw_fd(&self.inner)
    }

}

#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}

impl StreamIo for TcpStreamNb {
    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<ReadOutcome> {
        if !self.open {
            return Ok(ReadOutcome::Closed);
        }
        match self.inner.read(buf) {
            Ok(0) => Ok(ReadOutcome::Closed),
            Ok(n) => Ok(ReadOutcome::Data(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(ReadOutcome::WouldBlock),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(ReadOutcome::WouldBlock),
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => Ok(ReadOutcome::Closed),
            Err(e) => Err(e),
        }
    }

    fn try_write(&mut self, data: &[u8]) -> io::Result<usize> {
        if !self.open {
            // Surfacing an error (rather than 0 = "would block") lets the
            // dispatcher reap a connection whose peer vanished while
            // response bytes were still queued.
            return Err(io::Error::new(io::ErrorKind::NotConnected, "closed"));
        }
        match self.inner.write(data) {
            Ok(n) => Ok(n),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(0),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) if e.kind() == io::ErrorKind::BrokenPipe => {
                self.open = false;
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    fn peer_label(&self) -> String {
        self.peer.clone()
    }

    fn shutdown(&mut self) {
        if self.open {
            let _ = self.inner.shutdown(std::net::Shutdown::Both);
            self.open = false;
        }
    }

    /// FIN-only: no flush — the caller guarantees its outgoing queue is
    /// empty (see the [`StreamIo`] contract). Closing a socket with
    /// unread peer bytes in its receive queue makes the kernel answer
    /// with RST, which discards reply data the peer has not yet
    /// consumed; a server or relay tearing a session down must FIN first
    /// and drain the peer rather than call `shutdown` directly.
    fn shutdown_write(&mut self) {
        if self.open {
            let _ = self.inner.shutdown(std::net::Shutdown::Write);
        }
    }
}

// ---------------------------------------------------------------------------
// epoll-backed poller (Linux)
// ---------------------------------------------------------------------------

/// The poller used for TCP transports on this platform.
#[cfg(target_os = "linux")]
pub type TcpPoller = EpollPoller;

/// The poller used for TCP transports on this platform.
#[cfg(all(unix, not(target_os = "linux")))]
pub type TcpPoller = fallback::FallbackPoller;

#[cfg(target_os = "linux")]
pub use self::epoll::EpollPoller;

#[cfg(target_os = "linux")]
mod epoll {
    //! Level-triggered epoll plus an eventfd waker, called straight
    //! through the C library (no external crates).

    use super::{Interest, PollEvent, Poller, TcpStreamNb, Waker};
    use std::io;
    use std::sync::Arc;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// Reserved token for the internal eventfd; never surfaces to callers.
    const WAKER_TOKEN: u64 = u64::MAX;

    const MAX_EVENTS: usize = 64;

    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// An owned eventfd; shared between the poller and its wakers so the
    /// fd stays valid for whichever side outlives the other.
    struct EventFd(i32);

    impl EventFd {
        fn new() -> io::Result<Self> {
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::other("eventfd failed"));
            }
            Ok(Self(fd))
        }

        fn signal(&self) {
            let one: u64 = 1;
            unsafe {
                let _ = write(self.0, one.to_ne_bytes().as_ptr(), 8);
            }
        }

        fn drain(&self) {
            let mut buf = [0u8; 8];
            unsafe {
                let _ = read(self.0, buf.as_mut_ptr(), 8);
            }
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            unsafe {
                let _ = close(self.0);
            }
        }
    }

    // The fd is used only via signal/drain, both thread-safe syscalls.
    unsafe impl Send for EventFd {}
    unsafe impl Sync for EventFd {}

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// Level-triggered epoll demultiplexer for TCP streams.
    pub struct EpollPoller {
        epfd: i32,
        wake_fd: Arc<EventFd>,
    }

    impl EpollPoller {
        /// Create the epoll instance and its eventfd waker.
        pub fn new() -> io::Result<Self> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::other("epoll_create1 failed"));
            }
            let wake_fd = Arc::new(EventFd::new()?);
            let poller = Self { epfd, wake_fd };
            poller.ctl(EPOLL_CTL_ADD, poller.wake_fd.0, EPOLLIN, WAKER_TOKEN)?;
            Ok(poller)
        }

        fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::other(format!(
                    "epoll_ctl op={op} fd={fd} failed"
                )));
            }
            Ok(())
        }

        /// Register a raw fd (used for listeners, relay sockets and tests).
        pub fn add_fd(&mut self, token: u64, fd: i32, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest_bits(interest), token)
        }

        /// Change a raw fd's interest set.
        pub fn mod_fd(&mut self, token: u64, fd: i32, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest_bits(interest), token)
        }

        /// Remove a raw fd.
        pub fn del_fd(&mut self, _token: u64, fd: i32) -> io::Result<()> {
            // The event argument is ignored for DEL but must be non-null
            // on pre-2.6.9 kernels; pass a dummy.
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            unsafe {
                let _ = close(self.epfd);
            }
        }
    }

    impl Poller for EpollPoller {
        type Stream = TcpStreamNb;

        fn register(
            &mut self,
            token: u64,
            stream: &TcpStreamNb,
            interest: Interest,
        ) -> io::Result<()> {
            self.add_fd(token, stream.fd(), interest)
        }

        fn reregister(
            &mut self,
            token: u64,
            stream: &TcpStreamNb,
            interest: Interest,
        ) -> io::Result<()> {
            self.mod_fd(token, stream.fd(), interest)
        }

        fn deregister(&mut self, token: u64, stream: &TcpStreamNb) -> io::Result<()> {
            self.del_fd(token, stream.fd())
        }

        fn wait(
            &mut self,
            events: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            let timeout_ms = match timeout {
                None => -1,
                Some(d) if d.is_zero() => 0,
                // Round up so a 0.4 ms deadline does not busy-spin at 0.
                Some(d) => d.as_millis().max(1).min(i32::MAX as u128) as i32,
            };
            let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let n =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms) };
            if n < 0 {
                // EINTR or transient failure: report a spurious wake and
                // let the dispatcher loop re-enter the wait.
                return Ok(());
            }
            for ev in raw.iter().take(n as usize) {
                let (bits, token) = (ev.events, ev.data);
                if token == WAKER_TOKEN {
                    self.wake_fd.drain();
                    continue;
                }
                events.push(PollEvent {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }

        fn waker(&self) -> Waker {
            let fd = Arc::clone(&self.wake_fd);
            Waker::new(move || fd.signal())
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod fallback {
    //! Portable degraded poller for non-Linux unix targets: no kernel
    //! readiness source, so `wait` bounds its sleep and reports every
    //! registered token per its interest. Functionally correct (callers
    //! must tolerate spurious readiness), but not load-bearing for
    //! performance the way [`super::EpollPoller`] is.

    use super::{Interest, PollEvent, Poller, TcpStreamNb, Waker};
    use parking_lot::{Condvar, Mutex};
    use std::collections::HashMap;
    use std::io;
    use std::sync::Arc;
    use std::time::Duration;

    struct Shared {
        woken: Mutex<bool>,
        cv: Condvar,
    }

    /// Sleep-bounded poll fallback.
    pub struct FallbackPoller {
        interests: HashMap<u64, Interest>,
        shared: Arc<Shared>,
    }

    impl FallbackPoller {
        pub fn new() -> io::Result<Self> {
            Ok(Self {
                interests: HashMap::new(),
                shared: Arc::new(Shared {
                    woken: Mutex::new(false),
                    cv: Condvar::new(),
                }),
            })
        }

        pub fn add_fd(&mut self, token: u64, _fd: i32, interest: Interest) -> io::Result<()> {
            self.interests.insert(token, interest);
            Ok(())
        }

        pub fn mod_fd(&mut self, token: u64, _fd: i32, interest: Interest) -> io::Result<()> {
            self.interests.insert(token, interest);
            Ok(())
        }

        pub fn del_fd(&mut self, token: u64, _fd: i32) -> io::Result<()> {
            self.interests.remove(&token);
            Ok(())
        }
    }

    impl Poller for FallbackPoller {
        type Stream = TcpStreamNb;

        fn register(
            &mut self,
            token: u64,
            _stream: &TcpStreamNb,
            interest: Interest,
        ) -> io::Result<()> {
            self.interests.insert(token, interest);
            Ok(())
        }

        fn reregister(
            &mut self,
            token: u64,
            _stream: &TcpStreamNb,
            interest: Interest,
        ) -> io::Result<()> {
            self.interests.insert(token, interest);
            Ok(())
        }

        fn deregister(&mut self, token: u64, _stream: &TcpStreamNb) -> io::Result<()> {
            self.interests.remove(&token);
            Ok(())
        }

        fn wait(
            &mut self,
            events: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            let cap = Duration::from_millis(1);
            let nap = timeout.map_or(cap, |d| d.min(cap));
            {
                let mut woken = self.shared.woken.lock();
                if !*woken && !nap.is_zero() {
                    let _ = self.shared.cv.wait_for(&mut woken, nap);
                }
                *woken = false;
            }
            for (&token, &interest) in &self.interests {
                if interest.readable || interest.writable {
                    events.push(PollEvent {
                        token,
                        readable: interest.readable,
                        writable: interest.writable,
                    });
                }
            }
            Ok(())
        }

        fn waker(&self) -> Waker {
            let shared = Arc::clone(&self.shared);
            Waker::new(move || {
                *shared.woken.lock() = true;
                shared.cv.notify_one();
            })
        }
    }
}

// ---------------------------------------------------------------------------
// In-memory implementation
// ---------------------------------------------------------------------------

/// In-memory loopback transport for deterministic tests.
pub mod mem {
    use super::*;
    use parking_lot::{Condvar, Mutex};
    use std::collections::{HashSet, VecDeque};
    use std::sync::{Arc, Weak};
    use std::time::Instant;

    /// A registration watching a pipe or listener inbox: when the source
    /// gains data (or closes), the watcher's poller marks `token` ready.
    type WatchEntry = (Weak<PollShared>, u64);

    #[derive(Default)]
    struct Pipe {
        buf: VecDeque<u8>,
        closed: bool,
        watchers: Vec<WatchEntry>,
    }

    impl Pipe {
        /// Notify every live watcher that this pipe became readable;
        /// prunes watchers whose poller is gone.
        fn notify(&mut self) {
            self.watchers
                .retain(|(shared, token)| match shared.upgrade() {
                    Some(shared) => {
                        shared.mark_ready(*token);
                        true
                    }
                    None => false,
                });
        }
    }

    struct PollState {
        ready: HashSet<u64>,
        woken: bool,
    }

    struct PollShared {
        state: Mutex<PollState>,
        cv: Condvar,
    }

    impl PollShared {
        fn mark_ready(&self, token: u64) {
            let mut st = self.state.lock();
            st.ready.insert(token);
            self.cv.notify_one();
        }
    }

    /// One end of an in-memory full-duplex connection.
    pub struct MemStream {
        read: Arc<Mutex<Pipe>>,
        write: Arc<Mutex<Pipe>>,
        label: String,
    }

    /// Create a connected pair: `(a, b)` where bytes written to `a` are
    /// read from `b` and vice versa.
    pub fn pair(label_a: &str, label_b: &str) -> (MemStream, MemStream) {
        let ab = Arc::new(Mutex::new(Pipe::default()));
        let ba = Arc::new(Mutex::new(Pipe::default()));
        (
            MemStream {
                read: Arc::clone(&ba),
                write: Arc::clone(&ab),
                label: label_a.to_string(),
            },
            MemStream {
                read: ab,
                write: ba,
                label: label_b.to_string(),
            },
        )
    }

    impl StreamIo for MemStream {
        fn try_read(&mut self, buf: &mut [u8]) -> io::Result<ReadOutcome> {
            let mut pipe = self.read.lock();
            if pipe.buf.is_empty() {
                return if pipe.closed {
                    Ok(ReadOutcome::Closed)
                } else {
                    Ok(ReadOutcome::WouldBlock)
                };
            }
            let mut n = 0;
            while n < buf.len() {
                match pipe.buf.pop_front() {
                    Some(b) => {
                        buf[n] = b;
                        n += 1;
                    }
                    None => break,
                }
            }
            Ok(ReadOutcome::Data(n))
        }

        fn try_write(&mut self, data: &[u8]) -> io::Result<usize> {
            let mut pipe = self.write.lock();
            if pipe.closed {
                drop(pipe);
                // Writing into a fully-closed peer answers with RST, and
                // an arriving RST flushes the receive queue: bytes the
                // peer sent that we never read are discarded along with
                // the connection. A half-closed peer (`shutdown_write`)
                // never closes this pipe, so a lingering server keeps
                // accepting late pipelined writes without resetting.
                let mut read = self.read.lock();
                read.buf.clear();
                read.closed = true;
                read.notify();
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"));
            }
            pipe.buf.extend(data.iter().copied());
            if !data.is_empty() {
                pipe.notify();
            }
            Ok(data.len())
        }

        fn peer_label(&self) -> String {
            self.label.clone()
        }

        fn shutdown(&mut self) {
            // RST semantics, mirroring a kernel socket: a full close with
            // unread peer bytes still in our receive queue resets the
            // connection, discarding whatever we wrote that the peer has
            // not yet read. This is exactly the data loss a lingering
            // close exists to avoid, and modelling it here is what lets
            // the in-memory conformance explorer observe it.
            let mut read = self.read.lock();
            let rst = !read.buf.is_empty();
            read.closed = true;
            read.notify();
            drop(read);
            let mut write = self.write.lock();
            if rst && !write.closed {
                write.buf.clear();
            }
            write.closed = true;
            write.notify();
        }

        fn shutdown_write(&mut self) {
            // Half-close: end our write side only. The peer observes EOF
            // after draining buffered bytes; our read side stays open so
            // a lingering close can keep discarding late arrivals.
            let mut write = self.write.lock();
            write.closed = true;
            write.notify();
        }
    }

    /// The queue a [`MemListener`] accepts from, shared with its
    /// [`MemConnector`]; watched the same way pipes are.
    struct Inbox {
        queue: VecDeque<MemStream>,
        watchers: Vec<WatchEntry>,
    }

    impl Inbox {
        fn notify(&mut self) {
            self.watchers
                .retain(|(shared, token)| match shared.upgrade() {
                    Some(shared) => {
                        shared.mark_ready(*token);
                        true
                    }
                    None => false,
                });
        }
    }

    /// An in-memory listener fed by a [`MemConnector`].
    pub struct MemListener {
        incoming: Arc<Mutex<Inbox>>,
        label: String,
    }

    /// The client-side handle that creates connections to a
    /// [`MemListener`].
    #[derive(Clone)]
    pub struct MemConnector {
        incoming: Arc<Mutex<Inbox>>,
        counter: Arc<Mutex<u64>>,
    }

    /// Create a listener and its connector.
    pub fn listener(label: &str) -> (MemListener, MemConnector) {
        let incoming = Arc::new(Mutex::new(Inbox {
            queue: VecDeque::new(),
            watchers: Vec::new(),
        }));
        (
            MemListener {
                incoming: Arc::clone(&incoming),
                label: label.to_string(),
            },
            MemConnector {
                incoming,
                counter: Arc::new(Mutex::new(0)),
            },
        )
    }

    impl MemConnector {
        /// Establish a connection; returns the client-side stream.
        pub fn connect(&self) -> MemStream {
            let mut counter = self.counter.lock();
            *counter += 1;
            let id = *counter;
            drop(counter);
            let (client, server) = pair(&format!("client-{id}"), &format!("peer-{id}"));
            let mut inbox = self.incoming.lock();
            inbox.queue.push_back(server);
            inbox.notify();
            client
        }
    }

    impl Listener for MemListener {
        type Stream = MemStream;
        type Poller = MemPoller;

        fn try_accept(&mut self) -> io::Result<Option<MemStream>> {
            Ok(self.incoming.lock().queue.pop_front())
        }

        fn local_label(&self) -> String {
            self.label.clone()
        }

        fn new_poller() -> io::Result<MemPoller> {
            Ok(MemPoller::new())
        }

        fn register_listener(&self, poller: &mut MemPoller) -> io::Result<()> {
            let mut inbox = self.incoming.lock();
            inbox
                .watchers
                .retain(|(shared, token)| *token != LISTENER_TOKEN && shared.strong_count() > 0);
            inbox
                .watchers
                .push((Arc::downgrade(&poller.shared), LISTENER_TOKEN));
            if !inbox.queue.is_empty() {
                poller.shared.mark_ready(LISTENER_TOKEN);
            }
            Ok(())
        }

        fn deregister_listener(&self, poller: &mut MemPoller) -> io::Result<()> {
            self.incoming
                .lock()
                .watchers
                .retain(|(_, token)| *token != LISTENER_TOKEN);
            poller.shared.state.lock().ready.remove(&LISTENER_TOKEN);
            Ok(())
        }
    }

    /// Condvar/wake-list demultiplexer for the in-memory transport.
    ///
    /// Readable readiness is notification-based: writers and closers mark
    /// the watching token ready. Writable readiness is unconditional (mem
    /// pipes are unbounded), reported for every token whose interest
    /// includes `writable`.
    pub struct MemPoller {
        shared: Arc<PollShared>,
        write_armed: HashSet<u64>,
    }

    impl MemPoller {
        /// Fresh poller with no registrations.
        pub fn new() -> Self {
            Self {
                shared: Arc::new(PollShared {
                    state: Mutex::new(PollState {
                        ready: HashSet::new(),
                        woken: false,
                    }),
                    cv: Condvar::new(),
                }),
                write_armed: HashSet::new(),
            }
        }
    }

    impl Default for MemPoller {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Poller for MemPoller {
        type Stream = MemStream;

        fn register(
            &mut self,
            token: u64,
            stream: &MemStream,
            interest: Interest,
        ) -> io::Result<()> {
            let mut pipe = stream.read.lock();
            pipe.watchers
                .retain(|(shared, t)| *t != token && shared.strong_count() > 0);
            if interest.readable {
                pipe.watchers.push((Arc::downgrade(&self.shared), token));
                // Data (or EOF) that arrived before registration would
                // otherwise never notify.
                if !pipe.buf.is_empty() || pipe.closed {
                    self.shared.mark_ready(token);
                }
            }
            drop(pipe);
            if interest.writable {
                self.write_armed.insert(token);
            } else {
                self.write_armed.remove(&token);
            }
            Ok(())
        }

        fn reregister(
            &mut self,
            token: u64,
            stream: &MemStream,
            interest: Interest,
        ) -> io::Result<()> {
            self.register(token, stream, interest)
        }

        fn deregister(&mut self, token: u64, stream: &MemStream) -> io::Result<()> {
            stream.read.lock().watchers.retain(|(_, t)| *t != token);
            self.write_armed.remove(&token);
            self.shared.state.lock().ready.remove(&token);
            Ok(())
        }

        fn wait(
            &mut self,
            events: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            let deadline = timeout.map(|d| Instant::now() + d);
            let mut st = self.shared.state.lock();
            loop {
                if !st.ready.is_empty() || st.woken || !self.write_armed.is_empty() {
                    st.woken = false;
                    let ready: HashSet<u64> = st.ready.drain().collect();
                    drop(st);
                    for &token in &ready {
                        events.push(PollEvent {
                            token,
                            readable: true,
                            writable: self.write_armed.contains(&token),
                        });
                    }
                    for &token in self.write_armed.iter() {
                        if !ready.contains(&token) {
                            events.push(PollEvent {
                                token,
                                readable: false,
                                writable: true,
                            });
                        }
                    }
                    return Ok(());
                }
                match deadline {
                    None => self.shared.cv.wait(&mut st),
                    Some(d) => {
                        if self.shared.cv.wait_until(&mut st, d).timed_out() {
                            return Ok(());
                        }
                    }
                }
            }
        }

        fn waker(&self) -> Waker {
            let shared = Arc::clone(&self.shared);
            Waker::new(move || {
                let mut st = shared.state.lock();
                st.woken = true;
                shared.cv.notify_one();
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_pair_round_trips() {
        let (mut a, mut b) = mem::pair("a", "b");
        assert_eq!(a.try_write(b"hello").unwrap(), 5);
        let mut buf = [0u8; 16];
        assert_eq!(b.try_read(&mut buf).unwrap(), ReadOutcome::Data(5));
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(b.try_read(&mut buf).unwrap(), ReadOutcome::WouldBlock);
        // Reverse direction.
        b.try_write(b"yo").unwrap();
        assert_eq!(a.try_read(&mut buf).unwrap(), ReadOutcome::Data(2));
    }

    #[test]
    fn mem_close_is_observed_after_drain() {
        let (mut a, mut b) = mem::pair("a", "b");
        a.try_write(b"x").unwrap();
        a.shutdown();
        let mut buf = [0u8; 4];
        assert_eq!(b.try_read(&mut buf).unwrap(), ReadOutcome::Data(1));
        assert_eq!(b.try_read(&mut buf).unwrap(), ReadOutcome::Closed);
        // Writing to a closed pipe reports an error so the reactor can
        // reap the connection.
        assert!(b.try_write(b"y").is_err());
    }

    #[test]
    fn mem_listener_delivers_connections_fifo() {
        let (mut l, c) = mem::listener("srv");
        assert!(l.try_accept().unwrap().is_none());
        let _c1 = c.connect();
        let _c2 = c.connect();
        let s1 = l.try_accept().unwrap().unwrap();
        let s2 = l.try_accept().unwrap().unwrap();
        assert_eq!(s1.peer_label(), "peer-1");
        assert_eq!(s2.peer_label(), "peer-2");
        assert_eq!(l.local_label(), "srv");
    }

    #[test]
    fn mem_connected_pair_talks_through_listener() {
        let (mut l, c) = mem::listener("srv");
        let mut client = c.connect();
        let mut server = l.try_accept().unwrap().unwrap();
        client.try_write(b"ping").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(server.try_read(&mut buf).unwrap(), ReadOutcome::Data(4));
        server.try_write(b"pong").unwrap();
        assert_eq!(client.try_read(&mut buf).unwrap(), ReadOutcome::Data(4));
        assert_eq!(&buf[..4], b"pong");
    }

    #[test]
    fn tcp_listener_binds_and_accepts_nonblocking() {
        let mut l = TcpListenerNb::bind("127.0.0.1:0").unwrap();
        assert!(l.try_accept().unwrap().is_none(), "no pending connection");
        let addr = l.local_label();
        let mut client = TcpStreamNb::connect(&addr).unwrap();
        // Accept may need a beat for the kernel to hand over the socket.
        let mut server = None;
        for _ in 0..100 {
            if let Some(s) = l.try_accept().unwrap() {
                server = Some(s);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let mut server = server.expect("accepted");
        assert_eq!(client.try_write(b"abc").unwrap(), 3);
        let mut buf = [0u8; 8];
        let mut got = 0;
        for _ in 0..100 {
            match server.try_read(&mut buf[got..]).unwrap() {
                ReadOutcome::Data(n) => {
                    got += n;
                    if got >= 3 {
                        break;
                    }
                }
                ReadOutcome::WouldBlock => std::thread::sleep(std::time::Duration::from_millis(1)),
                ReadOutcome::Closed => panic!("unexpected close"),
            }
        }
        assert_eq!(&buf[..3], b"abc");
        client.shutdown();
        // Eventually observe the close.
        let mut closed = false;
        for _ in 0..100 {
            match server.try_read(&mut buf).unwrap() {
                ReadOutcome::Closed => {
                    closed = true;
                    break;
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        }
        assert!(closed);
    }

    // --- Demultiplexer tests ---------------------------------------------

    use super::mem::MemPoller;

    fn wait_events(poller: &mut MemPoller, timeout: Option<Duration>) -> Vec<PollEvent> {
        let mut events = Vec::new();
        poller.wait(&mut events, timeout).unwrap();
        events
    }

    #[test]
    fn mem_poller_blocks_until_data_arrives() {
        let (a, b) = mem::pair("a", "b");
        let mut poller = MemPoller::new();
        poller.register(7, &b, Interest::READABLE).unwrap();

        let writer = std::thread::spawn(move || {
            let mut a = a;
            a.try_write(b"hi").unwrap();
            a // keep the pipe alive
        });
        // Blocks (no timeout) until the writer thread's bytes land.
        let events = wait_events(&mut poller, None);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        let _a = writer.join().unwrap();
        let mut b = b;
        let mut buf = [0u8; 4];
        assert_eq!(b.try_read(&mut buf).unwrap(), ReadOutcome::Data(2));
    }

    #[test]
    fn mem_poller_wakes_on_peer_close() {
        let (a, b) = mem::pair("a", "b");
        let mut poller = MemPoller::new();
        poller.register(3, &b, Interest::READABLE).unwrap();
        let closer = std::thread::spawn(move || {
            let mut a = a;
            a.shutdown();
        });
        let events = wait_events(&mut poller, None);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 3);
        assert!(events[0].readable);
        closer.join().unwrap();
        let mut b = b;
        let mut buf = [0u8; 4];
        assert_eq!(b.try_read(&mut buf).unwrap(), ReadOutcome::Closed);
    }

    #[test]
    fn mem_poller_sees_data_written_before_registration() {
        let (mut a, b) = mem::pair("a", "b");
        a.try_write(b"early").unwrap();
        let mut poller = MemPoller::new();
        poller.register(1, &b, Interest::READABLE).unwrap();
        let events = wait_events(&mut poller, Some(Duration::ZERO));
        assert_eq!(events.len(), 1);
        assert!(events[0].readable);
    }

    #[test]
    fn mem_poller_tolerates_spurious_wakes() {
        let (_a, b) = mem::pair("a", "b");
        let mut poller = MemPoller::new();
        poller.register(1, &b, Interest::READABLE).unwrap();
        let waker = poller.waker();
        waker.wake();
        // Wake with no readiness: empty event set, no hang.
        let events = wait_events(&mut poller, None);
        assert!(events.is_empty());
        // The wake flag is consumed: the next zero-timeout wait is empty.
        let events = wait_events(&mut poller, Some(Duration::ZERO));
        assert!(events.is_empty());
    }

    #[test]
    fn mem_poller_waker_outlives_poller() {
        let (_a, b) = mem::pair("a", "b");
        let waker = {
            let mut poller = MemPoller::new();
            poller.register(1, &b, Interest::READABLE).unwrap();
            poller.waker()
        };
        // Poller dropped; waking must be a harmless no-op.
        waker.wake();
        // Writing into a pipe whose watcher's poller died must not panic
        // either (the dead watcher is pruned).
        let mut a = _a;
        a.try_write(b"x").unwrap();
    }

    #[test]
    fn mem_poller_write_interest_reports_writable() {
        let (_a, b) = mem::pair("a", "b");
        let mut poller = MemPoller::new();
        poller
            .register(
                5,
                &b,
                Interest {
                    readable: true,
                    writable: true,
                },
            )
            .unwrap();
        let events = wait_events(&mut poller, Some(Duration::ZERO));
        assert_eq!(events.len(), 1);
        assert!(events[0].writable, "mem pipes are always writable");
        // Dropping write interest silences the poller again.
        poller.reregister(5, &b, Interest::READABLE).unwrap();
        let events = wait_events(&mut poller, Some(Duration::ZERO));
        assert!(events.is_empty());
    }

    #[test]
    fn mem_poller_deregister_stops_events() {
        let (mut a, b) = mem::pair("a", "b");
        let mut poller = MemPoller::new();
        poller.register(9, &b, Interest::READABLE).unwrap();
        poller.deregister(9, &b).unwrap();
        a.try_write(b"ignored").unwrap();
        let events = wait_events(&mut poller, Some(Duration::ZERO));
        assert!(events.is_empty());
    }

    #[test]
    fn mem_listener_registration_reports_pending_accepts() {
        let (l, c) = mem::listener("srv");
        let mut poller = MemPoller::new();
        l.register_listener(&mut poller).unwrap();
        let events = wait_events(&mut poller, Some(Duration::ZERO));
        assert!(events.is_empty(), "no pending connection yet");
        let _client = c.connect();
        let events = wait_events(&mut poller, Some(Duration::ZERO));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, LISTENER_TOKEN);
        l.deregister_listener(&mut poller).unwrap();
        let _client2 = c.connect();
        let events = wait_events(&mut poller, Some(Duration::ZERO));
        assert!(events.is_empty(), "deregistered listener stays silent");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_poller_reports_tcp_readiness_and_wakes() {
        let mut l = TcpListenerNb::bind("127.0.0.1:0").unwrap();
        let mut poller = TcpPoller::new().unwrap();
        l.register_listener(&mut poller).unwrap();
        let mut client = TcpStreamNb::connect(l.local_label()).unwrap();

        // The pending connection must surface as LISTENER_TOKEN readable.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token == LISTENER_TOKEN && e.readable));
        let server = l.try_accept().unwrap().expect("accepted");
        poller.register(42, &server, Interest::READABLE).unwrap();

        // Data readiness.
        client.try_write(b"abc").unwrap();
        let mut saw_data = false;
        for _ in 0..100 {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 42 && e.readable) {
                saw_data = true;
                break;
            }
        }
        assert!(saw_data, "epoll never reported the payload");

        // Waker interrupts a blocking wait from another thread.
        let waker = poller.waker();
        let t = std::thread::spawn(move || waker.wake());
        let mut server = server;
        let mut buf = [0u8; 8];
        let _ = server.try_read(&mut buf); // drain so readable goes quiet
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        t.join().unwrap();
        poller.deregister(42, &server).unwrap();
        l.deregister_listener(&mut poller).unwrap();
    }
}
