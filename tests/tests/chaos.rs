//! Chaos suite: COPS-HTTP and COPS-FTP under seeded fault plans.
//!
//! Each server runs behind a [`FaultyListener`] injecting connection
//! resets, `WouldBlock` storms, short reads/writes, inbound byte
//! corruption, accept-time failures and slow-loris stalls from a
//! deterministic per-seed schedule. The assertions are the robustness
//! contract: the server survives every plan without deadlocking or
//! leaking connections, stage deadlines reap the stalled clients, the
//! per-family error counters account for the injected faults, and once
//! the fault window closes service returns to byte-exact steady state.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use nserver_core::fault::{FaultPlan, FaultProfile, FaultyListener};
use nserver_core::options::{OverloadControl, ServerOptions, StageDeadlines, ThreadAllocation};
use nserver_core::pipeline::{Action, Codec, ConnCtx, ProtocolError, Service};
use nserver_core::server::ServerBuilder;
use nserver_core::transport::{mem, ReadOutcome, StreamIo};
use nserver_ftp::{cops_ftp_options, FtpCodec, FtpService, UserRegistry, Vfs};
use nserver_http::{cops_http_options, HttpCodec, MemStore, StaticFileService};
use nserver_netsim::{Disk, Link, SimTime};

/// How one faulted exchange ended, as seen from the client.
#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    /// A complete response arrived: (status, body).
    Response(u16, Vec<u8>),
    /// The server closed the connection before a complete response —
    /// the expected fate of reset, corrupted and stalled connections.
    Dropped,
    /// Nothing happened within the client deadline: a wedged connection,
    /// exactly what the suite exists to rule out.
    Hung,
}

/// The HTTP request this suite sends (kept in one place because the
/// fault-trip expectations below depend on its length).
fn http_request(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n").into_bytes()
}

fn write_all(conn: &mut mem::MemStream, data: &[u8], deadline: Instant) -> bool {
    let mut sent = 0;
    while sent < data.len() {
        if Instant::now() > deadline {
            return false;
        }
        match conn.try_write(&data[sent..]) {
            Ok(0) => std::thread::sleep(Duration::from_micros(200)),
            Ok(n) => sent += n,
            Err(_) => return false,
        }
    }
    true
}

/// One tolerant HTTP exchange over the in-memory transport.
fn http_exchange(conn: &mut mem::MemStream, path: &str, patience: Duration) -> Outcome {
    let deadline = Instant::now() + patience;
    if !write_all(conn, &http_request(path), deadline) {
        return Outcome::Dropped;
    }
    let mut acc: Vec<u8> = Vec::new();
    let mut buf = [0u8; 8192];
    let (mut status, mut body_start, mut body_len) = (0u16, 0usize, usize::MAX);
    loop {
        if body_len != usize::MAX && acc.len() >= body_start + body_len {
            return Outcome::Response(status, acc[body_start..body_start + body_len].to_vec());
        }
        if Instant::now() > deadline {
            return Outcome::Hung;
        }
        match conn.try_read(&mut buf) {
            Err(_) => return Outcome::Dropped,
            Ok(ReadOutcome::Closed) => return Outcome::Dropped,
            Ok(ReadOutcome::WouldBlock) => {
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            Ok(ReadOutcome::Data(n)) => acc.extend_from_slice(&buf[..n]),
        }
        if body_len == usize::MAX {
            if let Some(pos) = acc.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&acc[..pos]).to_string();
                status = head
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0);
                body_len = head
                    .lines()
                    .find(|l| l.to_ascii_lowercase().starts_with("content-length"))
                    .and_then(|l| l.split(':').nth(1))
                    .and_then(|v| v.trim().parse().ok())
                    .unwrap_or(0);
                body_start = pos + 4;
            }
        }
    }
}

/// Expected per-family draws for one plan over its fault window, with
/// accept-failed slots excluded (those connections never get a profile).
#[derive(Debug, Default)]
struct ExpectedDraws {
    accept_fails: u64,
    resets: u64,
    /// Resets whose threshold is at or below the request size — these are
    /// guaranteed to trip during the exchange regardless of flush
    /// batching, so `connections_reset` must count at least this many.
    hard_resets: u64,
    storms: u64,
    short_ios: u64,
    corrupts: u64,
    stalls: u64,
    cleans: u64,
}

fn expected_draws(plan: &FaultPlan, request_len: usize) -> ExpectedDraws {
    let mut e = ExpectedDraws::default();
    for i in 1..=plan.faulty_first as u64 {
        if plan.accept_fails(i) {
            e.accept_fails += 1;
            continue;
        }
        match plan.profile_for(i) {
            FaultProfile::Reset { after_bytes } => {
                e.resets += 1;
                if after_bytes <= request_len {
                    e.hard_resets += 1;
                }
            }
            FaultProfile::Storm { .. } => e.storms += 1,
            FaultProfile::ShortIo { .. } => e.short_ios += 1,
            FaultProfile::Corrupt { .. } => e.corrupts += 1,
            FaultProfile::Stall { .. } => e.stalls += 1,
            FaultProfile::Clean => e.cleans += 1,
        }
    }
    e
}

fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        reset_per_mille: 200,
        storm_per_mille: 150,
        short_io_per_mille: 200,
        corrupt_per_mille: 150,
        stall_per_mille: 200,
        accept_fail_every: 9,
        faulty_first: 36,
    }
}

fn wait_for_drain(open: impl Fn() -> usize, patience: Duration) -> bool {
    let deadline = Instant::now() + patience;
    while Instant::now() < deadline {
        if open() == 0 {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

const SEEDS: [u64; 3] = [1, 2, 6];

/// The seeds a survival test sweeps. `NSERVER_REPLAY_SEED=n` narrows the
/// sweep to exactly seed `n` — the replay path printed by chaos and
/// conformance failures — so a CI counterexample reproduces in isolation.
fn seeds() -> Vec<u64> {
    match std::env::var("NSERVER_REPLAY_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("NSERVER_REPLAY_SEED={s:?} is not a u64: {e}"))],
        Err(_) => SEEDS.to_vec(),
    }
}

/// Replay instructions embedded in every seeded-failure panic.
fn replay_hint(seed: u64) -> String {
    format!(
        "replay with: NSERVER_REPLAY_SEED={seed} cargo test -p nserver-integration-tests --test chaos"
    )
}

#[test]
fn cops_http_survives_seeded_fault_plans_and_returns_to_steady_state() {
    let body: Vec<u8> = (0..102u8).map(|i| b'a' + i % 23).collect();
    for seed in seeds() {
        let plan = chaos_plan(seed);
        let expect = expected_draws(&plan, http_request("/a.txt").len());
        // The seeds are chosen so every family actually occurs; a plan
        // that draws nothing would make the counter assertions vacuous.
        assert!(
            expect.resets >= 1
                && expect.hard_resets >= 1
                && expect.storms >= 1
                && expect.short_ios >= 1
                && expect.corrupts >= 1
                && expect.stalls >= 1
                && expect.accept_fails >= 1,
            "seed {seed} must draw every fault family: {expect:?}"
        );

        let mut store = MemStore::new();
        store.insert("/a.txt", body.clone());
        let opts = ServerOptions {
            stage_deadlines: StageDeadlines {
                header_read_ms: Some(150),
                write_drain_ms: Some(2_000),
            },
            ..cops_http_options()
        };
        let (listener, connector) = mem::listener(&format!("chaos-http-{seed}"));
        let server =
            ServerBuilder::new(opts, HttpCodec::new(), StaticFileService::new(store, None))
                .unwrap()
                .serve(FaultyListener::new(listener, plan));

        // Drive the whole fault window plus a post-window tail, serially,
        // so connection i gets accept index i.
        let total = plan.faulty_first as u64 + 8;
        let mut outcomes = Vec::new();
        for _ in 0..total {
            let mut conn = connector.connect();
            outcomes.push(http_exchange(&mut conn, "/a.txt", Duration::from_secs(3)));
        }

        // Survival: no exchange may hang — every fault path must resolve
        // to either a response or a server-side close.
        assert!(
            !outcomes.contains(&Outcome::Hung),
            "seed {seed}: wedged connection: {outcomes:?}\n{}",
            replay_hint(seed)
        );
        // Fault-window connections that draw benign profiles must still be
        // served with byte-exact content (storms and short I/O only slow
        // an exchange down; they never change its bytes).
        let ok = outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Response(200, b) if *b == body))
            .count() as u64;
        assert!(
            ok >= expect.cleans + expect.storms + expect.short_ios,
            "seed {seed}: {ok} byte-exact responses < benign draws in {expect:?}"
        );
        // Return to steady state: past the fault window every connection
        // is clean and must round-trip exactly.
        for (i, o) in outcomes.iter().enumerate().skip(plan.faulty_first as usize) {
            assert!(
                matches!(o, Outcome::Response(200, b) if *b == body),
                "seed {seed}: post-window conn {i} got {o:?}\n{}",
                replay_hint(seed)
            );
        }

        // No leaks: stalled connections are reaped by the header deadline
        // and everything else closes on its own.
        assert!(
            wait_for_drain(|| server.open_connections(), Duration::from_secs(5)),
            "seed {seed}: {} connections leaked",
            server.open_connections()
        );

        // Error accounting matches the plan.
        let stats = server.stats();
        assert_eq!(
            stats.accept_errors, expect.accept_fails,
            "seed {seed}: accept errors"
        );
        assert!(
            stats.connections_reset >= expect.hard_resets,
            "seed {seed}: {} resets recorded, expected at least {}",
            stats.connections_reset,
            expect.hard_resets
        );
        // Every stall is reaped by the header-read deadline; corrupted
        // requests whose terminator got flipped may also time out.
        assert!(
            stats.connections_timed_out >= expect.stalls,
            "seed {seed}: {} timeouts < {} stalls",
            stats.connections_timed_out,
            expect.stalls
        );
        assert!(
            stats.connections_timed_out <= expect.stalls + expect.corrupts,
            "seed {seed}: {} timeouts exceed stalls {} + corrupts {}",
            stats.connections_timed_out,
            expect.stalls,
            expect.corrupts
        );

        // And the server still works.
        let mut fresh = connector.connect();
        let o = http_exchange(&mut fresh, "/a.txt", Duration::from_secs(3));
        assert!(
            matches!(&o, Outcome::Response(200, b) if *b == body),
            "seed {seed}: post-chaos exchange got {o:?}"
        );
        server.shutdown();
    }
}

/// A tolerant FTP control-channel session: greeting, login, PWD, QUIT.
/// Returns the replies received, or the failure mode.
enum FtpOutcome {
    Completed(Vec<String>),
    Dropped,
    Hung,
}

fn ftp_read_line(conn: &mut mem::MemStream, deadline: Instant) -> Result<String, FtpOutcome> {
    let mut acc = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        if acc.windows(2).any(|w| w == b"\r\n") {
            return Ok(String::from_utf8_lossy(&acc).into_owned());
        }
        if Instant::now() > deadline {
            return Err(FtpOutcome::Hung);
        }
        match conn.try_read(&mut buf) {
            Err(_) | Ok(ReadOutcome::Closed) => return Err(FtpOutcome::Dropped),
            Ok(ReadOutcome::WouldBlock) => std::thread::sleep(Duration::from_micros(200)),
            Ok(ReadOutcome::Data(n)) => acc.extend_from_slice(&buf[..n]),
        }
    }
}

fn ftp_session(conn: &mut mem::MemStream, patience: Duration) -> FtpOutcome {
    let deadline = Instant::now() + patience;
    let mut replies = Vec::new();
    match ftp_read_line(conn, deadline) {
        Ok(greeting) => replies.push(greeting),
        Err(e) => return e,
    }
    for cmd in ["USER anonymous", "PASS guest", "PWD", "QUIT"] {
        if !write_all(conn, format!("{cmd}\r\n").as_bytes(), deadline) {
            return FtpOutcome::Dropped;
        }
        match ftp_read_line(conn, deadline) {
            Ok(reply) => replies.push(reply),
            Err(e) => return e,
        }
    }
    FtpOutcome::Completed(replies)
}

#[test]
fn cops_ftp_survives_seeded_fault_plans_on_the_control_channel() {
    for seed in seeds() {
        let plan = chaos_plan(seed);
        // The FTP fault window uses the greeting+USER traffic as the
        // hard-reset bound: a threshold at or below it always trips.
        let expect = expected_draws(&plan, "220 nserver-ftp ready\r\nUSER anonymous\r\n".len());
        let vfs = Arc::new(Vfs::new());
        vfs.mkdir("/pub");
        let users = Arc::new(UserRegistry::new().with_anonymous());
        let opts = ServerOptions {
            stage_deadlines: StageDeadlines {
                header_read_ms: Some(150),
                write_drain_ms: Some(2_000),
            },
            ..cops_ftp_options()
        };
        let (listener, connector) = mem::listener(&format!("chaos-ftp-{seed}"));
        let server = ServerBuilder::new(opts, FtpCodec, FtpService::new(vfs, users))
            .unwrap()
            .serve(FaultyListener::new(listener, plan));

        let total = plan.faulty_first as u64 + 6;
        let mut outcomes = Vec::new();
        for _ in 0..total {
            let mut conn = connector.connect();
            outcomes.push(ftp_session(&mut conn, Duration::from_secs(3)));
        }

        assert!(
            !outcomes.iter().any(|o| matches!(o, FtpOutcome::Hung)),
            "seed {seed}: wedged FTP session\n{}",
            replay_hint(seed)
        );
        // Post-window sessions are clean: full login flow with the right
        // reply codes.
        for (i, o) in outcomes.iter().enumerate().skip(plan.faulty_first as usize) {
            let FtpOutcome::Completed(replies) = o else {
                panic!(
                    "seed {seed}: post-window session {i} did not complete\n{}",
                    replay_hint(seed)
                );
            };
            assert!(replies[0].starts_with("220"), "greeting: {replies:?}");
            assert!(replies[1].starts_with("331"), "USER: {replies:?}");
            assert!(replies[2].starts_with("230"), "PASS: {replies:?}");
            assert!(replies[3].starts_with("257"), "PWD: {replies:?}");
            assert!(replies[4].starts_with("221"), "QUIT: {replies:?}");
        }

        assert!(
            wait_for_drain(|| server.open_connections(), Duration::from_secs(5)),
            "seed {seed}: {} FTP connections leaked",
            server.open_connections()
        );
        let stats = server.stats();
        assert_eq!(stats.accept_errors, expect.accept_fails, "seed {seed}");
        assert!(
            stats.connections_timed_out >= expect.stalls,
            "seed {seed}: {} timeouts < {} stalls",
            stats.connections_timed_out,
            expect.stalls
        );
        assert!(
            stats.connections_reset >= 1,
            "seed {seed}: no resets recorded"
        );
        server.shutdown();
    }
}

/// A line-oriented codec for the load-shaping tests below.
struct LineCodec;

impl Codec for LineCodec {
    type Request = String;
    type Response = String;

    fn decode(&self, buf: &mut BytesMut) -> Result<Option<String>, ProtocolError> {
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                let line = buf.split_to(i + 1);
                Ok(Some(String::from_utf8_lossy(&line[..i]).into_owned()))
            }
            None => Ok(None),
        }
    }

    fn encode(&self, r: &String, out: &mut BytesMut) -> Result<(), ProtocolError> {
        out.extend_from_slice(r.as_bytes());
        out.extend_from_slice(b"\n");
        Ok(())
    }
}

/// A service that takes a fixed wall-clock time per request, so the
/// handler queue backs up under a burst.
struct SlowService(Duration);

impl Service<LineCodec> for SlowService {
    fn handle(&self, _ctx: &ConnCtx, req: String) -> Action<String> {
        std::thread::sleep(self.0);
        Action::Reply(format!("ok {req}"))
    }
}

fn read_reply(conn: &mut mem::MemStream, needle: &str, patience: Duration) -> bool {
    let deadline = Instant::now() + patience;
    let mut acc = Vec::new();
    let mut buf = [0u8; 1024];
    while Instant::now() < deadline {
        match conn.try_read(&mut buf) {
            Err(_) | Ok(ReadOutcome::Closed) => break,
            Ok(ReadOutcome::WouldBlock) => std::thread::sleep(Duration::from_micros(500)),
            Ok(ReadOutcome::Data(n)) => acc.extend_from_slice(&buf[..n]),
        }
        if String::from_utf8_lossy(&acc).contains(needle) {
            return true;
        }
    }
    false
}

#[test]
fn watermark_sheds_load_under_burst_and_releases_after_drain() {
    // One worker at 20 ms per request: a burst of 24 jobs piles the event
    // queue far past the high watermark, so late connections must see
    // deferred accepts (O9 shedding) — and still get served once the
    // queue drains below the low watermark.
    let opts = ServerOptions {
        thread_allocation: ThreadAllocation::Static { threads: 1 },
        overload_control: OverloadControl::Watermark { high: 8, low: 2 },
        ..ServerOptions::default()
    };
    let (listener, connector) = mem::listener("chaos-watermark");
    let server = ServerBuilder::new(opts, LineCodec, SlowService(Duration::from_millis(20)))
        .unwrap()
        .serve(listener);

    let mut conns = Vec::new();
    for wave in 0..2 {
        for i in 0..12 {
            let mut c = connector.connect();
            assert!(write_all(
                &mut c,
                format!("job-{wave}-{i}\n").as_bytes(),
                Instant::now() + Duration::from_secs(2),
            ));
            conns.push((wave, i, c));
        }
        // Let the first wave fill the queue before the second arrives
        // (the single worker retires at most one or two jobs meanwhile,
        // so the queue is still far above the high watermark).
        std::thread::sleep(Duration::from_millis(30));
    }
    for (wave, i, conn) in &mut conns {
        assert!(
            read_reply(conn, &format!("ok job-{wave}-{i}"), Duration::from_secs(10)),
            "job-{wave}-{i} never answered"
        );
    }
    let stats = server.stats();
    assert!(
        stats.accepts_deferred > 0,
        "burst never tripped the watermark: {stats:?}"
    );
    assert_eq!(stats.responses_sent, 24);

    // Release: with the queue drained, a fresh connection is accepted and
    // served immediately.
    let mut fresh = connector.connect();
    assert!(write_all(
        &mut fresh,
        b"after\n",
        Instant::now() + Duration::from_secs(2),
    ));
    assert!(read_reply(&mut fresh, "ok after", Duration::from_secs(5)));
    server.shutdown();
}

#[test]
fn graceful_drain_finishes_in_flight_requests_before_closing() {
    let opts = ServerOptions {
        thread_allocation: ThreadAllocation::Static { threads: 1 },
        ..ServerOptions::default()
    };
    let (listener, connector) = mem::listener("chaos-drain");
    let server = ServerBuilder::new(opts, LineCodec, SlowService(Duration::from_millis(150)))
        .unwrap()
        .serve(listener);

    let client = std::thread::spawn({
        let connector = connector.clone();
        move || {
            let mut c = connector.connect();
            assert!(write_all(
                &mut c,
                b"inflight\n",
                Instant::now() + Duration::from_secs(2),
            ));
            // The drain must deliver the reply before closing.
            let got = read_reply(&mut c, "ok inflight", Duration::from_secs(5));
            // ...and then actually close the connection.
            let mut buf = [0u8; 64];
            let deadline = Instant::now() + Duration::from_secs(3);
            let closed = loop {
                match c.try_read(&mut buf) {
                    Err(_) | Ok(ReadOutcome::Closed) => break true,
                    _ if Instant::now() > deadline => break false,
                    _ => std::thread::sleep(Duration::from_millis(1)),
                }
            };
            (got, closed)
        }
    });
    // Give the request time to reach the worker, then drain.
    std::thread::sleep(Duration::from_millis(50));
    let drained = server.shutdown_graceful(Duration::from_secs(3));
    let (got_reply, closed) = client.join().unwrap();
    assert!(got_reply, "in-flight request lost during graceful drain");
    assert!(closed, "connection left open after drain");
    assert!(
        drained,
        "drain deadline expired with connections still open"
    );
}

#[test]
fn pure_short_io_plan_round_trips_large_bodies_byte_exactly() {
    // Every connection draws ShortIo: reads and writes are capped at a
    // few bytes and every other write would-blocks, so an 8 KiB body
    // crosses the dispatcher's flush offset bookkeeping thousands of
    // times. Any off-by-one corrupts the digest immediately.
    let body: Vec<u8> = (0..8192u32).map(|i| (i * 31 % 251) as u8).collect();
    let mut store = MemStore::new();
    store.insert("/big.bin", body.clone());
    let plan = FaultPlan {
        seed: 99,
        short_io_per_mille: 1000,
        ..FaultPlan::new(99)
    };
    let (listener, connector) = mem::listener("chaos-short-io");
    let server = ServerBuilder::new(
        cops_http_options(),
        HttpCodec::new(),
        StaticFileService::new(store, None),
    )
    .unwrap()
    .serve(FaultyListener::new(listener, plan));

    for _ in 0..3 {
        let mut conn = connector.connect();
        match http_exchange(&mut conn, "/big.bin", Duration::from_secs(10)) {
            Outcome::Response(200, got) => assert_eq!(got, body, "short-write corruption"),
            other => panic!("short-io exchange failed: {other:?}"),
        }
    }
    server.shutdown();
}

/// A service with a deliberate wedge: the request `"wedge"` blocks its
/// worker on a gate until the test releases it. Everything else echoes.
struct WedgeService {
    gate: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
}

impl Service<LineCodec> for WedgeService {
    fn handle(&self, _ctx: &ConnCtx, req: String) -> Action<String> {
        if req == "wedge" {
            let (lock, cvar) = &*self.gate;
            let mut released = lock.lock().unwrap();
            while !*released {
                released = cvar.wait(released).unwrap();
            }
        }
        Action::Reply(format!("ok {req}"))
    }
}

/// The watchdog fires under a stall: a seeded slow-loris fault plan
/// degrades the first connections while a wedged handler pins one worker
/// past the stuck ceiling. The watchdog must fire the `worker_stuck`
/// invariant, and the captured snapshot must name the stuck worker's
/// stage and connection id — the flight-recorder contract that makes a
/// production wedge diagnosable after the fact.
#[test]
fn watchdog_fires_and_names_the_stuck_worker_under_stall() {
    // Every fault-window connection draws Stall{...}: slow-loris clients
    // that the header-read deadline reaps.
    let plan = FaultPlan {
        stall_per_mille: 1000,
        faulty_first: 4,
        ..FaultPlan::new(11)
    };
    let opts = ServerOptions {
        thread_allocation: ThreadAllocation::Static { threads: 2 },
        stage_deadlines: StageDeadlines {
            header_read_ms: Some(100),
            write_drain_ms: Some(2_000),
        },
        mode: nserver_core::options::Mode::Debug,
        profiling: true,
        ..ServerOptions::default()
    };
    let gate = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    let (listener, connector) = mem::listener("chaos-watchdog");
    let server = ServerBuilder::new(
        opts,
        LineCodec,
        WedgeService {
            gate: Arc::clone(&gate),
        },
    )
    .unwrap()
    .watchdog(nserver_core::diag::WatchdogConfig {
        tick: Duration::from_millis(5),
        stuck_ceiling: Duration::from_millis(80),
        debounce_ticks: 10_000,
        ..Default::default()
    })
    .serve(FaultyListener::new(listener, plan));

    // Drive the fault window: stalled connections never complete; their
    // clients give up quickly and the server reaps them.
    for _ in 0..4 {
        let mut conn = connector.connect();
        let _ = write_all(
            &mut conn,
            b"hello\n",
            Instant::now() + Duration::from_millis(100),
        );
    }
    // The fifth accept is past the fault window: a clean connection whose
    // request wedges its worker in the handle stage.
    let mut wedged = connector.connect();
    assert!(write_all(
        &mut wedged,
        b"wedge\n",
        Instant::now() + Duration::from_secs(2),
    ));

    // The watchdog (80 ms ceiling, 5 ms tick) must notice.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !server.watchdog_fired() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        server.watchdog_fired(),
        "watchdog never fired on a wedged worker"
    );
    assert!(server.diag().watchdog_triggers() >= 1);

    // The snapshot names the culprit: worker role, the handle stage, and
    // the wedged connection's id (the fifth accept).
    let snap = server.diag().latest().expect("trigger captured a snapshot");
    assert!(
        snap.reason.contains("worker_stuck"),
        "unexpected reason: {}",
        snap.reason
    );
    assert!(
        snap.reason.contains("stage=handle") && snap.reason.contains("conn=5"),
        "reason must name the stage and conn: {}",
        snap.reason
    );
    let json = snap.to_json();
    assert!(
        json.contains("\"state\":\"running\",\"stage\":\"handle\",\"conn\":5"),
        "worker table row missing from snapshot: {json}"
    );

    // Release the wedge: the pinned request completes and the server is
    // still healthy end to end.
    {
        let (lock, cvar) = &*gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }
    assert!(read_reply(&mut wedged, "ok wedge", Duration::from_secs(5)));
    let mut fresh = connector.connect();
    assert!(write_all(
        &mut fresh,
        b"after\n",
        Instant::now() + Duration::from_secs(2),
    ));
    assert!(read_reply(&mut fresh, "ok after", Duration::from_secs(5)));
    server.shutdown();
}

/// Request completion model used by the netsim recovery test: a request
/// issued at `now` reads `bytes` from disk then ships them down the link.
fn complete(disk: &mut Disk, link: &mut Link, now: SimTime, bytes: u64) -> SimTime {
    let ready = disk.read(now, bytes);
    link.send(ready, bytes)
}

#[test]
fn netsim_throughput_recovers_after_disk_stall_burst() {
    // 1 request/ms for 3.5 simulated seconds, 8 KiB each, against the
    // paper-style bottleneck pair (100 Mbit link, buffered disk). The
    // fault run injects a 400 ms disk stall at t=1 s and mild link delay
    // faults throughout. On-time = completed within 20 ms of issue.
    let on_time_counts = |faulty: bool| -> (u64, u64, u64) {
        let mut link = Link::new(100_000_000);
        if faulty {
            link = link.with_faults(7, 0, 50, SimTime::from_millis(5), SimTime::ZERO);
        }
        let mut disk = Disk::new(SimTime::from_micros(200), 50_000_000);
        let (mut before, mut during, mut after) = (0u64, 0u64, 0u64);
        let mut stall_injected = false;
        for ms in 0..3_500u64 {
            let now = SimTime::from_millis(ms);
            if faulty && !stall_injected && ms >= 1_000 {
                disk.inject_stall(now, SimTime::from_millis(400));
                stall_injected = true;
            }
            let done = complete(&mut disk, &mut link, now, 8_192);
            let on_time = done <= now + SimTime::from_millis(20);
            match ms {
                0..=999 if on_time => before += 1,
                1_000..=1_999 if on_time => during += 1,
                2_500..=3_499 if on_time => after += 1,
                _ => {}
            }
        }
        if faulty {
            assert_eq!(disk.stalls(), 1);
            assert!(link.messages_delayed() > 0, "link faults never fired");
        }
        (before, during, after)
    };

    let (clean_before, _, clean_after) = on_time_counts(false);
    let (faulty_before, faulty_during, faulty_after) = on_time_counts(true);

    // Pre-fault behaviour matches the clean run (mild link delays stay
    // under the on-time bound).
    assert_eq!(faulty_before, clean_before);
    // The stall visibly degrades the fault window...
    assert!(
        faulty_during < clean_after / 2,
        "stall window barely degraded: {faulty_during} on-time"
    );
    // ...and the post-fault window recovers to within 10% of fault-free
    // throughput — the backlog drains instead of snowballing.
    assert!(
        faulty_after as f64 >= clean_after as f64 * 0.9,
        "post-fault on-time {faulty_after} vs clean {clean_after}"
    );
}
