//! Ablation for option O8: FIFO event queue vs the priority-quota queue.
//! The paper's generative argument is that the priority machinery is
//! only paid for when generated in — this bench quantifies the cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nserver_core::event::Priority;
use nserver_core::queue::{EventQueue, FifoQueue};
use nserver_core::scheduler::PriorityQuotaQueue;

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");

    g.bench_function("fifo_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = FifoQueue::new();
            for i in 0..1000u32 {
                q.push(black_box(i), Priority(0));
            }
            while let Some(v) = q.pop() {
                black_box(v);
            }
        })
    });

    g.bench_function("priority_quota_push_pop_1k_2levels", |b| {
        b.iter(|| {
            let mut q = PriorityQuotaQueue::new(vec![8, 1]);
            for i in 0..1000u32 {
                q.push(black_box(i), Priority((i % 2) as u8));
            }
            while let Some(v) = q.pop() {
                black_box(v);
            }
        })
    });

    g.bench_function("priority_quota_push_pop_1k_4levels", |b| {
        b.iter(|| {
            let mut q = PriorityQuotaQueue::new(vec![16, 8, 4, 1]);
            for i in 0..1000u32 {
                q.push(black_box(i), Priority((i % 4) as u8));
            }
            while let Some(v) = q.pop() {
                black_box(v);
            }
        })
    });

    g.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
