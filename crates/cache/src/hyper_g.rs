//! Hyper-G replacement (Williams et al., "Removal Policies in Network
//! Caches for World-Wide Web Documents", SIGCOMM '96 — reference [29]).

use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap};

use crate::policy::{EntryId, EntryMeta, ReplacementPolicy};

/// Hyper-G (named after the Hyper-G server): a refinement of LFU that
/// breaks frequency ties by recency, and recency ties by size. The victim
/// is the entry with the **lowest access count**; among those, the one with
/// the **oldest last access**; among those, the **largest** document.
#[derive(Debug, Default)]
pub struct HyperG {
    // Ordered by (access_count, last_access, Reverse(size), id).
    order: BTreeSet<(u64, u64, Reverse<u64>, EntryId)>,
    key_of: HashMap<EntryId, (u64, u64, Reverse<u64>)>,
}

impl HyperG {
    /// Create an empty Hyper-G policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn reindex(&mut self, id: EntryId, meta: &EntryMeta) {
        let key = (meta.access_count, meta.last_access, Reverse(meta.size));
        if let Some((c, la, sz)) = self.key_of.insert(id, key) {
            self.order.remove(&(c, la, sz, id));
        }
        self.order.insert((key.0, key.1, key.2, id));
    }
}

impl ReplacementPolicy for HyperG {
    fn name(&self) -> &'static str {
        "Hyper-G"
    }

    fn on_insert(&mut self, id: EntryId, meta: &EntryMeta) {
        self.reindex(id, meta);
    }

    fn on_access(&mut self, id: EntryId, meta: &EntryMeta) {
        self.reindex(id, meta);
    }

    fn on_remove(&mut self, id: EntryId) {
        if let Some((c, la, sz)) = self.key_of.remove(&id) {
            self.order.remove(&(c, la, sz, id));
        }
    }

    fn choose_victim(&mut self, _incoming_size: u64) -> Option<EntryId> {
        self.order.iter().next().map(|&(_, _, _, id)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(count: u64, t: u64, size: u64) -> EntryMeta {
        EntryMeta {
            size,
            last_access: t,
            access_count: count,
            inserted_at: 0,
        }
    }

    #[test]
    fn primary_criterion_is_frequency() {
        let mut p = HyperG::new();
        p.on_insert(1, &meta(5, 0, 100));
        p.on_insert(2, &meta(1, 9, 1));
        assert_eq!(p.choose_victim(0), Some(2));
    }

    #[test]
    fn frequency_tie_broken_by_recency() {
        let mut p = HyperG::new();
        p.on_insert(1, &meta(2, 5, 10));
        p.on_insert(2, &meta(2, 3, 10));
        assert_eq!(p.choose_victim(0), Some(2));
    }

    #[test]
    fn recency_tie_broken_by_largest_size() {
        let mut p = HyperG::new();
        p.on_insert(1, &meta(2, 3, 10));
        p.on_insert(2, &meta(2, 3, 500));
        assert_eq!(p.choose_victim(0), Some(2));
    }

    #[test]
    fn access_promotes_entry() {
        let mut p = HyperG::new();
        p.on_insert(1, &meta(1, 0, 10));
        p.on_insert(2, &meta(1, 1, 10));
        p.on_access(1, &meta(2, 2, 10));
        assert_eq!(p.choose_victim(0), Some(2));
    }

    #[test]
    fn remove_untracks() {
        let mut p = HyperG::new();
        p.on_insert(1, &meta(1, 0, 10));
        p.on_remove(1);
        assert_eq!(p.choose_victim(0), None);
    }
}
