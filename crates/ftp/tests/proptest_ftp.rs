//! Property-based tests of the FTP protocol pieces: command parsing
//! robustness, VFS path-normalisation laws, and filesystem coherence.

use std::sync::Arc;

use nserver_ftp::legacy::vfs::{normalize, Vfs};
use nserver_ftp::Command;
use proptest::prelude::*;

fn seg() -> impl Strategy<Value = String> {
    "[A-Za-z0-9_][A-Za-z0-9_.-]{0,9}".prop_map(|s| s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The command parser never panics on arbitrary input lines.
    #[test]
    fn command_parse_never_panics(line in "\\PC{0,120}") {
        let _ = Command::parse(&line);
    }

    /// Verbs survive arbitrary casing.
    #[test]
    fn verbs_are_case_insensitive(upper in any::<bool>()) {
        let line = if upper { "RETR file.txt" } else { "retr file.txt" };
        prop_assert_eq!(Command::parse(line).unwrap(), Command::Retr("file.txt".into()));
    }

    /// Normalisation is idempotent and always yields an absolute path
    /// without `.`/`..` segments when it succeeds.
    #[test]
    fn normalize_is_idempotent(
        base_segs in proptest::collection::vec(seg(), 0..4),
        rel_segs in proptest::collection::vec(
            prop_oneof![seg(), Just(".".to_string()), Just("..".to_string())],
            0..6,
        ),
        absolute in any::<bool>(),
    ) {
        let base = format!("/{}", base_segs.join("/"));
        let rel = if absolute {
            format!("/{}", rel_segs.join("/"))
        } else {
            rel_segs.join("/")
        };
        if let Some(norm) = normalize(&base, &rel) {
            prop_assert!(norm.starts_with('/'));
            prop_assert!(!norm.contains("/../"));
            prop_assert!(!norm.ends_with("/..") || norm == "/..");
            prop_assert!(!norm.contains("//"));
            // Idempotence.
            let renorm = normalize("/", &norm);
            prop_assert_eq!(renorm.as_deref(), Some(norm.as_str()));
        }
    }

    /// Escaping above the root always fails; staying below never does
    /// for plain segments.
    #[test]
    fn normalize_root_escape(n_up in 1usize..6, segs in proptest::collection::vec(seg(), 0..3)) {
        let below = segs.len();
        let rel = {
            let mut parts = segs.clone();
            for _ in 0..n_up {
                parts.push("..".to_string());
            }
            parts.join("/")
        };
        let result = normalize("/", &rel);
        if n_up > below {
            prop_assert!(result.is_none(), "escaped root: {rel}");
        } else {
            prop_assert!(result.is_some());
        }
    }

    /// VFS write-then-read returns the written bytes; listing contains
    /// exactly the written names.
    #[test]
    fn vfs_write_read_list_coherence(
        files in proptest::collection::btree_map(seg(), proptest::collection::vec(any::<u8>(), 0..64), 1..12),
    ) {
        let vfs = Vfs::new();
        prop_assert!(vfs.mkdir("/d"));
        for (name, data) in &files {
            let ok = vfs.write(&format!("/d/{name}"), data.clone());
            prop_assert!(ok);
        }
        for (name, data) in &files {
            let path = format!("/d/{name}");
            let read = vfs.read(&path).expect("written file");
            prop_assert_eq!(&**read, &data[..]);
            prop_assert_eq!(vfs.size(&path), Some(data.len() as u64));
        }
        let listing = vfs.list("/d").unwrap();
        let expected: Vec<String> = files.keys().cloned().collect();
        prop_assert_eq!(listing, expected, "listing is sorted & complete");
    }

    /// Deleting a file removes it from reads, sizes and listings.
    #[test]
    fn vfs_delete_removes(names in proptest::collection::btree_set(seg(), 2..8)) {
        let vfs = Vfs::new();
        for n in &names {
            vfs.write(&format!("/{n}"), vec![1, 2, 3]);
        }
        let victim = names.iter().next().unwrap().clone();
        let victim_path = format!("/{victim}");
        let deleted = vfs.delete(&victim_path);
        prop_assert!(deleted);
        let gone = vfs.read(&victim_path).is_none();
        prop_assert!(gone);
        let listed = vfs.list("/").unwrap().contains(&victim);
        prop_assert!(!listed);
        // Arc'd data handed out before deletion stays valid.
        let survivor = names.iter().nth(1).unwrap();
        let survivor_path = format!("/{survivor}");
        let data: Arc<Vec<u8>> = vfs.read(&survivor_path).unwrap();
        vfs.delete(&survivor_path);
        prop_assert_eq!(&**data, &[1u8, 2, 3][..]);
    }
}
