//! The Handle Request hook for COPS-FTP: the event-driven adaptation layer
//! over the legacy library.
//!
//! COPS-FTP is configured with **synchronous completions** (Table 1:
//! O4 = Synchronous) and a **dynamic** worker pool (O5): data transfers
//! block the worker thread that runs them, and the Processor Controller
//! grows the pool when several transfers are in flight. The transfer
//! commands are still expressed as `Action::Defer` blocking operations, so
//! the very same service code would run unchanged under O4 = Asynchronous
//! — that is the point of the pattern's hook interface.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use nserver_core::diag::DiagHub;
use nserver_core::event::ConnId;
use nserver_core::metrics::{MetricsRegistry, Stage};
use nserver_core::pipeline::{Action, ConnCtx, Service};
use nserver_core::profiling::ServerStats;
use nserver_core::tap::{TapEvent, TraceHandle, TraceLog};

use crate::codec::{FtpCodec, FtpRequest};
use crate::commands::Command;
use crate::legacy::replies;
use crate::legacy::users::UserRegistry;
use crate::legacy::vfs::{normalize, Vfs};
use crate::observe::listing_text;
use crate::session::{Session, SessionState};

/// How long a data transfer waits for the peer to connect to the passive
/// listener.
const DATA_ACCEPT_TIMEOUT: Duration = Duration::from_secs(3);

/// The COPS-FTP application service.
pub struct FtpService {
    vfs: Arc<Vfs>,
    users: Arc<UserRegistry>,
    sessions: Mutex<HashMap<ConnId, Arc<Mutex<Session>>>>,
    server_name: String,
    status_source: Mutex<Option<(Arc<ServerStats>, Arc<MetricsRegistry>)>>,
    diag_hub: Mutex<Option<DiagHub>>,
    data_tap: Mutex<Option<TraceLog>>,
}

impl FtpService {
    /// Serve `vfs` to the accounts in `users`.
    pub fn new(vfs: Arc<Vfs>, users: Arc<UserRegistry>) -> Self {
        Self {
            vfs,
            users,
            sessions: Mutex::new(HashMap::new()),
            server_name: "COPS-FTP".to_string(),
            status_source: Mutex::new(None),
            diag_hub: Mutex::new(None),
            data_tap: Mutex::new(None),
        }
    }

    /// Attach the running server's counter and latency registries so the
    /// `STAT` command can report them. Pass the same `Arc`s given to the
    /// `ServerBuilder`; without an attachment `STAT` still answers, with
    /// session counts only.
    pub fn attach_stats(&self, stats: Arc<ServerStats>, metrics: Arc<MetricsRegistry>) {
        *self.status_source.lock() = Some((stats, metrics));
    }

    /// Attach the running server's diagnostics hub so `SITE DUMP` can
    /// capture and return flight-recorder snapshots. Pass the hub given
    /// to `ServerBuilder::diag`; without an attachment `SITE DUMP`
    /// answers 211 with a note and no snapshot.
    pub fn attach_diag(&self, hub: DiagHub) {
        *self.diag_hub.lock() = Some(hub);
    }

    /// Attach a conformance trace log so every data (PASV) socket gets a
    /// secondary [`nserver_core::tap::ConnTrace`] joined to its control
    /// connection. Pass the same log the control listener's
    /// `TapListener` records into; without an attachment the data path
    /// runs untapped and unchanged.
    pub fn attach_data_tap(&self, log: TraceLog) {
        *self.data_tap.lock() = Some(log);
    }

    /// Snapshot of the transfer-tap wiring for one Defer closure: the
    /// attached log (if any), the owning connection, and the 1-based
    /// ordinal this transfer attempt was assigned on its session.
    fn transfer_tap(&self, conn: ConnId, session: &Arc<Mutex<Session>>) -> DataTap {
        let ordinal = {
            let mut s = session.lock();
            s.transfer_seq += 1;
            s.transfer_seq
        };
        DataTap {
            log: self.data_tap.lock().clone(),
            conn,
            ordinal,
        }
    }

    /// The multi-line 211 body for argument-less `STAT`.
    fn status_report(&self) -> String {
        let mut body = vec![format!("Live sessions: {}", self.live_sessions())];
        if let Some((stats, metrics)) = self.status_source.lock().clone() {
            for (name, value) in stats.snapshot().rows() {
                body.push(format!("{name}: {value}"));
            }
            let lat = metrics.latency_snapshot();
            for stage in Stage::ALL {
                let h = lat.stage(stage);
                body.push(format!(
                    "{}: count={} p50={}us p99={}us",
                    stage.name(),
                    h.count,
                    h.quantile_us(0.5),
                    h.quantile_us(0.99),
                ));
            }
        }
        replies::status_lines(&format!("{} status", self.server_name), &body)
    }

    /// The shared virtual filesystem.
    pub fn vfs(&self) -> &Arc<Vfs> {
        &self.vfs
    }

    fn session(&self, conn: ConnId) -> Arc<Mutex<Session>> {
        Arc::clone(
            self.sessions
                .lock()
                .entry(conn)
                .or_insert_with(|| Arc::new(Mutex::new(Session::new()))),
        )
    }

    /// Number of live sessions (diagnostics).
    pub fn live_sessions(&self) -> usize {
        self.sessions.lock().len()
    }
}

/// Everything a transfer closure needs to record its data socket into the
/// conformance trace log: captured at `Action::Defer` creation so the
/// closure stays `'static`.
struct DataTap {
    log: Option<TraceLog>,
    conn: ConnId,
    ordinal: u32,
}

impl DataTap {
    /// Open the secondary trace once the data socket is accepted.
    fn open(&self, data: &TcpStream) -> Option<TraceHandle> {
        let log = self.log.as_ref()?;
        let peer = data
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "data".to_string());
        log.open_data(self.conn, self.ordinal, peer)
    }
}

/// Write `bytes` to the data socket, recording each accepted chunk (and a
/// terminal error) into the data trace. Chunked so partial progress under
/// an aborting peer is observable.
fn send_data(data: &mut TcpStream, bytes: &[u8], trace: Option<&TraceHandle>) -> bool {
    for chunk in bytes.chunks(1024) {
        let mut off = 0;
        while off < chunk.len() {
            match data.write(&chunk[off..]) {
                Ok(0) => {
                    if let Some(t) = trace {
                        t.push(TapEvent::WriteError("data socket wrote zero".into()));
                    }
                    return false;
                }
                Ok(n) => {
                    if let Some(t) = trace {
                        t.push(TapEvent::Wrote(chunk[off..off + n].to_vec()));
                    }
                    off += n;
                }
                Err(e) => {
                    if let Some(t) = trace {
                        t.push(TapEvent::WriteError(e.to_string()));
                    }
                    return false;
                }
            }
        }
    }
    true
}

/// Read the data socket to EOF, recording each chunk (and EOF / a
/// terminal error) into the data trace.
fn recv_data(data: &mut TcpStream, trace: Option<&TraceHandle>) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match data.read(&mut buf) {
            Ok(0) => {
                if let Some(t) = trace {
                    t.push_eof_once();
                }
                return Some(out);
            }
            Ok(n) => {
                if let Some(t) = trace {
                    t.push(TapEvent::Read(buf[..n].to_vec()));
                }
                out.extend_from_slice(&buf[..n]);
            }
            Err(e) => {
                if let Some(t) = trace {
                    t.push(TapEvent::ReadError(e.to_string()));
                }
                return None;
            }
        }
    }
}

/// Drop the data socket and record the close. Transfer closures call this
/// *before* returning their 150/226 reply string, so the recorded data
/// close always precedes the control-channel completion write — the
/// ordering invariant the conformance checker enforces.
fn close_data(data: TcpStream, trace: Option<&TraceHandle>) {
    drop(data);
    if let Some(t) = trace {
        t.push(TapEvent::Shutdown);
    }
}

/// Accept one data connection on a passive listener, with a deadline.
fn accept_data(listener: &TcpListener) -> Option<TcpStream> {
    listener.set_nonblocking(true).ok()?;
    let deadline = Instant::now() + DATA_ACCEPT_TIMEOUT;
    while Instant::now() < deadline {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                return Some(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => return None,
        }
    }
    None
}

impl Service<FtpCodec> for FtpService {
    fn on_open(&self, ctx: &ConnCtx) -> Option<String> {
        self.session(ctx.id); // allocate session state
        Some(replies::service_ready(&self.server_name))
    }

    fn on_close(&self, ctx: &ConnCtx) {
        self.sessions.lock().remove(&ctx.id);
    }

    fn handle(&self, ctx: &ConnCtx, req: FtpRequest) -> Action<String> {
        let cmd = match req {
            FtpRequest::Command(c) => c,
            FtpRequest::Malformed(why) => {
                return Action::Reply(replies::syntax_error(&why));
            }
        };
        let session = self.session(ctx.id);

        // Commands allowed before login.
        match &cmd {
            Command::User(name) => {
                let mut s = session.lock();
                if self.users.knows(name) {
                    s.state = SessionState::NeedPassword { user: name.clone() };
                    return Action::Reply(replies::need_password(name));
                }
                s.state = SessionState::Greeted;
                return Action::Reply(replies::not_logged_in("Unknown user"));
            }
            Command::Pass(pw) => {
                let mut s = session.lock();
                let user = match &s.state {
                    SessionState::NeedPassword { user } => user.clone(),
                    _ => return Action::Reply(replies::bad_sequence("Send USER first")),
                };
                if self.users.authenticate(&user, pw) {
                    s.state = SessionState::LoggedIn { user: user.clone() };
                    return Action::Reply(replies::logged_in(&user));
                }
                s.state = SessionState::Greeted;
                return Action::Reply(replies::not_logged_in("Login incorrect"));
            }
            Command::Quit => return Action::ReplyClose(replies::goodbye()),
            Command::Syst => return Action::Reply(replies::system_type()),
            Command::Noop => return Action::Reply(replies::ok_command("NOOP ok")),
            Command::Unknown(verb) => {
                return Action::Reply(replies::not_implemented(verb));
            }
            _ => {}
        }

        if !session.lock().logged_in() {
            return Action::Reply(replies::not_logged_in("Please login with USER and PASS"));
        }

        match cmd {
            Command::Pwd => {
                let cwd = session.lock().cwd.clone();
                Action::Reply(replies::cwd_is(&cwd))
            }
            Command::Cwd(dir) => {
                let mut s = session.lock();
                match normalize(&s.cwd, &dir) {
                    Some(path) if self.vfs.is_dir(&path) => {
                        s.cwd = path;
                        Action::Reply(replies::ok_action("Directory changed"))
                    }
                    _ => Action::Reply(replies::file_unavailable(&dir)),
                }
            }
            Command::Type(t) => {
                session.lock().transfer_type = t;
                Action::Reply(replies::ok_command(&format!("Type set to {t}")))
            }
            Command::Mkd(dir) => {
                let cwd = session.lock().cwd.clone();
                match normalize(&cwd, &dir) {
                    Some(path) if self.vfs.mkdir(&path) => {
                        Action::Reply(replies::line(257, &format!("\"{path}\" created")))
                    }
                    _ => Action::Reply(replies::file_unavailable(&dir)),
                }
            }
            Command::Dele(file) => {
                let cwd = session.lock().cwd.clone();
                match normalize(&cwd, &file) {
                    Some(path) if self.vfs.delete(&path) => {
                        Action::Reply(replies::ok_action("File deleted"))
                    }
                    _ => Action::Reply(replies::file_unavailable(&file)),
                }
            }
            Command::Size(file) => {
                let cwd = session.lock().cwd.clone();
                match normalize(&cwd, &file).and_then(|p| self.vfs.size(&p)) {
                    Some(n) => Action::Reply(replies::line(213, &n.to_string())),
                    None => Action::Reply(replies::file_unavailable(&file)),
                }
            }
            Command::Stat(path) => match path {
                None => Action::Reply(self.status_report()),
                Some(p) => {
                    let cwd = session.lock().cwd.clone();
                    match normalize(&cwd, &p) {
                        Some(t) if self.vfs.is_dir(&t) => {
                            let listing = self.vfs.list(&t).unwrap_or_default();
                            Action::Reply(replies::status_lines(
                                &format!("Status of {t}"),
                                &listing,
                            ))
                        }
                        Some(t) if self.vfs.size(&t).is_some() => {
                            Action::Reply(replies::status_lines(
                                &format!("Status of {t}"),
                                std::slice::from_ref(&t),
                            ))
                        }
                        _ => Action::Reply(replies::file_unavailable(&p)),
                    }
                }
            },
            Command::SiteDump => {
                let hub = self.diag_hub.lock().clone();
                match hub {
                    Some(hub) => {
                        // The snapshot JSON is one line by construction, so
                        // it rides inside a 211 multi-line reply verbatim.
                        let json = hub.capture("ftp_site_dump").to_json();
                        Action::Reply(replies::status_lines(
                            "Diagnostic snapshot",
                            std::slice::from_ref(&json),
                        ))
                    }
                    None => Action::Reply(replies::status_lines(
                        "Diagnostic snapshot",
                        &["No diagnostics hub attached".to_string()],
                    )),
                }
            }
            Command::Pasv => {
                let listener = match TcpListener::bind("127.0.0.1:0") {
                    Ok(l) => l,
                    Err(_) => return Action::Reply(replies::data_failed()),
                };
                let port = listener.local_addr().map(|a| a.port()).unwrap_or(0);
                session.lock().pasv = Some(listener);
                Action::Reply(replies::passive_mode([127, 0, 0, 1], port))
            }
            Command::List(path) => {
                let (cwd, listener) = {
                    let mut s = session.lock();
                    (s.cwd.clone(), s.take_pasv())
                };
                let Some(listener) = listener else {
                    return Action::Reply(replies::bad_sequence("Use PASV first"));
                };
                let target = match path {
                    Some(p) => match normalize(&cwd, &p) {
                        Some(t) => t,
                        None => return Action::Reply(replies::file_unavailable(&p)),
                    },
                    None => cwd,
                };
                let vfs = Arc::clone(&self.vfs);
                let tap = self.transfer_tap(ctx.id, &session);
                // Blocking data transfer: Defer runs it synchronously in
                // place (O4 = Synchronous) or on the helper pool (O4 =
                // Asynchronous) — the hook code is identical.
                Action::Defer(Box::new(move || {
                    let Some(listing) = vfs.list(&target) else {
                        return replies::file_unavailable(&target);
                    };
                    let Some(mut data) = accept_data(&listener) else {
                        return replies::data_failed();
                    };
                    let trace = tap.open(&data);
                    let text = listing_text(&listing);
                    if !send_data(&mut data, text.as_bytes(), trace.as_ref()) {
                        return replies::data_failed();
                    }
                    close_data(data, trace.as_ref());
                    format!(
                        "{}{}",
                        replies::opening_data("directory listing"),
                        replies::transfer_complete()
                    )
                }))
            }
            Command::Retr(file) => {
                let (cwd, listener) = {
                    let mut s = session.lock();
                    (s.cwd.clone(), s.take_pasv())
                };
                let Some(listener) = listener else {
                    return Action::Reply(replies::bad_sequence("Use PASV first"));
                };
                let Some(path) = normalize(&cwd, &file) else {
                    return Action::Reply(replies::file_unavailable(&file));
                };
                let vfs = Arc::clone(&self.vfs);
                let tap = self.transfer_tap(ctx.id, &session);
                Action::Defer(Box::new(move || {
                    let Some(bytes) = vfs.read(&path) else {
                        return replies::file_unavailable(&path);
                    };
                    let Some(mut data) = accept_data(&listener) else {
                        return replies::data_failed();
                    };
                    let trace = tap.open(&data);
                    if !send_data(&mut data, &bytes, trace.as_ref()) {
                        return replies::data_failed();
                    }
                    close_data(data, trace.as_ref());
                    format!(
                        "{}{}",
                        replies::opening_data(&path),
                        replies::transfer_complete()
                    )
                }))
            }
            Command::Stor(file) => {
                let (cwd, listener) = {
                    let mut s = session.lock();
                    (s.cwd.clone(), s.take_pasv())
                };
                let Some(listener) = listener else {
                    return Action::Reply(replies::bad_sequence("Use PASV first"));
                };
                let Some(path) = normalize(&cwd, &file) else {
                    return Action::Reply(replies::file_unavailable(&file));
                };
                let vfs = Arc::clone(&self.vfs);
                let tap = self.transfer_tap(ctx.id, &session);
                Action::Defer(Box::new(move || {
                    let Some(mut data) = accept_data(&listener) else {
                        return replies::data_failed();
                    };
                    let trace = tap.open(&data);
                    let Some(bytes) = recv_data(&mut data, trace.as_ref()) else {
                        return replies::data_failed();
                    };
                    close_data(data, trace.as_ref());
                    if !vfs.write(&path, bytes) {
                        return replies::file_unavailable(&path);
                    }
                    format!(
                        "{}{}",
                        replies::opening_data(&path),
                        replies::transfer_complete()
                    )
                }))
            }
            // USER/PASS/QUIT/SYST/NOOP/Unknown handled above.
            Command::User(_)
            | Command::Pass(_)
            | Command::Quit
            | Command::Syst
            | Command::Noop
            | Command::Unknown(_) => unreachable!("handled before login gate"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nserver_core::event::Priority;

    fn ctx(id: ConnId) -> ConnCtx {
        ConnCtx {
            id,
            peer: "t".into(),
            priority: Priority::HIGHEST,
        }
    }

    fn service() -> FtpService {
        let vfs = Arc::new(Vfs::new());
        vfs.mkdir("/pub");
        vfs.write("/pub/hello.txt", b"hello ftp".to_vec());
        let users = Arc::new(UserRegistry::new().with_anonymous());
        users.add_user("alice", "secret");
        FtpService::new(vfs, users)
    }

    fn reply(svc: &FtpService, id: ConnId, line: &str) -> String {
        let cmd = Command::parse(line).unwrap();
        match svc.handle(&ctx(id), FtpRequest::Command(cmd)) {
            Action::Reply(r) => r,
            Action::ReplyClose(r) => r,
            Action::Defer(job) => job(),
            other => panic!("unexpected action {other:?}"),
        }
    }

    fn login(svc: &FtpService, id: ConnId) {
        assert!(reply(svc, id, "USER alice").starts_with("331"));
        assert!(reply(svc, id, "PASS secret").starts_with("230"));
    }

    #[test]
    fn greeting_on_open() {
        let svc = service();
        let g = svc.on_open(&ctx(1)).unwrap();
        assert!(g.starts_with("220"));
        assert_eq!(svc.live_sessions(), 1);
        svc.on_close(&ctx(1));
        assert_eq!(svc.live_sessions(), 0);
    }

    #[test]
    fn login_flow_and_wrong_password() {
        let svc = service();
        assert!(reply(&svc, 1, "USER alice").starts_with("331"));
        assert!(reply(&svc, 1, "PASS wrong").starts_with("530"));
        // After failure the FSM resets.
        assert!(reply(&svc, 1, "PASS secret").starts_with("503"));
        login(&svc, 1);
    }

    #[test]
    fn unknown_user_is_rejected() {
        let svc = service();
        assert!(reply(&svc, 1, "USER mallory").starts_with("530"));
    }

    #[test]
    fn anonymous_login() {
        let svc = service();
        assert!(reply(&svc, 1, "USER anonymous").starts_with("331"));
        assert!(reply(&svc, 1, "PASS guest@").starts_with("230"));
    }

    #[test]
    fn commands_require_login() {
        let svc = service();
        assert!(reply(&svc, 1, "PWD").starts_with("530"));
        assert!(reply(&svc, 1, "RETR /pub/hello.txt").starts_with("530"));
        // SYST and NOOP work pre-login.
        assert!(reply(&svc, 1, "SYST").starts_with("215"));
        assert!(reply(&svc, 1, "NOOP").starts_with("200"));
    }

    #[test]
    fn pwd_and_cwd() {
        let svc = service();
        login(&svc, 1);
        assert!(reply(&svc, 1, "PWD").contains("\"/\""));
        assert!(reply(&svc, 1, "CWD pub").starts_with("250"));
        assert!(reply(&svc, 1, "PWD").contains("\"/pub\""));
        assert!(reply(&svc, 1, "CWD nonexistent").starts_with("550"));
        assert!(reply(&svc, 1, "CWD ..").starts_with("250"));
        assert!(reply(&svc, 1, "PWD").contains("\"/\""));
    }

    #[test]
    fn mkd_dele_size() {
        let svc = service();
        login(&svc, 1);
        assert!(reply(&svc, 1, "MKD /inbox").starts_with("257"));
        assert!(reply(&svc, 1, "MKD /inbox").starts_with("550"), "exists");
        assert!(reply(&svc, 1, "SIZE /pub/hello.txt").starts_with("213 9"));
        assert!(reply(&svc, 1, "DELE /pub/hello.txt").starts_with("250"));
        assert!(reply(&svc, 1, "SIZE /pub/hello.txt").starts_with("550"));
    }

    #[test]
    fn transfers_require_pasv_first() {
        let svc = service();
        login(&svc, 1);
        assert!(reply(&svc, 1, "LIST").starts_with("503"));
        assert!(reply(&svc, 1, "RETR /pub/hello.txt").starts_with("503"));
        assert!(reply(&svc, 1, "STOR up.txt").starts_with("503"));
    }

    /// Parse the port from a 227 reply.
    fn pasv_port(reply_text: &str) -> u16 {
        let inner = reply_text
            .split('(')
            .nth(1)
            .unwrap()
            .split(')')
            .next()
            .unwrap();
        let nums: Vec<u16> = inner.split(',').map(|n| n.parse().unwrap()).collect();
        (nums[4] << 8) | nums[5]
    }

    #[test]
    fn retr_transfers_file_over_data_connection() {
        let svc = Arc::new(service());
        login(&svc, 1);
        let pasv = reply(&svc, 1, "PASV");
        assert!(pasv.starts_with("227"), "{pasv}");
        let port = pasv_port(&pasv);
        // The client connects to the data port, then issues RETR.
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).unwrap();
            buf
        });
        let r = reply(&svc, 1, "RETR /pub/hello.txt");
        assert!(r.contains("150"), "{r}");
        assert!(r.contains("226"), "{r}");
        assert_eq!(reader.join().unwrap(), b"hello ftp");
    }

    #[test]
    fn list_transfers_directory_over_data_connection() {
        let svc = Arc::new(service());
        login(&svc, 1);
        let port = pasv_port(&reply(&svc, 1, "PASV"));
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
            let mut buf = String::new();
            s.read_to_string(&mut buf).unwrap();
            buf
        });
        let r = reply(&svc, 1, "LIST /pub");
        assert!(r.contains("226"), "{r}");
        assert_eq!(reader.join().unwrap(), "hello.txt\r\n");
    }

    #[test]
    fn stor_uploads_into_the_vfs() {
        let svc = Arc::new(service());
        login(&svc, 1);
        let port = pasv_port(&reply(&svc, 1, "PASV"));
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
            s.write_all(b"uploaded bytes").unwrap();
        });
        let r = reply(&svc, 1, "STOR /pub/up.bin");
        assert!(r.contains("226"), "{r}");
        writer.join().unwrap();
        assert_eq!(&**svc.vfs().read("/pub/up.bin").unwrap(), b"uploaded bytes");
    }

    #[test]
    fn retr_of_missing_file_reports_550_and_pasv_is_consumed() {
        let svc = service();
        login(&svc, 1);
        let _ = reply(&svc, 1, "PASV");
        assert!(reply(&svc, 1, "RETR /nope").starts_with("550"));
        // The listener was consumed; a new transfer needs a fresh PASV.
        assert!(reply(&svc, 1, "RETR /pub/hello.txt").starts_with("503"));
    }

    #[test]
    fn sessions_are_independent_per_connection() {
        let svc = service();
        login(&svc, 1);
        assert!(reply(&svc, 1, "CWD pub").starts_with("250"));
        // Connection 2 is not logged in and has its own cwd.
        assert!(reply(&svc, 2, "PWD").starts_with("530"));
        login(&svc, 2);
        assert!(reply(&svc, 2, "PWD").contains("\"/\""));
    }

    #[test]
    fn stat_reports_server_status_with_latency_quantiles() {
        let svc = service();
        login(&svc, 1);
        // Without an attachment STAT still answers with session counts.
        let bare = reply(&svc, 1, "STAT");
        assert!(bare.starts_with("211-"), "{bare}");
        assert!(bare.contains("Live sessions: 1"), "{bare}");
        assert!(bare.ends_with("211 End\r\n"), "{bare}");

        let stats = ServerStats::new_shared();
        let metrics = MetricsRegistry::enabled();
        stats
            .connections_accepted
            .fetch_add(7, std::sync::atomic::Ordering::Relaxed);
        metrics.record_stage(Stage::Decode, 40);
        svc.attach_stats(Arc::clone(&stats), Arc::clone(&metrics));
        let full = reply(&svc, 1, "STAT");
        assert!(full.contains("connections accepted: 7"), "{full}");
        assert!(full.contains("decode: count=1 p50="), "{full}");
        assert!(full.contains("p99="), "{full}");
    }

    #[test]
    fn stat_with_path_lists_over_the_control_connection() {
        let svc = service();
        login(&svc, 1);
        let r = reply(&svc, 1, "STAT /pub");
        assert!(r.starts_with("211-Status of /pub"), "{r}");
        assert!(r.contains(" hello.txt\r\n"), "{r}");
        let r = reply(&svc, 1, "STAT /pub/hello.txt");
        assert!(r.contains("/pub/hello.txt"), "{r}");
        assert!(reply(&svc, 1, "STAT /nope").starts_with("550"));
    }

    #[test]
    fn site_dump_returns_snapshot_json() {
        let svc = service();
        login(&svc, 1);
        // Without an attachment SITE DUMP answers 211 with a note.
        let bare = reply(&svc, 1, "SITE DUMP");
        assert!(bare.starts_with("211-Diagnostic snapshot"), "{bare}");
        assert!(bare.contains("No diagnostics hub attached"), "{bare}");

        let hub = DiagHub::new(ServerStats::new_shared(), MetricsRegistry::enabled());
        svc.attach_diag(hub.clone());
        let r = reply(&svc, 1, "SITE DUMP");
        assert!(r.starts_with("211-Diagnostic snapshot"), "{r}");
        assert!(r.contains("\"reason\":\"ftp_site_dump\""), "{r}");
        assert!(r.contains("\"counters\""), "{r}");
        assert!(r.ends_with("211 End\r\n"), "{r}");
        assert_eq!(hub.snapshots_captured(), 1);
    }

    #[test]
    fn site_dump_requires_login() {
        let svc = service();
        assert!(reply(&svc, 1, "SITE DUMP").starts_with("530"));
    }

    #[test]
    fn stat_requires_login() {
        let svc = service();
        assert!(reply(&svc, 1, "STAT").starts_with("530"));
    }

    #[test]
    fn quit_closes_and_unknown_is_502() {
        let svc = service();
        let action = svc.handle(
            &ctx(1),
            FtpRequest::Command(Command::parse("QUIT").unwrap()),
        );
        assert!(matches!(action, Action::ReplyClose(_)));
        assert!(reply(&svc, 1, "FEAT").starts_with("502"));
    }

    #[test]
    fn malformed_requests_get_500() {
        let svc = service();
        match svc.handle(&ctx(1), FtpRequest::Malformed("RETR needs arg".into())) {
            Action::Reply(r) => assert!(r.starts_with("500")),
            other => panic!("{other:?}"),
        }
    }
}
