//! The N-Server template options (Table 1 of the paper).
//!
//! A [`ServerOptions`] value is the *pattern template configuration*: the
//! twelve options O1–O12 with their legal values. The same structure drives
//! both instantiation paths:
//!
//! * the **runtime path** — [`crate::server::ServerBuilder`] assembles a
//!   live framework from the options, and
//! * the **generative path** — `nserver-codegen` expands the options into
//!   standalone framework source, including or excluding code exactly as
//!   the paper's Table 2 crosscut matrix describes.
//!
//! Options interact; [`ServerOptions::validate`] rejects inconsistent
//! combinations with a precise error instead of producing a framework that
//! silently misbehaves.

use std::fmt;

use nserver_cache::PolicyKind;

/// O1: how many event-dispatcher threads the Reactor runs.
///
/// The paper's legal values are "1 or 2N": one dispatcher (the classic
/// Reactor) or a small multiple of the processor count, with connections
/// partitioned between dispatchers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatcherThreads {
    /// A single dispatcher thread (both COPS servers use this).
    Single,
    /// `n` dispatcher threads; connections are partitioned by id.
    Multi(u8),
}

impl DispatcherThreads {
    /// Thread count.
    pub fn count(self) -> usize {
        match self {
            DispatcherThreads::Single => 1,
            DispatcherThreads::Multi(n) => n.max(1) as usize,
        }
    }
}

/// O4: how completions of blocking operations are delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionMode {
    /// Blocking operations run on a Proactor-style helper pool; the result
    /// returns to the framework as a completion event carrying an
    /// asynchronous completion token (COPS-HTTP).
    Asynchronous,
    /// The handler blocks in place on the event-processing thread
    /// (COPS-FTP — acceptable because FTP holds few concurrent transfers).
    Synchronous,
}

/// O5: worker-thread allocation in the Event Processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadAllocation {
    /// A fixed pool of `threads` workers (COPS-HTTP).
    Static {
        /// Fixed worker count.
        threads: usize,
    },
    /// The pool grows and shrinks between `min` and `max` under control of
    /// a Processor Controller (COPS-FTP).
    Dynamic {
        /// Lower bound kept alive even when idle.
        min: usize,
        /// Hard upper bound.
        max: usize,
        /// Idle time after which a surplus worker retires, in milliseconds.
        idle_keepalive_ms: u64,
    },
}

/// O6: the file-cache option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileCacheOption {
    /// No file cache is generated.
    No,
    /// Generate the cache with the given replacement policy and capacity.
    Yes {
        /// Replacement policy (LRU, LFU, LRU-MIN, LRU-Threshold, Hyper-G).
        policy: PolicyKind,
        /// Capacity in bytes (COPS-HTTP used 20 MB).
        capacity_bytes: u64,
    },
}

/// O8: event scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventScheduling {
    /// Plain FIFO event queue.
    No,
    /// Priority scheduling with per-level quotas: higher-priority events
    /// are processed first, but each priority level has a quota; when it is
    /// exhausted, lower levels get service, so starvation is avoided.
    Yes {
        /// `quotas[i]` is the number of events priority level `i` may
        /// consume before yielding to level `i+1`. Index 0 is the highest
        /// priority.
        quotas: Vec<u32>,
    },
}

/// O9: overload control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadControl {
    /// Accept every connection (event-driven servers are "extremely
    /// vulnerable to overload" in this mode, as the paper notes).
    No,
    /// Limit the number of simultaneous connections (the "trivial"
    /// mechanism).
    MaxConnections {
        /// Maximum simultaneous connections.
        limit: usize,
    },
    /// Watermark gating (the second, multi-bottleneck mechanism): when any
    /// watched event queue grows past `high`, new connections are postponed
    /// until it drains below `low`.
    Watermark {
        /// Queue length at which accepting pauses.
        high: usize,
        /// Queue length at which accepting resumes.
        low: usize,
    },
}

/// O10: generation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Internal events are not traced.
    Production,
    /// Every internal event is recorded in the debug trace for post-mortem
    /// inspection.
    Debug,
}

/// Per-stage pipeline deadlines (a hardening refinement of O7).
///
/// The O7 idle sweep measures time since *any* activity, so a slow-loris
/// peer that dribbles one byte per idle-limit keeps its connection pinned
/// forever. These deadlines bound two specific pipeline stages instead:
///
/// * `header_read_ms` — time from accept (or from the previous completed
///   reply) until the connection produces a complete request. Dribbled
///   bytes do **not** refresh it, so slow-loris connections are reaped.
/// * `write_drain_ms` — time a non-empty outbox may sit unflushed because
///   the peer stopped reading.
///
/// Expired connections close and count as `connections_timed_out`. `None`
/// disables the respective deadline (the default: both disabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageDeadlines {
    /// Header-read (request-completion) deadline in milliseconds.
    pub header_read_ms: Option<u64>,
    /// Write-drain deadline in milliseconds.
    pub write_drain_ms: Option<u64>,
}

impl StageDeadlines {
    /// Both deadlines disabled.
    pub const NONE: StageDeadlines = StageDeadlines {
        header_read_ms: None,
        write_drain_ms: None,
    };

    /// True when at least one deadline is armed.
    pub fn any(&self) -> bool {
        self.header_read_ms.is_some() || self.write_drain_ms.is_some()
    }
}

/// The complete N-Server template option set (Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerOptions {
    /// O1: number of dispatcher threads.
    pub dispatcher_threads: DispatcherThreads,
    /// O2: whether event handling runs on a separate thread pool (the
    /// Event Processor) rather than on the dispatcher thread.
    pub separate_handler_pool: bool,
    /// O3: whether the application needs explicit Decode/Encode steps
    /// (Fig. 1's five-step pipeline) or not (Fig. 2's three-step variant).
    pub encode_decode: bool,
    /// O4: completion-event delivery for blocking operations.
    pub completion_mode: CompletionMode,
    /// O5: worker-thread allocation strategy.
    pub thread_allocation: ThreadAllocation,
    /// O6: file cache.
    pub file_cache: FileCacheOption,
    /// O7: shut down long-idle connections after this many milliseconds
    /// (`None` disables the sweep).
    pub idle_shutdown_ms: Option<u64>,
    /// O8: event scheduling.
    pub event_scheduling: EventScheduling,
    /// O9: overload control.
    pub overload_control: OverloadControl,
    /// O10: production or debug mode.
    pub mode: Mode,
    /// O11: performance profiling counters.
    pub profiling: bool,
    /// O12: access logging.
    pub logging: bool,
    /// Per-stage pipeline deadlines (hardening refinement of O7; not a
    /// Table 1 option of its own, so it has no `describe` row).
    pub stage_deadlines: StageDeadlines,
}

impl Default for ServerOptions {
    /// A conservative default: single dispatcher, separate 4-worker pool,
    /// five-step pipeline, synchronous completions, no optional features.
    fn default() -> Self {
        Self {
            dispatcher_threads: DispatcherThreads::Single,
            separate_handler_pool: true,
            encode_decode: true,
            completion_mode: CompletionMode::Synchronous,
            thread_allocation: ThreadAllocation::Static { threads: 4 },
            file_cache: FileCacheOption::No,
            idle_shutdown_ms: None,
            event_scheduling: EventScheduling::No,
            overload_control: OverloadControl::No,
            mode: Mode::Production,
            profiling: false,
            logging: false,
            stage_deadlines: StageDeadlines::NONE,
        }
    }
}

/// A rejected option combination, naming the options involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptionsError(pub String);

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid N-Server option combination: {}", self.0)
    }
}

impl std::error::Error for OptionsError {}

impl ServerOptions {
    /// Check option consistency. Returns the first violated rule.
    pub fn validate(&self) -> Result<(), OptionsError> {
        if let DispatcherThreads::Multi(n) = self.dispatcher_threads {
            if n == 0 {
                return Err(OptionsError(
                    "O1: dispatcher thread count must be ≥ 1".into(),
                ));
            }
        }
        match self.thread_allocation {
            ThreadAllocation::Static { threads: 0 } => {
                return Err(OptionsError("O5: static pool needs ≥ 1 thread".into()));
            }
            ThreadAllocation::Dynamic { min: 0, .. } => {
                return Err(OptionsError(
                    "O5: dynamic pool needs 1 \u{2264} min \u{2264} max".into(),
                ));
            }
            ThreadAllocation::Dynamic { min, max, .. } if max < min => {
                return Err(OptionsError("O5: dynamic pool needs 1 ≤ min ≤ max".into()));
            }
            _ => {}
        }
        if !self.separate_handler_pool {
            if let EventScheduling::Yes { .. } = self.event_scheduling {
                return Err(OptionsError(
                    "O8 requires O2=Yes: event scheduling reorders the Event \
                     Processor queue, which only exists with a separate pool"
                        .into(),
                ));
            }
            if let OverloadControl::Watermark { .. } = self.overload_control {
                return Err(OptionsError(
                    "O9 watermark mode requires O2=Yes: it watches Event \
                     Processor queue lengths"
                        .into(),
                ));
            }
            if matches!(self.thread_allocation, ThreadAllocation::Dynamic { .. }) {
                return Err(OptionsError(
                    "O5=Dynamic requires O2=Yes: there is no pool to resize \
                     when handlers run on the dispatcher"
                        .into(),
                ));
            }
        }
        if let EventScheduling::Yes { quotas } = &self.event_scheduling {
            if quotas.is_empty() {
                return Err(OptionsError("O8: at least one priority level".into()));
            }
            if quotas.contains(&0) {
                return Err(OptionsError(
                    "O8: every priority level needs a nonzero quota, or lower \
                     levels starve"
                        .into(),
                ));
            }
        }
        if let OverloadControl::Watermark { high, low } = self.overload_control {
            if low >= high {
                return Err(OptionsError(
                    "O9: low watermark must be below high watermark".into(),
                ));
            }
        }
        if let OverloadControl::MaxConnections { limit } = self.overload_control {
            if limit == 0 {
                return Err(OptionsError("O9: connection limit must be ≥ 1".into()));
            }
        }
        if let FileCacheOption::Yes { capacity_bytes, .. } = self.file_cache {
            if capacity_bytes == 0 {
                return Err(OptionsError("O6: cache capacity must be ≥ 1 byte".into()));
            }
        }
        if self.stage_deadlines.header_read_ms == Some(0)
            || self.stage_deadlines.write_drain_ms == Some(0)
        {
            return Err(OptionsError(
                "stage deadlines must be ≥ 1 ms (use None to disable)".into(),
            ));
        }
        Ok(())
    }

    /// Number of priority levels the configuration schedules (1 = FIFO).
    pub fn priority_levels(&self) -> usize {
        match &self.event_scheduling {
            EventScheduling::No => 1,
            EventScheduling::Yes { quotas } => quotas.len(),
        }
    }

    /// Render the configuration as a Table 1-style option listing.
    pub fn describe(&self) -> Vec<(&'static str, String)> {
        vec![
            (
                "O1: # of dispatcher threads",
                match self.dispatcher_threads {
                    DispatcherThreads::Single => "1".to_string(),
                    DispatcherThreads::Multi(n) => format!("{n}"),
                },
            ),
            (
                "O2: Separate thread pool for event handling",
                yesno(self.separate_handler_pool),
            ),
            ("O3: Encoding/Decoding required", yesno(self.encode_decode)),
            (
                "O4: Completion events",
                match self.completion_mode {
                    CompletionMode::Asynchronous => "Asynchronous".into(),
                    CompletionMode::Synchronous => "Synchronous".into(),
                },
            ),
            (
                "O5: Event thread allocation",
                match self.thread_allocation {
                    ThreadAllocation::Static { .. } => "Static".into(),
                    ThreadAllocation::Dynamic { .. } => "Dynamic".into(),
                },
            ),
            (
                "O6: File cache",
                match self.file_cache {
                    FileCacheOption::No => "No".into(),
                    FileCacheOption::Yes { policy, .. } => format!("Yes: {}", policy.name()),
                },
            ),
            (
                "O7: Shutdown long idle",
                yesno(self.idle_shutdown_ms.is_some()),
            ),
            (
                "O8: Event scheduling",
                yesno(matches!(self.event_scheduling, EventScheduling::Yes { .. })),
            ),
            (
                "O9: Overload control",
                yesno(!matches!(self.overload_control, OverloadControl::No)),
            ),
            (
                "O10: Mode",
                match self.mode {
                    Mode::Production => "Production".into(),
                    Mode::Debug => "Debug".into(),
                },
            ),
            ("O11: Performance profiling", yesno(self.profiling)),
            ("O12: Logging", yesno(self.logging)),
        ]
    }
}

fn yesno(b: bool) -> String {
    if b {
        "Yes".into()
    } else {
        "No".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_validate() {
        assert!(ServerOptions::default().validate().is_ok());
    }

    #[test]
    fn scheduling_without_pool_is_rejected() {
        let opts = ServerOptions {
            separate_handler_pool: false,
            thread_allocation: ThreadAllocation::Static { threads: 1 },
            event_scheduling: EventScheduling::Yes { quotas: vec![4, 1] },
            ..ServerOptions::default()
        };
        let err = opts.validate().unwrap_err();
        assert!(err.0.contains("O8"), "{err}");
    }

    #[test]
    fn watermark_without_pool_is_rejected() {
        let opts = ServerOptions {
            separate_handler_pool: false,
            thread_allocation: ThreadAllocation::Static { threads: 1 },
            overload_control: OverloadControl::Watermark { high: 20, low: 5 },
            ..ServerOptions::default()
        };
        assert!(opts.validate().unwrap_err().0.contains("O9"));
    }

    #[test]
    fn dynamic_pool_without_separate_pool_is_rejected() {
        let opts = ServerOptions {
            separate_handler_pool: false,
            thread_allocation: ThreadAllocation::Dynamic {
                min: 1,
                max: 4,
                idle_keepalive_ms: 100,
            },
            ..ServerOptions::default()
        };
        assert!(opts.validate().unwrap_err().0.contains("O5"));
    }

    #[test]
    fn inverted_watermarks_are_rejected() {
        let opts = ServerOptions {
            overload_control: OverloadControl::Watermark { high: 5, low: 20 },
            ..ServerOptions::default()
        };
        assert!(opts.validate().unwrap_err().0.contains("low watermark"));
    }

    #[test]
    fn zero_quota_is_rejected() {
        let opts = ServerOptions {
            event_scheduling: EventScheduling::Yes { quotas: vec![4, 0] },
            ..ServerOptions::default()
        };
        assert!(opts.validate().unwrap_err().0.contains("quota"));
    }

    #[test]
    fn empty_quota_list_is_rejected() {
        let opts = ServerOptions {
            event_scheduling: EventScheduling::Yes { quotas: vec![] },
            ..ServerOptions::default()
        };
        assert!(opts.validate().is_err());
    }

    #[test]
    fn degenerate_pools_rejected() {
        let zero_static = ServerOptions {
            thread_allocation: ThreadAllocation::Static { threads: 0 },
            ..ServerOptions::default()
        };
        assert!(zero_static.validate().is_err());
        let bad_dynamic = ServerOptions {
            thread_allocation: ThreadAllocation::Dynamic {
                min: 4,
                max: 2,
                idle_keepalive_ms: 10,
            },
            ..ServerOptions::default()
        };
        assert!(bad_dynamic.validate().is_err());
    }

    #[test]
    fn describe_covers_all_twelve_options() {
        let rows = ServerOptions::default().describe();
        assert_eq!(rows.len(), 12);
        for (i, (name, _)) in rows.iter().enumerate() {
            assert!(name.starts_with(&format!("O{}", i + 1)), "{name}");
        }
    }

    #[test]
    fn priority_levels() {
        assert_eq!(ServerOptions::default().priority_levels(), 1);
        let opts = ServerOptions {
            event_scheduling: EventScheduling::Yes {
                quotas: vec![8, 2, 1],
            },
            ..ServerOptions::default()
        };
        assert_eq!(opts.priority_levels(), 3);
    }

    #[test]
    fn zero_stage_deadline_is_rejected() {
        let opts = ServerOptions {
            stage_deadlines: StageDeadlines {
                header_read_ms: Some(0),
                write_drain_ms: None,
            },
            ..ServerOptions::default()
        };
        assert!(opts.validate().unwrap_err().0.contains("stage deadlines"));
        let opts = ServerOptions {
            stage_deadlines: StageDeadlines {
                header_read_ms: Some(100),
                write_drain_ms: Some(250),
            },
            ..ServerOptions::default()
        };
        assert!(opts.validate().is_ok());
        assert!(opts.stage_deadlines.any());
        assert!(!StageDeadlines::NONE.any());
    }

    #[test]
    fn dispatcher_thread_count() {
        assert_eq!(DispatcherThreads::Single.count(), 1);
        assert_eq!(DispatcherThreads::Multi(2).count(), 2);
        assert_eq!(DispatcherThreads::Multi(0).count(), 1);
    }
}
