//! The Event Processor: an event queue plus a pool of worker threads.
//!
//! "An Event Processor contains an event queue and a pool of threads that
//! operate collaboratively to process ready events" — the participant the
//! N-Server adds to the Reactor pattern so the framework scales beyond one
//! CPU (option O2). Worker allocation is either *static* (fixed pool,
//! COPS-HTTP) or *dynamic* (a Processor Controller grows the pool under
//! backlog and retires idle surplus workers, COPS-FTP) — option O5.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::diag::{WorkerRole, WorkerStateTable};
use crate::event::Priority;
use crate::options::ThreadAllocation;
use crate::queue::BlockingQueue;

/// Worker-pool event processor over an arbitrary work-item type.
pub struct EventProcessor<T: Send + 'static> {
    queue: Arc<BlockingQueue<T>>,
    handler: Arc<dyn Fn(T) + Send + Sync>,
    live: Arc<AtomicUsize>,
    peak: Arc<AtomicUsize>,
    panics: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    min_workers: usize,
    max_workers: usize,
    idle_keepalive: Duration,
    workers: Mutex<Vec<JoinHandle<()>>>,
    controller: Mutex<Option<JoinHandle<()>>>,
    /// Diagnostics: when present, every worker registers a slot and
    /// stamps idle between events (stage stamps happen inside the
    /// pipeline, which knows the stage and connection).
    worker_table: Option<Arc<WorkerStateTable>>,
}

impl<T: Send + 'static> EventProcessor<T> {
    /// Start a processor draining `queue` with the given allocation policy;
    /// every popped item is passed to `handler`.
    pub fn start(
        alloc: ThreadAllocation,
        queue: Arc<BlockingQueue<T>>,
        handler: Arc<dyn Fn(T) + Send + Sync>,
    ) -> Arc<Self> {
        Self::start_with_diag(alloc, queue, handler, None)
    }

    /// [`start`](Self::start) with an optional worker state table for the
    /// diagnostics subsystem.
    pub fn start_with_diag(
        alloc: ThreadAllocation,
        queue: Arc<BlockingQueue<T>>,
        handler: Arc<dyn Fn(T) + Send + Sync>,
        worker_table: Option<Arc<WorkerStateTable>>,
    ) -> Arc<Self> {
        let (min, max, keepalive) = match alloc {
            ThreadAllocation::Static { threads } => {
                let t = threads.max(1);
                (t, t, Duration::from_secs(3600))
            }
            ThreadAllocation::Dynamic {
                min,
                max,
                idle_keepalive_ms,
            } => (
                min.max(1),
                max.max(min.max(1)),
                Duration::from_millis(idle_keepalive_ms.max(1)),
            ),
        };
        let proc = Arc::new(Self {
            queue,
            handler,
            live: Arc::new(AtomicUsize::new(0)),
            peak: Arc::new(AtomicUsize::new(0)),
            panics: Arc::new(AtomicUsize::new(0)),
            stop: Arc::new(AtomicBool::new(false)),
            min_workers: min,
            max_workers: max,
            idle_keepalive: keepalive,
            workers: Mutex::new(Vec::new()),
            controller: Mutex::new(None),
            worker_table,
        });
        for _ in 0..min {
            proc.spawn_worker();
        }
        if max > min {
            proc.spawn_controller();
        }
        proc
    }

    /// Submit a work item at the given priority.
    pub fn submit(&self, item: T, prio: Priority) {
        self.queue.push(item, prio);
    }

    /// The processor's queue (for gauges and direct pushes).
    pub fn queue(&self) -> &Arc<BlockingQueue<T>> {
        &self.queue
    }

    /// Live worker count.
    pub fn live_workers(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of the worker count.
    pub fn peak_workers(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Handler panics caught so far (each is isolated to its event; the
    /// worker keeps serving).
    pub fn handler_panics(&self) -> usize {
        self.panics.load(Ordering::Relaxed)
    }

    /// Drain the queue, stop workers and the controller, and join them.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.queue.close();
        if let Some(c) = self.controller.lock().take() {
            let _ = c.join();
        }
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    fn spawn_worker(self: &Arc<Self>) {
        let me = Arc::clone(self);
        let prev = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(prev, Ordering::Relaxed);
        let handle = std::thread::Builder::new()
            .name("nserver-worker".into())
            .spawn(move || me.worker_loop())
            .expect("spawn worker");
        self.workers.lock().push(handle);
    }

    fn worker_loop(self: Arc<Self>) {
        if let Some(table) = &self.worker_table {
            crate::diag::attach_worker(table, WorkerRole::Worker);
        }
        let mut idle_since = Instant::now();
        loop {
            match self.queue.pop_wait(Duration::from_millis(20)) {
                Some(item) => {
                    // A panicking hook must not kill the worker (the pool
                    // would silently shrink); isolate it to this event.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        (self.handler)(item)
                    }));
                    if result.is_err() {
                        self.panics.fetch_add(1, Ordering::Relaxed);
                    }
                    crate::diag::stamp_idle();
                    idle_since = Instant::now();
                }
                None => {
                    if self.stop.load(Ordering::Relaxed) && self.queue.is_empty() {
                        break;
                    }
                    // Dynamic retirement: surplus workers exit after staying
                    // idle past the keepalive (the Processor Controller's
                    // shrink half).
                    if idle_since.elapsed() >= self.idle_keepalive {
                        let live = self.live.load(Ordering::Relaxed);
                        if live > self.min_workers
                            && self
                                .live
                                .compare_exchange(
                                    live,
                                    live - 1,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                        {
                            crate::diag::detach_worker();
                            return; // retire without decrementing again
                        }
                    }
                }
            }
        }
        crate::diag::detach_worker();
        self.live.fetch_sub(1, Ordering::Relaxed);
    }

    fn spawn_controller(self: &Arc<Self>) {
        let me = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("nserver-proc-controller".into())
            .spawn(move || {
                while !me.stop.load(Ordering::Relaxed) {
                    let backlog = me.queue.len();
                    let live = me.live.load(Ordering::Relaxed);
                    // Grow when the backlog outpaces the pool.
                    if backlog > live * 2 && live < me.max_workers {
                        me.spawn_worker();
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
            .expect("spawn controller");
        *self.controller.lock() = Some(handle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::FifoQueue;
    use crate::scheduler::PriorityQuotaQueue;
    use crossbeam::channel::unbounded;

    fn fifo<T: Send + 'static>() -> Arc<BlockingQueue<T>> {
        BlockingQueue::new(Box::new(FifoQueue::new()))
    }

    #[test]
    fn static_pool_processes_everything() {
        let (tx, rx) = unbounded();
        let handler = Arc::new(move |i: u32| {
            tx.send(i).unwrap();
        });
        let proc = EventProcessor::start(ThreadAllocation::Static { threads: 3 }, fifo(), handler);
        assert_eq!(proc.live_workers(), 3);
        for i in 0..100 {
            proc.submit(i, Priority(0));
        }
        let mut got: Vec<u32> = (0..100)
            .map(|_| rx.recv_timeout(Duration::from_secs(2)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        proc.shutdown();
        assert_eq!(proc.live_workers(), 0);
    }

    #[test]
    fn shutdown_drains_queue_first() {
        let (tx, rx) = unbounded();
        let handler = Arc::new(move |i: u32| {
            std::thread::sleep(Duration::from_micros(200));
            tx.send(i).unwrap();
        });
        let proc = EventProcessor::start(ThreadAllocation::Static { threads: 1 }, fifo(), handler);
        for i in 0..50 {
            proc.submit(i, Priority(0));
        }
        proc.shutdown();
        assert_eq!(rx.try_iter().count(), 50);
    }

    #[test]
    fn dynamic_pool_grows_under_backlog() {
        let (gate_tx, gate_rx) = unbounded::<()>();
        let gate_rx = Arc::new(Mutex::new(gate_rx));
        let handler = {
            let gate_rx = Arc::clone(&gate_rx);
            Arc::new(move |_: u32| {
                let rx = gate_rx.lock().clone();
                let _ = rx.recv_timeout(Duration::from_secs(2));
            })
        };
        let proc = EventProcessor::start(
            ThreadAllocation::Dynamic {
                min: 1,
                max: 4,
                idle_keepalive_ms: 10,
            },
            fifo(),
            handler,
        );
        assert_eq!(proc.live_workers(), 1);
        // Flood with blocked work so backlog forces growth.
        for i in 0..64 {
            proc.submit(i, Priority(0));
        }
        let mut grew = false;
        for _ in 0..400 {
            if proc.live_workers() >= 2 {
                grew = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(grew, "controller never grew the pool");
        assert!(proc.peak_workers() >= 2);
        // Release all blocked workers and queued items.
        for _ in 0..200 {
            gate_tx.send(()).ok();
        }
        // After the flood, surplus workers retire toward min.
        let mut shrank = false;
        for _ in 0..500 {
            if proc.live_workers() <= 2 {
                shrank = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(shrank, "pool never shrank: {}", proc.live_workers());
        proc.shutdown();
    }

    #[test]
    fn priority_queue_discipline_reaches_workers() {
        // Single worker + pre-filled priority queue: high priority first.
        let q: Arc<BlockingQueue<&'static str>> =
            BlockingQueue::new(Box::new(PriorityQuotaQueue::new(vec![10, 1])));
        q.push("low", Priority(1));
        q.push("high", Priority(0));
        let (tx, rx) = unbounded();
        let handler = Arc::new(move |s: &'static str| {
            tx.send(s).unwrap();
        });
        let proc = EventProcessor::start(ThreadAllocation::Static { threads: 1 }, q, handler);
        let first = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let second = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!((first, second), ("high", "low"));
        proc.shutdown();
    }

    #[test]
    fn queue_len_gauge_visible_through_processor() {
        let proc = EventProcessor::start(
            ThreadAllocation::Static { threads: 1 },
            fifo::<u32>(),
            Arc::new(|_i: u32| {
                std::thread::sleep(Duration::from_millis(5));
            }),
        );
        let gauge = proc.queue().len_gauge();
        for i in 0..20 {
            proc.submit(i, Priority(0));
        }
        // Some backlog should be observable.
        let mut saw_backlog = false;
        for _ in 0..100 {
            if gauge.load(Ordering::Relaxed) > 0 {
                saw_backlog = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(saw_backlog);
        proc.shutdown();
    }
}
