//! HTTP schedule exploration: generated adversarial schedules run against
//! the real COPS-HTTP pipeline, every trace checked against the byte-exact
//! model. Four seed bands × 80 seeds = 320 schedules in the default run.
//!
//! `NSERVER_REPLAY_SEED=n` narrows every band to exactly seed `n` (the
//! counterexample replay path); `NSERVER_CONF_SEED_SPAN=lo..hi` widens
//! them all (the CI extended run).

use conformance::{explore, seed_range, Proto};

fn explore_band(lo: u64, hi: u64) {
    let seeds = seed_range(lo, hi);
    let want = seeds.len();
    let summary = explore(Proto::Http, seeds);
    assert_eq!(summary.runs, want);
    // Schedule generation embeds a fresh fault-plan seed per schedule, so
    // fingerprint collisions across seeds would indicate a generator or
    // fingerprint bug, not chance.
    assert!(
        summary.distinct_schedules * 100 >= want * 95,
        "only {} distinct schedules in {} runs",
        summary.distinct_schedules,
        want
    );
}

#[test]
fn http_band_a() {
    explore_band(0, 80);
}

#[test]
fn http_band_b() {
    explore_band(1000, 1080);
}

#[test]
fn http_band_c() {
    explore_band(2000, 2080);
}

#[test]
fn http_band_d() {
    explore_band(3000, 3080);
}
