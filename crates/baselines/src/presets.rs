//! SPED and MPED architecture emulations.
//!
//! Related work (§III of the paper): the Zeus web server and the Harvest
//! cache use a **single-process event-driven (SPED)** architecture; Pai,
//! Druschel and Zwaenepoel's Flash uses **multi-process event-driven
//! (MPED)** — SPED plus helper processes for blocking I/O. The paper
//! claims "Both of these two architectures can be emulated using the
//! N-Server"; these presets are that claim made concrete as option
//! configurations.

use nserver_core::options::{
    CompletionMode, DispatcherThreads, EventScheduling, FileCacheOption, Mode, OverloadControl,
    ServerOptions, StageDeadlines, ThreadAllocation,
};

/// SPED: one process/thread does everything — a single dispatcher with
/// handlers run inline (O2 = No) and synchronous completions (a blocking
/// operation blocks the whole server, which is exactly SPED's known
/// weakness on disk-bound workloads).
pub fn sped_options() -> ServerOptions {
    ServerOptions {
        dispatcher_threads: DispatcherThreads::Single,
        separate_handler_pool: false,
        encode_decode: true,
        completion_mode: CompletionMode::Synchronous,
        thread_allocation: ThreadAllocation::Static { threads: 1 },
        file_cache: FileCacheOption::No,
        idle_shutdown_ms: None,
        event_scheduling: EventScheduling::No,
        overload_control: OverloadControl::No,
        mode: Mode::Production,
        profiling: false,
        logging: false,
        stage_deadlines: StageDeadlines::NONE,
    }
}

/// MPED (Flash-style): the SPED event loop plus helper processes for
/// blocking I/O — a single inline dispatcher with **asynchronous**
/// completions routed through the Proactor helper pool.
pub fn mped_options(helpers: usize) -> ServerOptions {
    let _ = helpers; // helper-pool size is a builder knob, not an option
    ServerOptions {
        completion_mode: CompletionMode::Asynchronous,
        ..sped_options()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sped_is_single_threaded_inline() {
        let o = sped_options();
        o.validate().unwrap();
        assert!(!o.separate_handler_pool);
        assert_eq!(o.dispatcher_threads.count(), 1);
        assert_eq!(o.completion_mode, CompletionMode::Synchronous);
    }

    #[test]
    fn mped_adds_async_helpers_to_sped() {
        let o = mped_options(4);
        o.validate().unwrap();
        assert!(!o.separate_handler_pool);
        assert_eq!(o.completion_mode, CompletionMode::Asynchronous);
    }
}
