//! Code metrics: classes, methods, and non-comment source statements
//! (NCSS) — the units of the paper's Tables 3 and 4 code-distribution
//! studies.
//!
//! NCSS here counts source lines that are neither blank nor comment-only
//! (line `//` comments and block `/* … */` comments, including Rust doc
//! comments). "Classes" counts `struct`/`enum`/`trait` definitions;
//! "methods" counts `fn` items. The counter is deliberately lexical — it
//! measures generated and handwritten sources the same way the paper's
//! NCSS tool measured Java.

/// Aggregated code metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodeStats {
    /// `struct` + `enum` + `trait` definitions.
    pub classes: usize,
    /// `fn` items (free functions and methods).
    pub methods: usize,
    /// Non-comment, non-blank source lines.
    pub ncss: usize,
}

impl CodeStats {
    /// Sum two measurements.
    pub fn merge(self, other: CodeStats) -> CodeStats {
        CodeStats {
            classes: self.classes + other.classes,
            methods: self.methods + other.methods,
            ncss: self.ncss + other.ncss,
        }
    }
}

/// Strip comments from a line of code that is already known to be outside
/// a block comment, returning (code_part, now_inside_block_comment).
fn strip_comments(line: &str, mut in_block: bool) -> (String, bool) {
    let mut code = String::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    let mut in_str = false;
    let mut str_delim = b'"';
    while i < bytes.len() {
        if in_block {
            if i + 1 < bytes.len() && bytes[i] == b'*' && bytes[i + 1] == b'/' {
                in_block = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if in_str {
            if bytes[i] == b'\\' {
                i += 2;
                continue;
            }
            if bytes[i] == str_delim {
                in_str = false;
            }
            code.push(bytes[i] as char);
            i += 1;
            continue;
        }
        match bytes[i] {
            b'"' => {
                in_str = true;
                str_delim = b'"';
                code.push('"');
                i += 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                in_block = true;
                i += 2;
            }
            c => {
                code.push(c as char);
                i += 1;
            }
        }
    }
    (code, in_block)
}

/// Count metrics over one source text.
pub fn count_source(source: &str) -> CodeStats {
    let mut stats = CodeStats::default();
    let mut in_block = false;
    for line in source.lines() {
        let (code, next_block) = strip_comments(line, in_block);
        in_block = next_block;
        let code = code.trim();
        if code.is_empty() {
            continue;
        }
        stats.ncss += 1;
        // Item counting on the comment-stripped code.
        for pat in ["struct ", "enum ", "trait "] {
            stats.classes += count_item(code, pat);
        }
        stats.methods += count_item(code, "fn ");
    }
    stats
}

/// Count keyword-led item definitions in a code line: the keyword at the
/// start of the line or preceded by a non-identifier character (so
/// `my_struct` doesn't count, but `pub struct Foo` and `pub(crate) fn` do).
fn count_item(code: &str, pat: &str) -> usize {
    let mut count = 0;
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let abs = start + pos;
        let ok_before = abs == 0 || {
            let prev = code.as_bytes()[abs - 1];
            !prev.is_ascii_alphanumeric() && prev != b'_'
        };
        if ok_before {
            count += 1;
        }
        start = abs + pat.len();
    }
    count
}

/// Count metrics over a set of files.
pub fn count_files<'a>(sources: impl IntoIterator<Item = &'a str>) -> CodeStats {
    sources
        .into_iter()
        .map(count_source)
        .fold(CodeStats::default(), CodeStats::merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_and_comment_lines_do_not_count() {
        let src = "\n// comment\n   \nlet x = 1;\n/* block */\n";
        assert_eq!(count_source(src).ncss, 1);
    }

    #[test]
    fn multiline_block_comments() {
        let src = "/*\nall\nof this\n*/\nlet x = 1; /* trailing\nstill comment */ let y = 2;\n";
        let s = count_source(src);
        assert_eq!(s.ncss, 2); // `let x` line and `let y` line
    }

    #[test]
    fn doc_comments_do_not_count() {
        let src = "/// docs\n//! module docs\npub fn f() {}\n";
        let s = count_source(src);
        assert_eq!(s.ncss, 1);
        assert_eq!(s.methods, 1);
    }

    #[test]
    fn classes_and_methods_counted() {
        let src = r#"
pub struct A { x: u32 }
enum B { X, Y }
trait C {
    fn required(&self);
}
impl A {
    pub fn new() -> A { A { x: 0 } }
    fn helper(&self) {}
}
"#;
        let s = count_source(src);
        assert_eq!(s.classes, 3);
        assert_eq!(s.methods, 3);
    }

    #[test]
    fn identifiers_containing_keywords_do_not_count() {
        let src = "let my_struct = restructure(defn);\nlet info = 1;\n";
        let s = count_source(src);
        assert_eq!(s.classes, 0);
        assert_eq!(s.methods, 0);
        assert_eq!(s.ncss, 2);
    }

    #[test]
    fn string_literals_hide_comment_markers() {
        let src = "let s = \"// not a comment\";\nlet t = \"/* nope */\";\n";
        let s = count_source(src);
        assert_eq!(s.ncss, 2);
    }

    #[test]
    fn ncss_invariant_under_comment_insertion() {
        let base = "pub fn f() {\n    let x = 1;\n    x + 1\n}\n";
        let commented =
            "// header\npub fn f() {\n    // explain\n    let x = 1;\n    /* why */\n    x + 1\n}\n";
        assert_eq!(count_source(base), count_source(commented));
    }

    #[test]
    fn merge_and_count_files() {
        let a = "struct A;\nfn f() {}\n";
        let b = "struct B;\n";
        let merged = count_files([a, b]);
        assert_eq!(merged.classes, 2);
        assert_eq!(merged.methods, 1);
        assert_eq!(merged.ncss, 3);
    }
}
