//! TCP connection-establishment behaviour relevant to the experiments.
//!
//! The paper attributes Apache's extreme unfairness at 1024 clients to "the
//! exponential backoff scheme of the TCP protocol": when the accept queue
//! is full, client SYN packets are dropped silently and the client
//! retransmits after exponentially growing timeouts, capped — under Solaris
//! — at one minute. This module models exactly that: a bounded listen
//! queue and the retransmission schedule.

use std::collections::VecDeque;

use crate::time::SimTime;

/// Exponential SYN retransmission schedule: `initial`, 2×, 4×, … capped at
/// `cap` (Solaris caps at 60 s). Call [`SynRetransmit::next_delay`] each
/// time a SYN goes unanswered.
#[derive(Debug, Clone)]
pub struct SynRetransmit {
    next: SimTime,
    cap: SimTime,
    attempts: u32,
    total_waited: SimTime,
}

impl SynRetransmit {
    /// Schedule with a given initial timeout and cap.
    pub fn new(initial: SimTime, cap: SimTime) -> Self {
        assert!(initial > SimTime::ZERO);
        Self {
            next: initial,
            cap,
            attempts: 0,
            total_waited: SimTime::ZERO,
        }
    }

    /// Solaris-like defaults the paper describes: start at 3 s (the classic
    /// initial connect RTO), double, cap at 60 s.
    pub fn solaris() -> Self {
        Self::new(SimTime::from_secs(3), SimTime::from_secs(60))
    }

    /// The delay before the next retransmission attempt; advances the
    /// schedule.
    pub fn next_delay(&mut self) -> SimTime {
        let d = self.next;
        self.attempts += 1;
        self.total_waited += d;
        self.next = SimTime::from_micros((self.next.as_micros() * 2).min(self.cap.as_micros()));
        d
    }

    /// Number of retransmissions so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Total time spent waiting across all attempts.
    pub fn total_waited(&self) -> SimTime {
        self.total_waited
    }

    /// Reset after a successful connection.
    pub fn reset(&mut self, initial: SimTime) {
        self.next = initial;
        self.attempts = 0;
        self.total_waited = SimTime::ZERO;
    }
}

/// A bounded listen (accept) queue. When full, new connection attempts are
/// dropped silently — the client never learns; it just retransmits later.
#[derive(Debug, Clone)]
pub struct ListenQueue<T> {
    backlog: usize,
    queue: VecDeque<T>,
    accepted: u64,
    dropped: u64,
}

impl<T> ListenQueue<T> {
    /// Create a listen queue with the given backlog limit.
    pub fn new(backlog: usize) -> Self {
        Self {
            backlog,
            queue: VecDeque::new(),
            accepted: 0,
            dropped: 0,
        }
    }

    /// Offer a pending connection. Returns `false` (and counts a drop) when
    /// the backlog is full.
    pub fn offer(&mut self, conn: T) -> bool {
        if self.queue.len() >= self.backlog {
            self.dropped += 1;
            false
        } else {
            self.queue.push_back(conn);
            self.accepted += 1;
            true
        }
    }

    /// Accept the oldest pending connection, if any.
    pub fn accept(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Pending connections not yet accepted.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no connections are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// SYNs enqueued successfully over the lifetime.
    pub fn enqueued(&self) -> u64 {
        self.accepted
    }

    /// SYNs dropped because the backlog was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let mut s = SynRetransmit::new(SimTime::from_secs(1), SimTime::from_secs(60));
        let delays: Vec<u64> = (0..8)
            .map(|_| s.next_delay().as_micros() / 1_000_000)
            .collect();
        assert_eq!(delays, vec![1, 2, 4, 8, 16, 32, 60, 60]);
        assert_eq!(s.attempts(), 8);
        assert_eq!(
            s.total_waited(),
            SimTime::from_secs(1 + 2 + 4 + 8 + 16 + 32 + 60 + 60)
        );
    }

    #[test]
    fn solaris_schedule_caps_at_one_minute() {
        let mut s = SynRetransmit::solaris();
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            last = s.next_delay();
        }
        assert_eq!(last, SimTime::from_secs(60));
    }

    #[test]
    fn reset_restores_schedule() {
        let mut s = SynRetransmit::new(SimTime::from_secs(1), SimTime::from_secs(60));
        s.next_delay();
        s.next_delay();
        s.reset(SimTime::from_secs(1));
        assert_eq!(s.next_delay(), SimTime::from_secs(1));
        assert_eq!(s.attempts(), 1);
    }

    #[test]
    fn listen_queue_drops_when_full() {
        let mut q = ListenQueue::new(2);
        assert!(q.offer(1));
        assert!(q.offer(2));
        assert!(!q.offer(3));
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.enqueued(), 2);
        assert_eq!(q.accept(), Some(1));
        assert!(q.offer(3)); // space freed
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn listen_queue_is_fifo() {
        let mut q = ListenQueue::new(10);
        for i in 0..5 {
            q.offer(i);
        }
        for i in 0..5 {
            assert_eq!(q.accept(), Some(i));
        }
        assert_eq!(q.accept(), None);
        assert!(q.is_empty());
    }
}
