//! Relay/cluster differential: the same sanitized schedule driven over
//! real TCP against a direct backend and against the cluster front end
//! must produce client-observably equivalent traces — including runs
//! where a dead backend forces the relay's retry-rotation.

use conformance::{generate, relay_differential, seed_range, Proto};

/// True when the script pipelines request bytes past a close-triggering
/// `Connection: close` request — the header terminator of the closing
/// request is followed by more bytes.
fn pipelines_past_close(bytes: &[u8]) -> bool {
    let find = |hay: &[u8], needle: &[u8]| hay.windows(needle.len()).position(|w| w == needle);
    let Some(i) = find(bytes, b"Connection: close") else {
        return false;
    };
    let Some(j) = find(&bytes[i..], b"\r\n\r\n") else {
        return false;
    };
    bytes.len() > i + j + 4
}

#[test]
fn http_relay_is_trace_equivalent_to_direct() {
    for seed in seed_range(40000, 40040) {
        let rep = relay_differential(Proto::Http, seed, false);
        assert!(rep.equivalent(), "seed {seed}: {:#?}", rep.divergences);
        assert_eq!(rep.backend_failures, 0);
    }
}

#[test]
fn ftp_relay_is_trace_equivalent_to_direct() {
    for seed in seed_range(41000, 41040) {
        let rep = relay_differential(Proto::Ftp, seed, false);
        assert!(rep.equivalent(), "seed {seed}: {:#?}", rep.divergences);
        assert_eq!(rep.backend_failures, 0);
    }
}

/// The un-truncated differential: schedules that pipeline requests past
/// a `Connection: close` now reach both arms intact (the sanitizer used
/// to cut them at the close trigger). The server's lingering close must
/// deliver the final response to the client in the direct arm and
/// through the relay alike — trace equivalence over the full pipeline,
/// tail included, is the delivery guarantee under test.
#[test]
fn http_relay_preserves_pipelining_past_close() {
    let mut exercised = 0;
    for seed in seed_range(40000, 40120) {
        let sched = generate(Proto::Http, seed);
        if !sched.conns.iter().any(|c| pipelines_past_close(&c.bytes())) {
            continue;
        }
        let rep = relay_differential(Proto::Http, seed, false);
        assert!(rep.equivalent(), "seed {seed}: {:#?}", rep.divergences);
        assert_eq!(rep.backend_failures, 0);
        exercised += 1;
        if exercised == 6 {
            break;
        }
    }
    assert!(
        exercised >= 3,
        "seed band produced only {exercised} pipelined-past-close schedules — \
         the generator stopped exercising the lingering-close path"
    );
}

#[test]
fn http_relay_failover_preserves_equivalence() {
    for seed in seed_range(42000, 42015) {
        let rep = relay_differential(Proto::Http, seed, true);
        assert!(rep.equivalent(), "seed {seed}: {:#?}", rep.divergences);
        assert!(
            rep.dial_retries >= 1,
            "seed {seed}: dead-first rotation must be retried"
        );
        assert_eq!(
            rep.backend_failures, 0,
            "seed {seed}: retry must rescue every client"
        );
    }
}

#[test]
fn ftp_relay_failover_preserves_equivalence() {
    for seed in seed_range(43000, 43015) {
        let rep = relay_differential(Proto::Ftp, seed, true);
        assert!(rep.equivalent(), "seed {seed}: {:#?}", rep.divergences);
        assert!(
            rep.dial_retries >= 1,
            "seed {seed}: failover never happened"
        );
        assert_eq!(rep.backend_failures, 0);
    }
}
