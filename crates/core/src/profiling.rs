//! Performance profiling counters (template option O11).
//!
//! The paper: "Important statistical information of the server application
//! can be automatically gathered … the number of connections accepted, the
//! number of bytes read, the number of bytes sent, the file cache hit
//! rate, etc." All counters are relaxed atomics — they are observability,
//! not synchronization.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared server statistics registry.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted over the lifetime.
    pub connections_accepted: AtomicU64,
    /// Connections closed (any reason).
    pub connections_closed: AtomicU64,
    /// Connections closed by the O7 idle sweep.
    pub connections_idle_closed: AtomicU64,
    /// Raw bytes read from peers.
    pub bytes_read: AtomicU64,
    /// Raw bytes written to peers.
    pub bytes_sent: AtomicU64,
    /// Requests fully decoded.
    pub requests_decoded: AtomicU64,
    /// Responses sent.
    pub responses_sent: AtomicU64,
    /// Events dispatched through the Event Processor (or inline).
    pub events_dispatched: AtomicU64,
    /// Times a dispatcher returned from its poller wait (readiness,
    /// waker, or timeout). An idle server barely moves this counter —
    /// that property is what distinguishes demultiplexed dispatch from
    /// the scan-and-sleep loop it replaced.
    pub dispatcher_wakeups: AtomicU64,
    /// Blocking operations executed via the Proactor helper pool.
    pub blocking_ops: AtomicU64,
    /// Accept attempts refused by the overload controller.
    pub accepts_deferred: AtomicU64,
    /// Protocol errors that closed a connection.
    pub protocol_errors: AtomicU64,
    /// Connections torn down by an I/O error (peer reset, broken pipe).
    pub connections_reset: AtomicU64,
    /// Connections reaped by a per-stage deadline (header-read or
    /// write-drain) — slow-loris peers and stalled readers.
    pub connections_timed_out: AtomicU64,
    /// Accept attempts that failed with an error (not overload gating).
    pub accept_errors: AtomicU64,
    /// Application-hook panics caught by the framework (the request fails
    /// and its connection closes; the worker pool survives).
    pub handler_panics: AtomicU64,
    /// Server-initiated closes that entered the lingering-close state:
    /// outbox drained, FIN sent, read side held open until peer FIN.
    pub connections_lingered: AtomicU64,
    /// Lingering closes reaped by the linger deadline instead of a peer
    /// FIN (the peer never acknowledged the close).
    pub linger_reaped: AtomicU64,
}

impl ServerStats {
    /// New shared registry.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            connections_idle_closed: self.connections_idle_closed.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            requests_decoded: self.requests_decoded.load(Ordering::Relaxed),
            responses_sent: self.responses_sent.load(Ordering::Relaxed),
            events_dispatched: self.events_dispatched.load(Ordering::Relaxed),
            dispatcher_wakeups: self.dispatcher_wakeups.load(Ordering::Relaxed),
            blocking_ops: self.blocking_ops.load(Ordering::Relaxed),
            accepts_deferred: self.accepts_deferred.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            connections_reset: self.connections_reset.load(Ordering::Relaxed),
            connections_timed_out: self.connections_timed_out.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            handler_panics: self.handler_panics.load(Ordering::Relaxed),
            connections_lingered: self.connections_lingered.load(Ordering::Relaxed),
            linger_reaped: self.linger_reaped.load(Ordering::Relaxed),
        }
    }

    /// Convenience increment.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Convenience add.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// A consistent-enough point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct StatsSnapshot {
    pub connections_accepted: u64,
    pub connections_closed: u64,
    pub connections_idle_closed: u64,
    pub bytes_read: u64,
    pub bytes_sent: u64,
    pub requests_decoded: u64,
    pub responses_sent: u64,
    pub events_dispatched: u64,
    pub dispatcher_wakeups: u64,
    pub blocking_ops: u64,
    pub accepts_deferred: u64,
    pub protocol_errors: u64,
    pub connections_reset: u64,
    pub connections_timed_out: u64,
    pub accept_errors: u64,
    pub handler_panics: u64,
    pub connections_lingered: u64,
    pub linger_reaped: u64,
}

impl StatsSnapshot {
    /// Currently open connections implied by the counters.
    pub fn open_connections(&self) -> u64 {
        self.connections_accepted
            .saturating_sub(self.connections_closed)
    }

    /// Every counter as a `(name, value)` row — the single enumeration
    /// behind both [`render`](Self::render) and the Prometheus exposition
    /// in [`crate::metrics`].
    pub fn rows(&self) -> [(&'static str, u64); 18] {
        [
            ("connections accepted", self.connections_accepted),
            ("connections closed", self.connections_closed),
            ("idle connections closed", self.connections_idle_closed),
            ("bytes read", self.bytes_read),
            ("bytes sent", self.bytes_sent),
            ("requests decoded", self.requests_decoded),
            ("responses sent", self.responses_sent),
            ("events dispatched", self.events_dispatched),
            ("dispatcher wakeups", self.dispatcher_wakeups),
            ("blocking operations", self.blocking_ops),
            ("accepts deferred", self.accepts_deferred),
            ("protocol errors", self.protocol_errors),
            ("connections reset", self.connections_reset),
            ("connections timed out", self.connections_timed_out),
            ("accept errors", self.accept_errors),
            ("handler panics", self.handler_panics),
            ("connections lingered", self.connections_lingered),
            ("linger reaped", self.linger_reaped),
        ]
    }

    /// Render as aligned `name value` lines (the profiling report).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.rows() {
            out.push_str(&format!("{name:<26} {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn snapshot_reflects_counters() {
        let s = ServerStats::default();
        ServerStats::bump(&s.connections_accepted);
        ServerStats::add(&s.bytes_read, 100);
        let snap = s.snapshot();
        assert_eq!(snap.connections_accepted, 1);
        assert_eq!(snap.bytes_read, 100);
        assert_eq!(snap.open_connections(), 1);
    }

    #[test]
    fn open_connections_saturates() {
        let snap = StatsSnapshot {
            connections_accepted: 1,
            connections_closed: 5,
            ..Default::default()
        };
        assert_eq!(snap.open_connections(), 0);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let s = ServerStats::new_shared();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    ServerStats::bump(&s.events_dispatched);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().events_dispatched, 40_000);
    }

    #[test]
    fn render_includes_every_counter() {
        let snap = StatsSnapshot::default();
        let text = snap.render();
        assert_eq!(text.lines().count(), 18);
        assert!(text.contains("bytes sent"));
        assert!(text.contains("accepts deferred"));
        assert!(text.contains("dispatcher wakeups"));
        assert!(text.contains("connections reset"));
        assert!(text.contains("connections timed out"));
        assert!(text.contains("handler panics"));
        assert!(text.contains("connections lingered"));
        assert!(text.contains("linger reaped"));
    }
}
