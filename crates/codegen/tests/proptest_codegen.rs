//! Property-based tests of the code generator: for *arbitrary valid*
//! option configurations, generation succeeds, emits structurally sound
//! Rust, and the emitted module set agrees exactly with the Table 2
//! gating facts.

use nserver_cache::PolicyKind;
use nserver_codegen::{count_source, generate, registry};
use nserver_core::options::{
    CompletionMode, DispatcherThreads, EventScheduling, FileCacheOption, Mode, OverloadControl,
    ServerOptions, StageDeadlines, ThreadAllocation,
};
use proptest::prelude::*;

fn policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Lru),
        Just(PolicyKind::Lfu),
        Just(PolicyKind::LruMin),
        (1u32..1000).prop_map(|p| PolicyKind::LruThreshold {
            max_size_permille: p
        }),
        Just(PolicyKind::HyperG),
    ]
}

prop_compose! {
    fn valid_options()(
        multi in prop_oneof![Just(None), (1u8..4).prop_map(Some)],
        pool in any::<bool>(),
        encode_decode in any::<bool>(),
        async_completion in any::<bool>(),
        dynamic in any::<bool>(),
        threads in 1usize..8,
        cache in prop_oneof![
            Just(None),
            (policy(), 1u64..(1 << 24)).prop_map(Some)
        ],
        idle in prop_oneof![Just(None), (1u64..100_000).prop_map(Some)],
        quotas in prop_oneof![
            Just(None),
            proptest::collection::vec(1u32..16, 1..4).prop_map(Some)
        ],
        overload in 0u8..3,
        limit in 1usize..2000,
        low in 0usize..10,
        span in 1usize..30,
        debug in any::<bool>(),
        profiling in any::<bool>(),
        logging in any::<bool>(),
        header_deadline in prop_oneof![Just(None), (1u64..10_000).prop_map(Some)],
        drain_deadline in prop_oneof![Just(None), (1u64..10_000).prop_map(Some)],
    ) -> ServerOptions {
        let separate = pool || quotas.is_some() || overload == 2 || dynamic;
        ServerOptions {
            dispatcher_threads: match multi {
                None => DispatcherThreads::Single,
                Some(n) => DispatcherThreads::Multi(n),
            },
            separate_handler_pool: separate,
            encode_decode,
            completion_mode: if async_completion {
                CompletionMode::Asynchronous
            } else {
                CompletionMode::Synchronous
            },
            thread_allocation: if dynamic {
                ThreadAllocation::Dynamic {
                    min: threads,
                    max: threads + 4,
                    idle_keepalive_ms: 50,
                }
            } else {
                ThreadAllocation::Static { threads }
            },
            file_cache: match cache {
                None => FileCacheOption::No,
                Some((policy, capacity_bytes)) => FileCacheOption::Yes {
                    policy,
                    capacity_bytes,
                },
            },
            idle_shutdown_ms: idle,
            event_scheduling: match quotas {
                None => EventScheduling::No,
                Some(q) => EventScheduling::Yes { quotas: q },
            },
            overload_control: match overload {
                0 => OverloadControl::No,
                1 => OverloadControl::MaxConnections { limit },
                _ => OverloadControl::Watermark {
                    high: low + span,
                    low,
                },
            },
            mode: if debug { Mode::Debug } else { Mode::Production },
            profiling,
            logging,
            stage_deadlines: StageDeadlines {
                header_read_ms: header_deadline,
                write_drain_ms: drain_deadline,
            },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any valid configuration generates a framework whose Rust files
    /// have balanced braces/parens and non-trivial content.
    #[test]
    fn generation_is_structurally_sound(opts in valid_options()) {
        prop_assert!(opts.validate().is_ok());
        let fw = generate("prop", &opts, "../crates");
        for f in &fw.files {
            if !f.path.ends_with(".rs") {
                continue;
            }
            let opens = f.content.matches('{').count();
            let closes = f.content.matches('}').count();
            prop_assert_eq!(opens, closes, "unbalanced braces in {}", &f.path);
            let po = f.content.matches('(').count();
            let pc = f.content.matches(')').count();
            prop_assert_eq!(po, pc, "unbalanced parens in {}", &f.path);
            let stats = count_source(&f.content);
            prop_assert!(stats.ncss > 0, "empty module {}", &f.path);
        }
    }

    /// The emitted module set matches the registry's gating exactly, and
    /// `framework/mod.rs` declares precisely the emitted modules.
    #[test]
    fn emitted_modules_match_gating(opts in valid_options()) {
        let fw = generate("prop", &opts, "../crates");
        let mod_rs = &fw.file("src/framework/mod.rs").unwrap().content;
        for spec in registry() {
            let path = format!("src/framework/{}.rs", spec.module);
            let decl = format!("pub mod {};", spec.module);
            if spec.exists(&opts) {
                prop_assert!(fw.file(&path).is_some(), "missing {}", spec.name);
                prop_assert!(mod_rs.contains(&decl), "undeclared {}", spec.name);
            } else {
                prop_assert!(fw.file(&path).is_none(), "phantom {}", spec.name);
                prop_assert!(!mod_rs.contains(&decl), "ghost decl {}", spec.name);
            }
        }
    }

    /// Generation is a pure function of the options.
    #[test]
    fn generation_is_deterministic(opts in valid_options()) {
        let a = generate("prop", &opts, "../crates");
        let b = generate("prop", &opts, "../crates");
        prop_assert_eq!(a.files.len(), b.files.len());
        for (fa, fb) in a.files.iter().zip(&b.files) {
            prop_assert_eq!(&fa.path, &fb.path);
            prop_assert_eq!(&fa.content, &fb.content);
        }
    }

    /// The reactor module always embeds the exact option literal, so the
    /// generated server is self-describing.
    #[test]
    fn reactor_embeds_configuration(opts in valid_options()) {
        let fw = generate("prop", &opts, "../crates");
        let reactor = &fw.file("src/framework/reactor.rs").unwrap().content;
        prop_assert!(reactor.contains("pub fn options() -> ServerOptions"));
        if let EventScheduling::Yes { quotas } = &opts.event_scheduling {
            let lit = format!("quotas: vec!{quotas:?}");
            prop_assert!(reactor.contains(&lit), "missing {}", lit);
        }
        if let OverloadControl::Watermark { high, low } = opts.overload_control {
            let lit = format!("high: {high}, low: {low}");
            prop_assert!(reactor.contains(&lit), "missing {}", lit);
        }
    }
}
