//! # nserver-ftp
//!
//! The FTP protocol library and the **COPS-FTP** server logic.
//!
//! The paper's Table 3 experiment transformed the (thread-per-connection)
//! Apache FTPServer into an event-driven server by *reusing* 8,141 NCSS of
//! protocol-agnostic library code and *adding* a small event-driven
//! adaptation layer — demonstrating "how the N-Server can make extensive
//! use of existing code by adapting it to a new server architecture."
//!
//! This crate mirrors that structure explicitly:
//!
//! * [`legacy`] — the reusable "existing library" half: the virtual
//!   filesystem, the user registry, and reply formatting. Nothing in here
//!   knows about events or the N-Server.
//! * [`commands`] / [`session`] — protocol parsing and the per-connection
//!   session state machine.
//! * [`codec`] / [`service`] — the event-driven adaptation layer: the thin
//!   hooks that plug the legacy library into the N-Server pipeline.
//!   COPS-FTP runs with **synchronous** completions (Table 1: O4 =
//!   Synchronous), so data transfers block the worker thread in place.
//! * [`preset`] — the COPS-FTP column of Table 1.

pub mod codec;
pub mod commands;
pub mod legacy;
pub mod observe;
pub mod preset;
pub mod service;
pub mod session;

pub use codec::FtpCodec;
pub use codec::FtpRequest;
pub use commands::Command;
pub use legacy::{replies, users::UserRegistry, vfs::Vfs};
pub use observe::{
    extract_commands, split_replies, CommandStream, CommandStreamEnd, ReplyBlock, ReplyStream,
    ReplyStreamEnd,
};
pub use preset::cops_ftp_options;
pub use service::FtpService;
pub use session::{Session, SessionState};
