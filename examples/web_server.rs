//! COPS-HTTP — the paper's flagship generated application: a static web
//! server with the full Table 1 configuration (asynchronous completions
//! through the Proactor helper pool, a 20 MB LRU file cache, a static
//! worker pool).
//!
//! The demo builds a small SpecWeb99-style site in memory, serves it over
//! loopback TCP, fetches a handful of pages twice (so the second pass
//! hits the cache), scrapes the `/server-status` and `/debug/snapshot`
//! observability routes, and prints the profiling counters and cache
//! hit rate.
//!
//! Run: `cargo run -p nserver-examples --bin web_server` for the
//! self-driving demo, or with `--serve` to keep serving until killed
//! (then `curl http://ADDR/server-status` to watch the live counters,
//! or point `nserver_top` at the address for the dashboard view).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use nserver_cache::{FileCache, PolicyKind, SharedFileCache};
use nserver_core::diag::{DiagHub, WatchdogConfig};
use nserver_core::metrics::MetricsRegistry;
use nserver_core::prelude::*;
use nserver_core::profiling::ServerStats;
use nserver_core::server::ServerBuilder;
use nserver_http::preset::COPS_HTTP_CACHE_BYTES;
use nserver_http::service::cache_stats_provider;
use nserver_http::{cops_http_options, HttpCodec, MemStore, RoutedService, StaticFileService};
use nserver_specweb::FileSet;

fn fetch(client: &mut TcpStream, path: &str) -> (u16, usize) {
    let req = format!("GET {path} HTTP/1.1\r\nHost: demo\r\n\r\n");
    client.write_all(req.as_bytes()).unwrap();
    let mut head = Vec::new();
    let mut buf = [0u8; 4096];
    // Read until we have the full head, then the declared body length.
    let (status, body_len, mut body_got);
    loop {
        let n = client.read(&mut buf).unwrap();
        assert!(n > 0, "server closed early");
        head.extend_from_slice(&buf[..n]);
        if let Some(pos) = head.windows(4).position(|w| w == b"\r\n\r\n") {
            let text = String::from_utf8_lossy(&head[..pos]).to_string();
            let code: u16 = text.split(' ').nth(1).unwrap().parse().unwrap();
            let len: usize = text
                .lines()
                .find(|l| l.to_ascii_lowercase().starts_with("content-length"))
                .and_then(|l| l.split(':').nth(1))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0);
            body_got = head.len() - (pos + 4);
            status = code;
            body_len = len;
            break;
        }
    }
    while body_got < body_len {
        let n = client.read(&mut buf).unwrap();
        assert!(n > 0, "server closed mid-body");
        body_got += n;
    }
    (status, body_len)
}

/// Fetch `path` on a fresh connection and return the response body.
fn scrape(addr: &str, path: &str) -> String {
    let mut client = TcpStream::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let req = format!("GET {path} HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n");
    client.write_all(req.as_bytes()).unwrap();
    let mut raw = Vec::new();
    client.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    body.to_string()
}

fn main() {
    // A one-directory SpecWeb99 site (36 files, ~5 MB), held in memory.
    let fileset = FileSet::with_dirs(1);
    let mut store = MemStore::new();
    for spec in fileset.files() {
        store.insert(spec.path(), fileset.synth_content(spec));
    }
    println!(
        "site: {} files, {} bytes",
        fileset.files().len(),
        fileset.total_bytes()
    );

    // The template options of Table 1's COPS-HTTP column with O11 on;
    // the file cache object is the O6 machinery with LRU enforced.
    let options = ServerOptions {
        profiling: true,
        ..cops_http_options()
    };
    let cache = SharedFileCache::new(FileCache::new(COPS_HTTP_CACHE_BYTES, PolicyKind::Lru));
    // One diagnostics hub shared between the server (which wires the
    // worker table, queue gauges and tracer into it) and the two
    // observability routes, so both pages reflect the live counters.
    let hub = DiagHub::new(ServerStats::new_shared(), MetricsRegistry::enabled());
    hub.set_cache_provider(cache_stats_provider(cache.clone()));
    let service = RoutedService::new(StaticFileService::new(store, Some(cache.clone())))
        .server_status_diag(hub.clone())
        .debug_snapshot(hub.clone());
    let server = ServerBuilder::new(options, HttpCodec::new(), service)
        .expect("valid options")
        .helper_threads(4)
        .diag(hub)
        .watchdog(WatchdogConfig::default())
        .serve(TcpListenerNb::bind("127.0.0.1:0").expect("bind"));
    let addr = server.local_label().to_string();
    println!("COPS-HTTP listening on {addr}");

    if std::env::args().any(|a| a == "--serve") {
        println!("serving until killed (--serve mode)");
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    let mut client = TcpStream::connect(&addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    let paths: Vec<String> = fileset.files().iter().take(8).map(|f| f.path()).collect();
    for round in 0..2 {
        for path in &paths {
            let (status, len) = fetch(&mut client, path);
            assert_eq!(status, 200);
            if round == 0 {
                println!("GET {path} -> {status} ({len} bytes)");
            }
        }
    }
    let (status, _) = fetch(&mut client, "/no/such/file");
    println!("GET /no/such/file -> {status}");
    assert_eq!(status, 404);

    // Scrape the observability routes: Prometheus-text counters plus the
    // O11 latency histograms, then a flight-recorder snapshot, straight
    // off the live server.
    let page = scrape(&addr, "/server-status");
    let quantiles: Vec<&str> = page
        .lines()
        .filter(|l| l.contains("quantile") && !l.starts_with('#'))
        .collect();
    println!("\n/server-status latency quantiles:");
    for line in &quantiles {
        println!("  {line}");
    }
    assert!(page.contains("nserver_connections_accepted"));
    assert!(page.contains("nserver_stage_latency_us_count{stage=\"handle\"}"));
    assert!(page.contains("nserver_cache_hits"));
    assert_eq!(
        quantiles.len(),
        12,
        "p50+p99 for each of the five stages plus queue wait"
    );

    let snap = scrape(&addr, "/debug/snapshot");
    assert!(snap.contains("\"reason\":\"http_on_demand\""));
    assert!(snap.contains("\"workers\":["));
    println!("/debug/snapshot: {} bytes of JSON", snap.len());

    let stats = server.stats();
    println!(
        "\nprofiling: {} requests, {} responses, {} bytes sent, {} blocking ops",
        stats.requests_decoded, stats.responses_sent, stats.bytes_sent, stats.blocking_ops
    );
    let cs = cache.stats();
    println!(
        "file cache: {} hits / {} misses (hit rate {:.0}%)",
        cs.hits,
        cs.misses,
        cs.hit_rate() * 100.0
    );
    assert!(cs.hits >= paths.len() as u64, "second pass must hit");
    server.shutdown();
    println!("web server OK");
}
