//! COPS-FTP — the paper's second generated application: an event-driven
//! FTP server built by adapting a reusable protocol-agnostic library
//! (virtual filesystem + user registry) to the N-Server architecture.
//!
//! Configuration per Table 1: synchronous completions (a data transfer
//! blocks its worker in place) and a dynamic worker pool that the
//! Processor Controller grows under load.
//!
//! The demo runs a full client session over loopback TCP: login, CWD,
//! passive-mode LIST and RETR, a `STAT` server report (live counters
//! and per-stage latency quantiles over the control connection), then
//! QUIT.
//!
//! Run: `cargo run -p nserver-examples --bin ftp_server`

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use nserver_core::metrics::MetricsRegistry;
use nserver_core::prelude::*;
use nserver_core::profiling::ServerStats;
use nserver_ftp::{cops_ftp_options, FtpCodec, FtpService, UserRegistry, Vfs};

struct Ctl {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Ctl {
    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\r\n").unwrap();
    }

    fn reply(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        print!("  <- {line}");
        line
    }
}

fn pasv_port(reply: &str) -> u16 {
    let inner = reply.split('(').nth(1).unwrap().split(')').next().unwrap();
    let nums: Vec<u16> = inner
        .split(',')
        .map(|n| n.trim().parse().unwrap())
        .collect();
    (nums[4] << 8) | nums[5]
}

fn main() {
    // The reusable "legacy library" half: filesystem + accounts.
    let vfs = Arc::new(Vfs::new());
    vfs.mkdir("/pub");
    vfs.write("/pub/readme.txt", b"welcome to COPS-FTP\n".to_vec());
    vfs.write("/pub/data.bin", vec![0xC0; 2048]);
    let users = Arc::new(UserRegistry::new().with_anonymous());
    users.add_user("alice", "secret");

    // O11 on, with the registries shared between the server and the
    // service so the STAT report reflects the live counters.
    let options = ServerOptions {
        profiling: true,
        ..cops_ftp_options()
    };
    let stats = ServerStats::new_shared();
    let metrics = MetricsRegistry::enabled();
    let service = FtpService::new(vfs, users);
    service.attach_stats(stats.clone(), metrics.clone());
    let server = ServerBuilder::new(options, FtpCodec, service)
        .expect("valid options")
        .stats(stats)
        .metrics(metrics)
        .serve(TcpListenerNb::bind("127.0.0.1:0").expect("bind"));
    let addr = server.local_label().to_string();
    println!("COPS-FTP listening on {addr}");

    let stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut ctl = Ctl {
        reader: BufReader::new(stream.try_clone().unwrap()),
        writer: stream,
    };

    assert!(ctl.reply().starts_with("220"), "greeting");
    ctl.send("USER alice");
    assert!(ctl.reply().starts_with("331"));
    ctl.send("PASS secret");
    assert!(ctl.reply().starts_with("230"));
    ctl.send("SYST");
    assert!(ctl.reply().starts_with("215"));
    ctl.send("CWD /pub");
    assert!(ctl.reply().starts_with("250"));
    ctl.send("PWD");
    assert!(ctl.reply().contains("/pub"));

    // Passive-mode LIST.
    ctl.send("PASV");
    let port = pasv_port(&ctl.reply());
    let mut data = TcpStream::connect(("127.0.0.1", port)).unwrap();
    ctl.send("LIST");
    let mut listing = String::new();
    data.read_to_string(&mut listing).unwrap();
    println!("  [data] {}", listing.trim_end().replace("\r\n", ", "));
    assert!(ctl.reply().starts_with("150"));
    assert!(ctl.reply().starts_with("226"));
    assert!(listing.contains("readme.txt"));

    // Passive-mode RETR.
    ctl.send("PASV");
    let port = pasv_port(&ctl.reply());
    let mut data = TcpStream::connect(("127.0.0.1", port)).unwrap();
    ctl.send("RETR readme.txt");
    let mut content = Vec::new();
    data.read_to_end(&mut content).unwrap();
    println!("  [data] {} bytes of readme.txt", content.len());
    assert!(ctl.reply().starts_with("150"));
    assert!(ctl.reply().starts_with("226"));
    assert_eq!(content, b"welcome to COPS-FTP\n");

    // Server status over the control connection: a multi-line 211 reply
    // with live counters and the O11 per-stage latency quantiles.
    ctl.send("STAT");
    let mut report = String::new();
    loop {
        let line = ctl.reply();
        let done = line.starts_with("211 ");
        report.push_str(&line);
        if done {
            break;
        }
    }
    assert!(report.starts_with("211-"), "multi-line status reply");
    assert!(report.contains("connections accepted: 1"));
    assert!(report.contains("decode: count="));
    assert!(report.contains("p99="));

    ctl.send("QUIT");
    assert!(ctl.reply().starts_with("221"));

    let stats = server.stats();
    println!(
        "\nprofiling: {} commands handled, {} blocking transfers",
        stats.requests_decoded, stats.blocking_ops
    );
    server.shutdown();
    println!("ftp server OK");
}
