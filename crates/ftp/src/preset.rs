//! The COPS-FTP column of the paper's Table 1.

use nserver_core::options::{
    CompletionMode, DispatcherThreads, EventScheduling, FileCacheOption, Mode, OverloadControl,
    ServerOptions, StageDeadlines, ThreadAllocation,
};

/// Table 1's COPS-FTP column: one dispatcher, separate pool,
/// encode/decode, **synchronous** completions, **dynamic** thread
/// allocation, no cache, **idle shutdown on**, no scheduling, no overload
/// control, production mode, no profiling, no logging.
pub fn cops_ftp_options() -> ServerOptions {
    ServerOptions {
        dispatcher_threads: DispatcherThreads::Single,
        separate_handler_pool: true,
        encode_decode: true,
        completion_mode: CompletionMode::Synchronous,
        thread_allocation: ThreadAllocation::Dynamic {
            min: 2,
            max: 16,
            idle_keepalive_ms: 5_000,
        },
        file_cache: FileCacheOption::No,
        idle_shutdown_ms: Some(300_000), // five minutes of control-conn idleness
        event_scheduling: EventScheduling::No,
        overload_control: OverloadControl::No,
        mode: Mode::Production,
        profiling: false,
        logging: false,
        stage_deadlines: StageDeadlines::NONE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_matches_table1_column() {
        let o = cops_ftp_options();
        o.validate().unwrap();
        let rows = o.describe();
        let value = |prefix: &str| {
            rows.iter()
                .find(|(name, _)| name.starts_with(prefix))
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(value("O1"), "1");
        assert_eq!(value("O2"), "Yes");
        assert_eq!(value("O3"), "Yes");
        assert_eq!(value("O4"), "Synchronous");
        assert_eq!(value("O5"), "Dynamic");
        assert_eq!(value("O6"), "No");
        assert_eq!(value("O7"), "Yes");
        assert_eq!(value("O8"), "No");
        assert_eq!(value("O9"), "No");
        assert_eq!(value("O10"), "Production");
        assert_eq!(value("O11"), "No");
        assert_eq!(value("O12"), "No");
    }
}
