//! # nserver-core
//!
//! The **N-Server pattern template** runtime: a Rust implementation of the
//! generative design pattern for network server applications introduced in
//! *"Using Generative Design Patterns to Develop Network Server
//! Applications"* (Guo, Schaeffer, Szafron, Earl — IPPS 2005).
//!
//! The N-Server synthesizes four concurrent/networked design patterns:
//!
//! * **Reactor** — event demultiplexing and dispatching ([`reactor`]),
//!   extended with multiple event sources and an Event Processor so it
//!   scales across CPUs;
//! * **Proactor** — emulation of non-blocking operations via a helper
//!   thread pool ([`proactor`]);
//! * **Acceptor-Connector** — automated connection establishment
//!   ([`transport`], [`reactor`]);
//! * **Asynchronous Completion Tokens** — matching completions back to the
//!   requests that issued them ([`event`], [`pipeline`]).
//!
//! A server is configured through the twelve template options of the
//! paper's Table 1 ([`options::ServerOptions`]) and supplied with three
//! application-dependent hook objects: Decode and Encode (a
//! [`pipeline::Codec`]) and Handle (a [`pipeline::Service`]). Everything
//! else — the event loop, the thread pools, scheduling, overload control,
//! caching, idle shutdown, tracing, profiling — is framework code, which
//! in the generative path (`nserver-codegen`) is emitted as source and in
//! the runtime path is assembled by [`server::ServerBuilder`].
//!
//! ## Quick start
//!
//! ```
//! use nserver_core::prelude::*;
//! use bytes::BytesMut;
//!
//! struct Upper;
//! impl Codec for Upper {
//!     type Request = String;
//!     type Response = String;
//!     fn decode(&self, buf: &mut BytesMut) -> Result<Option<String>, ProtocolError> {
//!         match buf.iter().position(|&b| b == b'\n') {
//!             Some(i) => {
//!                 let line = buf.split_to(i + 1);
//!                 Ok(Some(String::from_utf8_lossy(&line[..i]).into_owned()))
//!             }
//!             None => Ok(None),
//!         }
//!     }
//!     fn encode(&self, r: &String, out: &mut BytesMut) -> Result<(), ProtocolError> {
//!         out.extend_from_slice(r.as_bytes());
//!         out.extend_from_slice(b"\n");
//!         Ok(())
//!     }
//! }
//!
//! struct UpperService;
//! impl Service<Upper> for UpperService {
//!     fn handle(&self, _ctx: &ConnCtx, req: String) -> Action<String> {
//!         Action::Reply(req.to_uppercase())
//!     }
//! }
//!
//! let server = ServerBuilder::new(ServerOptions::default(), Upper, UpperService)
//!     .unwrap()
//!     .serve(TcpListenerNb::bind("127.0.0.1:0").unwrap());
//! // ... connect clients to server.local_label() ...
//! server.shutdown();
//! ```

pub mod cluster;
pub mod diag;
pub mod event;
pub mod fault;
pub mod metrics;
pub mod options;
pub mod overload;
pub mod pipeline;
pub mod proactor;
pub mod processor;
pub mod profiling;
pub mod queue;
pub mod reactor;
pub mod scheduler;
pub mod server;
pub mod source;
pub mod tap;
pub mod timer;
pub mod trace;
pub mod transport;

/// The commonly needed surface, importable as `use nserver_core::prelude::*`.
pub mod prelude {
    pub use crate::diag::{
        DiagHub, DiagSnapshot, Watchdog, WatchdogConfig, WorkerActivity, WorkerRole, WorkerSample,
        WorkerStateTable,
    };
    pub use crate::event::{CompletionToken, ConnId, Priority};
    pub use crate::fault::{FaultPlan, FaultProfile, FaultyListener, FaultyStream};
    pub use crate::metrics::{
        prometheus_text, prometheus_text_with, trace_jsonl, CacheSample, ExpositionExtras,
        HistogramSnapshot, LatencySnapshot, MetricsRegistry, OverloadSample, Stage,
    };
    pub use crate::options::{
        CompletionMode, DispatcherThreads, EventScheduling, FileCacheOption, Mode, OverloadControl,
        ServerOptions, StageDeadlines, ThreadAllocation,
    };
    pub use crate::pipeline::{Action, Codec, ConnCtx, ProtocolError, RawCodec, Service};
    pub use crate::server::{ServerBuilder, ServerHandle};
    pub use crate::tap::{ConnTrace, TapEvent, TapListener, TraceLog};
    pub use crate::trace::{DebugTracer, MemoryLogger, SpanEvent};
    pub use crate::transport::{Listener, StreamIo, TcpListenerNb, TcpStreamNb};
}

pub use event::{CompletionToken, ConnId, Priority};
pub use options::ServerOptions;
pub use pipeline::{Action, Codec, ConnCtx, ProtocolError, Service};
pub use server::{ServerBuilder, ServerHandle};
