//! The harness's soundness check: inject a known legality bug into the
//! real service and require the models to catch it, shrink it, and leave
//! a counterexample that replays from its serialized form. A conformance
//! suite that cannot fail proves nothing — these tests are the ones that
//! keep the green exploration runs meaningful.

use conformance::{
    generate, run_ftp, run_http, shrink, standard_ftp_service, standard_http_service, FtpMutation,
    HttpMutation, MutantFtp, MutantHttp, Proto, Schedule,
};

/// Find the first seed in `0..limit` whose schedule trips `fails`, check
/// the shrunken form still fails, and check the serialized artifact
/// round-trips into an equally failing schedule.
fn caught_shrunk_and_replayable(
    proto: Proto,
    limit: u64,
    fails: &dyn Fn(&Schedule) -> bool,
) -> Schedule {
    let sched = (0..limit)
        .map(|seed| generate(proto, seed))
        .find(|s| fails(s))
        .unwrap_or_else(|| panic!("no seed in 0..{limit} tripped the mutant — harness is blind"));
    let (shrunk, runs) = shrink(&sched, fails, 40);
    assert!(
        fails(&shrunk),
        "shrinking lost the failure after {runs} runs"
    );
    assert!(
        shrunk.serialize().len() <= sched.serialize().len(),
        "shrinking must not grow the schedule"
    );
    let replayed = Schedule::parse(&shrunk.serialize()).expect("artifact parses");
    assert_eq!(replayed.fingerprint(), shrunk.fingerprint());
    assert!(fails(&replayed), "artifact must replay the failure");
    replayed
}

#[test]
fn http_phantom_200_for_misses_is_caught() {
    let fails = |s: &Schedule| {
        let svc = MutantHttp::new(standard_http_service(), HttpMutation::MissBecomesOk);
        let report = run_http(s, svc);
        report
            .violations
            .iter()
            .any(|v| v.kind == "byte-divergence")
    };
    let witness = caught_shrunk_and_replayable(Proto::Http, 25, &fails);
    assert!(
        witness
            .conns
            .iter()
            .any(|c| c.bytes().windows(8).any(|w| w == b"/missing")),
        "the shrunken witness should still request a missing path:\n{}",
        witness.serialize()
    );
}

#[test]
fn http_keep_alive_lie_on_close_is_caught() {
    let fails = |s: &Schedule| {
        let svc = MutantHttp::new(standard_http_service(), HttpMutation::DropConnectionClose);
        let report = run_http(s, svc);
        report
            .violations
            .iter()
            .any(|v| v.kind == "byte-divergence")
    };
    caught_shrunk_and_replayable(Proto::Http, 25, &fails);
}

#[test]
fn ftp_login_bypass_is_caught() {
    let fails = |s: &Schedule| {
        let svc = MutantFtp::new(standard_ftp_service(), FtpMutation::LoginAlwaysSucceeds);
        let report = run_ftp(s, svc);
        report.violations.iter().any(|v| v.kind == "reply-mismatch")
    };
    caught_shrunk_and_replayable(Proto::Ftp, 25, &fails);
}

#[test]
fn unmutated_services_pass_the_same_seeds() {
    // The control arm: the exact seed band the mutation tests scan must be
    // violation-free without the mutants, or "caught" means nothing.
    for seed in 0..25 {
        let h = run_http(&generate(Proto::Http, seed), standard_http_service());
        assert!(
            h.violations.is_empty(),
            "http seed {seed}: {:?}",
            h.violations
        );
        let f = run_ftp(&generate(Proto::Ftp, seed), standard_ftp_service());
        assert!(
            f.violations.is_empty(),
            "ftp seed {seed}: {:?}",
            f.violations
        );
    }
}
