//! The executable HTTP model: the spec of COPS-HTTP's observable
//! behaviour as a pure function.
//!
//! For this protocol subset the server's outbound byte stream is fully
//! determined by (a) the decoded request stream — itself a deterministic
//! function of the post-fault inbound bytes — and (b) the content
//! fixture. The model therefore *computes the one legal response stream*
//! and accepts any observed trace that is a prefix of it: a fault (reset,
//! early close, snapshot cut) may truncate the stream at any byte, and
//! that prefix closure is exactly the nondeterminism of the acceptor.
//! Clean, fully-delivered connections are held to strict equality.
//!
//! The spec mirrored here, independent of the implementation source:
//! percent-escapes decode before any traversal check; `.`/`..` whole
//! segments, malformed escapes, NUL and non-rooted targets are 403; known
//! paths are 200 with the fixture body and guessed MIME; unknown paths
//! are 404; HEAD suppresses every body, error bodies included; the
//! `Connection` answer echoes the request's keep-alive decision and a
//! non-keep-alive exchange ends the stream (later pipelined requests are
//! never answered); an unparseable head closes with no error response.

use std::sync::Arc;

use bytes::BytesMut;
use nserver_core::tap::ConnTrace;
use nserver_http::observe::{extract_requests, split_responses, ResponseStreamEnd};
use nserver_http::parse::encode_response;
use nserver_http::types::{mime_for, Method, Response, Status};
use nserver_http::MemStore;

use crate::Violation;

/// The content set served in every conformance run, shared byte-for-byte
/// between the live server's store and the model.
#[derive(Debug, Clone)]
pub struct HttpFixture {
    files: Vec<(String, Vec<u8>)>,
}

impl Default for HttpFixture {
    fn default() -> Self {
        Self::standard()
    }
}

impl HttpFixture {
    /// The standard conformance content set.
    pub fn standard() -> Self {
        let big: Vec<u8> = (0..613u32).map(|i| (i * 31 % 251) as u8).collect();
        Self {
            files: vec![
                (
                    "/index.html".to_string(),
                    b"<html><body>conformance index</body></html>".to_vec(),
                ),
                ("/big.bin".to_string(), big),
                ("/hello world.txt".to_string(), b"hello, world".to_vec()),
            ],
        }
    }

    /// Store for the live server.
    pub fn store(&self) -> MemStore {
        let mut store = MemStore::new();
        for (path, data) in &self.files {
            store.insert(path.clone(), data.clone());
        }
        store
    }

    /// Model-side lookup.
    pub fn lookup(&self, path: &str) -> Option<&[u8]> {
        self.files
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, d)| d.as_slice())
    }
}

/// The spec's target validation: decode `%XX` escapes first, then reject
/// NUL, non-`/`-rooted paths, and whole `.`/`..` segments. Returns the
/// served path, or `None` for a 403.
pub fn model_sanitize(target: &str) -> Option<String> {
    let raw = target.split('?').next().unwrap_or(target);
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = |b: u8| match b {
                b'0'..=b'9' => Some(b - b'0'),
                b'a'..=b'f' => Some(b - b'a' + 10),
                b'A'..=b'F' => Some(b - b'A' + 10),
                _ => None,
            };
            let hi = hex(*bytes.get(i + 1)?)?;
            let lo = hex(*bytes.get(i + 2)?)?;
            out.push(hi << 4 | lo);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    let path = String::from_utf8(out).ok()?;
    if path.contains('\0') || !path.starts_with('/') {
        return None;
    }
    if path.split('/').any(|seg| seg == ".." || seg == ".") {
        return None;
    }
    Some(path)
}

/// The one legal outbound stream for `inbound`, plus the per-response
/// HEAD flags (needed to re-split observed bytes for diagnostics).
pub fn expected_outbound(fixture: &HttpFixture, inbound: &[u8]) -> (Vec<u8>, Vec<bool>) {
    let stream = extract_requests(inbound);
    let mut out = BytesMut::new();
    let mut heads = Vec::new();
    for req in &stream.complete {
        let ka = req.keep_alive();
        let head = req.method == Method::Head;
        let resp = match model_sanitize(&req.target) {
            None => Response::error(Status::Forbidden, req.version),
            Some(path) => match fixture.lookup(&path) {
                Some(data) => Response::ok(Arc::new(data.to_vec()), mime_for(&path), req.version),
                None => Response::error(Status::NotFound, req.version),
            },
        };
        let resp = if head { resp.head() } else { resp };
        encode_response(&resp.with_keep_alive(ka), &mut out);
        heads.push(head);
        if !ka {
            // The connection closes after this exchange; pipelined
            // requests already in the buffer are never answered.
            break;
        }
    }
    (out.to_vec(), heads)
}

/// Check one connection trace against the model. `strict` demands the
/// full expected stream was delivered (clean profile, no early close);
/// otherwise any prefix is accepted.
pub fn check_http(fixture: &HttpFixture, trace: &ConnTrace, strict: bool) -> Vec<Violation> {
    let mut violations = Vec::new();
    if let Some(v) = crate::event_order_violation(trace) {
        violations.push(v);
    }
    let observed = trace.outbound();
    let (expected, heads) = expected_outbound(fixture, &trace.inbound());
    let vio = |kind, detail| Violation {
        accept_index: trace.accept_index,
        profile: trace.profile.clone(),
        kind,
        detail,
    };
    if !expected.starts_with(&observed) {
        let at = observed
            .iter()
            .zip(&expected)
            .position(|(a, b)| a != b)
            .unwrap_or(expected.len().min(observed.len()));
        let split = split_responses(&observed, &heads);
        let context = match split.end {
            ResponseStreamEnd::Malformed { offset, ref why } => {
                format!(
                    "response {} unparseable at +{offset}: {why}",
                    split.complete.len()
                )
            }
            _ => format!("diverges inside response {}", split.complete.len()),
        };
        violations.push(vio(
            "byte-divergence",
            format!(
                "outbound differs from the model at offset {at} ({context}); \
                 observed {:?}…, expected {:?}…",
                String::from_utf8_lossy(
                    &observed[at.min(observed.len())..observed.len().min(at + 24)]
                ),
                String::from_utf8_lossy(
                    &expected[at.min(expected.len())..expected.len().min(at + 24)]
                ),
            ),
        ));
    } else if strict && observed.len() < expected.len() {
        violations.push(vio(
            "incomplete-delivery",
            format!(
                "clean connection delivered {} of {} expected bytes \
                 ({} of {} responses)",
                observed.len(),
                expected.len(),
                split_responses(&observed, &heads).complete.len(),
                heads.len(),
            ),
        ));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use nserver_core::tap::TapEvent;

    fn trace_of(inbound: &[u8], outbound: &[u8]) -> ConnTrace {
        ConnTrace::synthetic(
            1,
            "peer-1",
            "Clean",
            vec![
                TapEvent::Read(inbound.to_vec()),
                TapEvent::Wrote(outbound.to_vec()),
            ],
        )
    }

    #[test]
    fn sanitize_matches_spec_cases() {
        assert_eq!(model_sanitize("/a.txt?q=1"), Some("/a.txt".into()));
        assert_eq!(
            model_sanitize("/hello%20world.txt"),
            Some("/hello world.txt".into())
        );
        assert_eq!(model_sanitize("/%2e%2e/etc"), None, "decoded traversal");
        assert_eq!(model_sanitize("/%zz"), None, "malformed escape");
        assert_eq!(model_sanitize("a.txt"), None, "not rooted");
        assert_eq!(model_sanitize("/a..b.txt"), Some("/a..b.txt".into()));
    }

    #[test]
    fn expected_stream_serves_pipelined_requests_in_order() {
        let f = HttpFixture::standard();
        let inbound =
            b"GET /index.html HTTP/1.1\r\n\r\nGET /missing HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (out, heads) = expected_outbound(&f, inbound);
        assert_eq!(heads, vec![false, false]);
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn close_request_ends_the_expected_stream() {
        let f = HttpFixture::standard();
        let inbound = b"GET /index.html HTTP/1.0\r\n\r\nGET /index.html HTTP/1.1\r\n\r\n";
        let (out, heads) = expected_outbound(&f, inbound);
        assert_eq!(heads.len(), 1, "pipelined request after close is dead");
        assert!(String::from_utf8_lossy(&out).starts_with("HTTP/1.0 200"));
    }

    #[test]
    fn invalid_head_ends_the_stream_with_no_error_bytes() {
        let f = HttpFixture::standard();
        let (out, heads) = expected_outbound(&f, b"POST /x HTTP/1.1\r\n\r\n");
        assert!(out.is_empty(), "decode error closes silently");
        assert!(heads.is_empty());
    }

    #[test]
    fn head_request_expects_no_body_even_for_errors() {
        let f = HttpFixture::standard();
        let (out, heads) = expected_outbound(&f, b"HEAD /missing HTTP/1.1\r\n\r\n");
        assert_eq!(heads, vec![true]);
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 404"));
        assert!(text.ends_with("\r\n\r\n"), "no body after the head: {text}");
    }

    #[test]
    fn conforming_prefix_passes_and_divergence_fails() {
        let f = HttpFixture::standard();
        let inbound = b"GET /index.html HTTP/1.1\r\n\r\n";
        let (expected, _) = expected_outbound(&f, inbound);
        let t = trace_of(inbound, &expected[..20]);
        assert!(check_http(&f, &t, false).is_empty(), "prefix is legal");
        assert_eq!(
            check_http(&f, &t, true)[0].kind,
            "incomplete-delivery",
            "strict demands full delivery"
        );
        let mut wrong = expected.clone();
        let last = wrong.len() - 1;
        wrong[last] ^= 0xFF;
        let t = trace_of(inbound, &wrong);
        assert_eq!(check_http(&f, &t, false)[0].kind, "byte-divergence");
    }
}
