//! Ablation: server architectures from the paper's related-work section
//! on the same disk-heavy workload.
//!
//! * **SPED** (Zeus, Harvest): single event thread, *blocking* file I/O —
//!   a disk read stalls the whole server.
//! * **MPED** (Flash): single event thread + helper processes for file
//!   I/O (our Proactor path).
//! * **N-Server** (COPS-HTTP): event dispatcher + a multi-thread Event
//!   Processor + Proactor helpers + the O6 file cache.
//!
//! The file cache is disabled for SPED/MPED and the working set exceeds
//! the OS buffer cache, so the disk matters — the regime where the paper
//! (citing Pai et al.) says SPED's lack of non-blocking disk I/O
//! "negates the performance advantage of event-driven concurrency
//! models".

use nserver_baselines::world::CopsParams;
use nserver_baselines::{ExperimentParams, ServerKind, World};
use nserver_bench::{quick_mode, render_table, write_csv};
use nserver_netsim::SimTime;

fn run(clients: usize, cops: CopsParams, quick: bool) -> (f64, f64) {
    let mut p = ExperimentParams::figure3(clients, ServerKind::Cops(cops));
    // Make disk the interesting resource: small OS cache relative to the
    // file set, slower disk.
    p.os_cache_bytes = 16 * 1024 * 1024;
    p.disk_bytes_per_sec = 20_000_000;
    if quick {
        p.warmup = SimTime::from_secs(5);
        p.measure = SimTime::from_secs(30);
    }
    let out = World::new(p).run();
    (out.throughput_rps, out.mean_response_ms)
}

fn main() {
    let quick = quick_mode();
    println!("ABLATION — SERVER ARCHITECTURES ON A DISK-HEAVY WORKLOAD");
    println!("SPED (blocking file I/O) vs MPED (helpers) vs full N-Server\n");

    let nserver = CopsParams {
        app_cache_bytes: None,
        ..CopsParams::default()
    };
    let archs: [(&str, CopsParams); 3] = [
        ("SPED", CopsParams::sped()),
        ("MPED", CopsParams::mped()),
        ("N-Server", nserver),
    ];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &clients in &[16usize, 64, 256] {
        for (name, params) in archs {
            let (rps, resp) = run(clients, params, quick);
            rows.push(vec![
                clients.to_string(),
                name.to_string(),
                format!("{rps:.1}"),
                format!("{resp:.0}"),
            ]);
            csv.push(format!("{clients},{name},{rps:.2},{resp:.1}"));
            eprintln!("  ran {name} at {clients} clients");
        }
    }
    println!(
        "{}",
        render_table(&["clients", "architecture", "rps", "mean resp ms"], &rows)
    );
    println!(
        "Expected shape: under load, SPED trails MPED (disk stalls serialize\n\
         everything behind one thread), and the N-Server's worker pool and\n\
         cache put it ahead of both."
    );
    write_csv(
        "ablation_architectures.csv",
        "clients,architecture,rps,resp_ms",
        &csv,
    );
}
