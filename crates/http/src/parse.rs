//! Incremental HTTP request parsing and response encoding — the protocol
//! library half of COPS-HTTP's handwritten code.

use bytes::BytesMut;

use crate::types::{Headers, Method, Request, Response, Version};

/// Result of a parse attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// A complete request was consumed from the buffer.
    Complete(Request),
    /// More bytes are needed.
    Incomplete,
    /// The bytes are not a valid HTTP request.
    Invalid(String),
}

/// Hard cap on the request head (status line + headers) to bound memory.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Try to parse one request from the front of `buf`, consuming it on
/// success. Static servers accept no request bodies, so a request is
/// complete at its blank line.
pub fn parse_request(buf: &mut BytesMut) -> ParseOutcome {
    let mut scanned = 0;
    parse_request_hinted(buf, &mut scanned)
}

/// [`parse_request`] with a resumable scan position.
///
/// `scanned` is the prefix of `buf` already examined by a previous call
/// that returned [`ParseOutcome::Incomplete`]; the blank-line scan
/// resumes just before it instead of at offset 0. Without the hint a
/// sender dripping an N-byte head one byte at a time costs O(N²) total
/// scan work (the slow-loris pathology); with it each byte is scanned
/// once. The hint is updated in place: reset to 0 whenever bytes are
/// consumed or the request is rejected, advanced on `Incomplete`.
pub fn parse_request_hinted(buf: &mut BytesMut, scanned: &mut usize) -> ParseOutcome {
    let from = (*scanned).min(buf.len());
    let head_end = match find_head_end_from(buf, from) {
        Some(i) => i,
        None => {
            // Everything present has been scanned; keep 3 bytes of slack
            // so a "\r\n\r\n" straddling this call and the next is found.
            *scanned = buf.len().saturating_sub(3);
            return if buf.len() > MAX_HEAD_BYTES {
                *scanned = 0;
                ParseOutcome::Invalid("request head too large".into())
            } else {
                ParseOutcome::Incomplete
            };
        }
    };
    *scanned = 0;
    // The cap applies to complete heads too: a head over the limit is
    // over the limit no matter how few reads delivered it.
    if head_end.end > MAX_HEAD_BYTES {
        return ParseOutcome::Invalid("request head too large".into());
    }
    let head = buf.split_to(head_end.end);
    let text = match std::str::from_utf8(&head[..head_end.start]) {
        Ok(t) => t,
        Err(_) => return ParseOutcome::Invalid("request head is not UTF-8".into()),
    };
    let mut lines = text.split("\r\n").filter(|l| !l.is_empty());
    let request_line = match lines.next() {
        Some(l) => l,
        None => return ParseOutcome::Invalid("empty request".into()),
    };
    let mut parts = request_line.split(' ');
    let (m, t, v) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return ParseOutcome::Invalid(format!("malformed request line: {request_line}")),
    };
    let method = match Method::parse(m) {
        Some(m) => m,
        None => return ParseOutcome::Invalid(format!("unsupported method: {m}")),
    };
    let version = match Version::parse(v) {
        Some(v) => v,
        None => return ParseOutcome::Invalid(format!("unsupported version: {v}")),
    };
    if t.is_empty() || !t.starts_with('/') {
        return ParseOutcome::Invalid(format!("bad target: {t}"));
    }
    let mut headers = Headers::new();
    for line in lines {
        match line.split_once(':') {
            Some((name, value)) => headers.push(name.trim(), value.trim()),
            None => return ParseOutcome::Invalid(format!("malformed header: {line}")),
        }
    }
    ParseOutcome::Complete(Request {
        method,
        target: t.to_string(),
        version,
        headers,
    })
}

struct HeadEnd {
    /// Byte offset where the head text ends (before the blank line).
    start: usize,
    /// Byte offset just past the blank line (what to consume).
    end: usize,
}

fn find_head_end_from(buf: &BytesMut, from: usize) -> Option<HeadEnd> {
    buf[from..]
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| HeadEnd {
            start: from + i + 2, // keep the final header's CRLF for splitting
            end: from + i + 4,
        })
}

/// Encode just the response head (status line, headers, blank line) onto
/// `out`. The body travels separately — as a zero-copy shared segment on
/// the server hot path ([`crate::HttpCodec`]'s `encode_reply`).
pub fn encode_response_head(resp: &Response, out: &mut BytesMut) {
    let status_line = format!(
        "{} {} {}\r\n",
        resp.version,
        resp.status.code(),
        resp.status.reason()
    );
    out.extend_from_slice(status_line.as_bytes());
    for (name, value) in resp.headers.iter() {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n", resp.body.len()).as_bytes());
    out.extend_from_slice(if resp.keep_alive {
        b"Connection: keep-alive\r\n" as &[u8]
    } else {
        b"Connection: close\r\n"
    });
    out.extend_from_slice(b"\r\n");
}

/// Encode a response onto `out`, adding Content-Length and Connection
/// headers.
pub fn encode_response(resp: &Response, out: &mut BytesMut) {
    encode_response_head(resp, out);
    if !resp.head_only {
        out.extend_from_slice(&resp.body);
    }
}

/// Render a request as wire bytes (client side; used by tests and the
/// workload drivers).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = format!("{} {} {}\r\n", req.method, req.target, req.version);
    for (name, value) in req.headers.iter() {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn bm(s: &str) -> BytesMut {
        BytesMut::from(s.as_bytes())
    }

    #[test]
    fn parses_minimal_get() {
        let mut buf = bm("GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n");
        match parse_request(&mut buf) {
            ParseOutcome::Complete(req) => {
                assert_eq!(req.method, Method::Get);
                assert_eq!(req.target, "/index.html");
                assert_eq!(req.version, Version::Http11);
                assert_eq!(req.headers.get("host"), Some("x"));
            }
            other => panic!("{other:?}"),
        }
        assert!(buf.is_empty(), "request consumed");
    }

    #[test]
    fn incomplete_until_blank_line() {
        let mut buf = bm("GET / HTTP/1.1\r\nHost: x\r\n");
        assert_eq!(parse_request(&mut buf), ParseOutcome::Incomplete);
        buf.extend_from_slice(b"\r\n");
        assert!(matches!(parse_request(&mut buf), ParseOutcome::Complete(_)));
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let mut buf = bm("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        let first = parse_request(&mut buf);
        let second = parse_request(&mut buf);
        match (first, second) {
            (ParseOutcome::Complete(a), ParseOutcome::Complete(b)) => {
                assert_eq!(a.target, "/a");
                assert_eq!(b.target, "/b");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_request(&mut buf), ParseOutcome::Incomplete);
    }

    #[test]
    fn rejects_bad_method_version_target() {
        for bad in [
            "POST / HTTP/1.1\r\n\r\n",
            "GET / HTTP/2\r\n\r\n",
            "GET index HTTP/1.1\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "GARBAGE\r\n\r\n",
        ] {
            let mut buf = bm(bad);
            assert!(
                matches!(parse_request(&mut buf), ParseOutcome::Invalid(_)),
                "accepted: {bad}"
            );
        }
    }

    #[test]
    fn rejects_malformed_header() {
        let mut buf = bm("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n");
        assert!(matches!(parse_request(&mut buf), ParseOutcome::Invalid(_)));
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"GET / HTTP/1.1\r\n");
        while buf.len() <= MAX_HEAD_BYTES {
            buf.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        assert!(matches!(parse_request(&mut buf), ParseOutcome::Invalid(_)));
    }

    #[test]
    fn oversized_head_is_rejected_even_when_complete() {
        // Regression: the cap used to fire only while the head was still
        // incomplete, so an arbitrarily large head delivered in one read
        // (blank line included) sailed through.
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"GET / HTTP/1.1\r\n");
        while buf.len() <= MAX_HEAD_BYTES {
            buf.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        buf.extend_from_slice(b"\r\n");
        assert!(
            matches!(parse_request(&mut buf), ParseOutcome::Invalid(_)),
            "complete head over MAX_HEAD_BYTES must be rejected"
        );
    }

    #[test]
    fn head_exactly_at_cap_is_accepted() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"GET / HTTP/1.1\r\n");
        let tail = b"\r\n";
        let pad_line = b"X-Pad: ";
        let fill = MAX_HEAD_BYTES - buf.len() - tail.len() - pad_line.len() - 2;
        buf.extend_from_slice(pad_line);
        buf.extend_from_slice(&vec![b'a'; fill]);
        buf.extend_from_slice(b"\r\n");
        buf.extend_from_slice(tail);
        assert_eq!(buf.len(), MAX_HEAD_BYTES);
        assert!(matches!(parse_request(&mut buf), ParseOutcome::Complete(_)));
    }

    #[test]
    fn hinted_parse_resumes_without_rescanning() {
        let wire = b"GET /dripped.html HTTP/1.1\r\nHost: slow\r\n\r\n";
        let mut buf = BytesMut::new();
        let mut scanned = 0;
        for (i, b) in wire.iter().enumerate() {
            buf.extend_from_slice(&[*b]);
            match parse_request_hinted(&mut buf, &mut scanned) {
                ParseOutcome::Incomplete => {
                    assert!(i + 1 < wire.len(), "last byte completes the head");
                    // The hint never runs past the buffer and trails it by
                    // the 3-byte straddle slack.
                    assert_eq!(scanned, buf.len().saturating_sub(3));
                }
                ParseOutcome::Complete(req) => {
                    assert_eq!(i + 1, wire.len());
                    assert_eq!(req.target, "/dripped.html");
                    assert_eq!(scanned, 0, "hint resets once bytes are consumed");
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn encode_response_includes_length_and_connection() {
        let resp = Response::ok(Arc::new(b"hello".to_vec()), "text/plain", Version::Http11);
        let mut out = BytesMut::new();
        encode_response(&resp, &mut out);
        let text = String::from_utf8(out.to_vec()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn encode_head_response_has_no_body() {
        let resp = Response::ok(Arc::new(b"hello".to_vec()), "text/plain", Version::Http11)
            .head()
            .with_keep_alive(false);
        let mut out = BytesMut::new();
        encode_response(&resp, &mut out);
        let text = String::from_utf8(out.to_vec()).unwrap();
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn request_encode_parse_round_trip() {
        let mut headers = Headers::new();
        headers.push("Host", "example");
        headers.push("Connection", "close");
        let req = Request {
            method: Method::Head,
            target: "/x/y.png".into(),
            version: Version::Http10,
            headers,
        };
        let mut buf = BytesMut::from(&encode_request(&req)[..]);
        match parse_request(&mut buf) {
            ParseOutcome::Complete(parsed) => assert_eq!(parsed, req),
            other => panic!("{other:?}"),
        }
    }
}
