//! A key-value store server — a domain-specific N-Server application
//! showing two template options the web/FTP demos don't exercise
//! together: **event scheduling** (O8: admin connections outrank regular
//! clients) and **debug mode** (O10: the internal event trace).
//!
//! Protocol: `SET key value`, `GET key`, `DEL key`, `STATS` — one command
//! per line.
//!
//! Run: `cargo run -p nserver-examples --bin kv_store`

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use bytes::BytesMut;
use nserver_core::prelude::*;
use parking_lot::RwLock;

struct KvCodec;

impl Codec for KvCodec {
    type Request = Vec<String>;
    type Response = String;

    fn decode(&self, buf: &mut BytesMut) -> Result<Option<Vec<String>>, ProtocolError> {
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                let line = buf.split_to(i + 1);
                let text = String::from_utf8_lossy(&line[..i]).trim().to_string();
                Ok(Some(text.splitn(3, ' ').map(|s| s.to_string()).collect()))
            }
            None => Ok(None),
        }
    }

    fn encode(&self, resp: &String, out: &mut BytesMut) -> Result<(), ProtocolError> {
        out.extend_from_slice(resp.as_bytes());
        out.extend_from_slice(b"\n");
        Ok(())
    }
}

#[derive(Default)]
struct KvService {
    data: RwLock<HashMap<String, String>>,
}

impl Service<KvCodec> for KvService {
    fn handle(&self, ctx: &ConnCtx, req: Vec<String>) -> Action<String> {
        let verb = req.first().map(|s| s.as_str()).unwrap_or("");
        match (verb, req.len()) {
            ("SET", 3) => {
                self.data.write().insert(req[1].clone(), req[2].clone());
                Action::Reply("OK".into())
            }
            ("GET", 2) => match self.data.read().get(&req[1]) {
                Some(v) => Action::Reply(format!("VALUE {v}")),
                None => Action::Reply("NOT_FOUND".into()),
            },
            ("DEL", 2) => {
                let removed = self.data.write().remove(&req[1]).is_some();
                Action::Reply(if removed { "OK" } else { "NOT_FOUND" }.into())
            }
            ("STATS", 1) => Action::Reply(format!(
                "KEYS {} PRIORITY {}",
                self.data.read().len(),
                ctx.priority
            )),
            ("QUIT", 1) => Action::ReplyClose("BYE".into()),
            _ => Action::Reply("ERR unknown command".into()),
        }
    }
}

fn session(addr: &str, script: &[&str]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut replies = Vec::new();
    for cmd in script {
        writer.write_all(cmd.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        replies.push(line.trim_end().to_string());
    }
    replies
}

fn main() {
    let options = ServerOptions {
        // O8: two priority levels — the high level gets an 8:1 quota.
        event_scheduling: EventScheduling::Yes { quotas: vec![8, 1] },
        // O10: debug mode traces every internal event.
        mode: Mode::Debug,
        profiling: true,
        ..ServerOptions::default()
    };
    let server = ServerBuilder::new(options, KvCodec, KvService::default())
        .expect("valid options")
        // Priority policy: loopback "admin" port parity decides the level
        // (a stand-in for the paper's by-IP classification).
        .priority_policy(|peer| {
            let port: u32 = peer
                .rsplit(':')
                .next()
                .and_then(|p| p.parse().ok())
                .unwrap_or(0);
            if port.is_multiple_of(2) {
                Priority(0)
            } else {
                Priority(1)
            }
        })
        .serve(TcpListenerNb::bind("127.0.0.1:0").expect("bind"));
    let addr = server.local_label().to_string();
    println!("kv store listening on {addr}");

    let replies = session(
        &addr,
        &[
            "SET lang rust",
            "SET paper ipps-2005",
            "GET lang",
            "STATS",
            "DEL lang",
            "GET lang",
            "QUIT",
        ],
    );
    for r in &replies {
        println!("  -> {r}");
    }
    assert_eq!(replies[0], "OK");
    assert_eq!(replies[2], "VALUE rust");
    assert!(replies[3].starts_with("KEYS 2"));
    assert_eq!(replies[5], "NOT_FOUND");

    // Debug mode captured the internal event flow.
    let trace = server.tracer().dump();
    println!(
        "\ndebug trace captured {} internal events; first few:",
        trace.len()
    );
    for rec in trace.iter().take(5) {
        println!("  [{:>8}µs] {} {}", rec.at_us, rec.kind, rec.detail);
    }
    assert!(!trace.is_empty());
    server.shutdown();
    println!("kv store OK");
}
