//! Least-Recently-Used replacement.

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::policy::{EntryId, EntryMeta, ReplacementPolicy};

/// Classic LRU: the victim is always the entry whose last access is oldest.
///
/// Implemented as a `BTreeMap<access_tick, id>` plus an `id -> tick` index,
/// giving `O(log n)` insert/access/evict without an intrusive list.
#[derive(Debug, Default)]
pub struct Lru {
    by_recency: BTreeMap<u64, EntryId>,
    tick_of: HashMap<EntryId, u64>,
}

impl Lru {
    /// Create an empty LRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, id: EntryId, tick: u64) {
        if let Some(old) = self.tick_of.insert(id, tick) {
            self.by_recency.remove(&old);
        }
        self.by_recency.insert(tick, id);
    }

    /// Number of tracked entries (test/diagnostic aid).
    pub fn len(&self) -> usize {
        self.tick_of.len()
    }

    /// True when no entries are tracked.
    pub fn is_empty(&self) -> bool {
        self.tick_of.is_empty()
    }
}

impl ReplacementPolicy for Lru {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn on_insert(&mut self, id: EntryId, meta: &EntryMeta) {
        self.touch(id, meta.last_access);
    }

    fn on_access(&mut self, id: EntryId, meta: &EntryMeta) {
        self.touch(id, meta.last_access);
    }

    fn on_remove(&mut self, id: EntryId) {
        if let Some(tick) = self.tick_of.remove(&id) {
            self.by_recency.remove(&tick);
        }
    }

    fn choose_victim(&mut self, _incoming_size: u64) -> Option<EntryId> {
        self.by_recency.values().next().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta_at(t: u64) -> EntryMeta {
        EntryMeta {
            size: 1,
            last_access: t,
            access_count: 1,
            inserted_at: t,
        }
    }

    #[test]
    fn evicts_oldest_insertion_first() {
        let mut p = Lru::new();
        p.on_insert(1, &meta_at(0));
        p.on_insert(2, &meta_at(1));
        p.on_insert(3, &meta_at(2));
        assert_eq!(p.choose_victim(0), Some(1));
    }

    #[test]
    fn access_refreshes_recency() {
        let mut p = Lru::new();
        p.on_insert(1, &meta_at(0));
        p.on_insert(2, &meta_at(1));
        p.on_access(1, &meta_at(2));
        assert_eq!(p.choose_victim(0), Some(2));
    }

    #[test]
    fn remove_untracks_entry() {
        let mut p = Lru::new();
        p.on_insert(1, &meta_at(0));
        p.on_insert(2, &meta_at(1));
        p.on_remove(1);
        assert_eq!(p.choose_victim(0), Some(2));
        p.on_remove(2);
        assert_eq!(p.choose_victim(0), None);
        assert!(p.is_empty());
    }

    #[test]
    fn remove_of_unknown_id_is_harmless() {
        let mut p = Lru::new();
        p.on_remove(42);
        assert_eq!(p.choose_victim(0), None);
    }

    #[test]
    fn victim_is_stable_without_mutation() {
        let mut p = Lru::new();
        p.on_insert(7, &meta_at(3));
        p.on_insert(8, &meta_at(4));
        assert_eq!(p.choose_victim(0), Some(7));
        assert_eq!(p.choose_victim(0), Some(7));
        assert_eq!(p.len(), 2);
    }
}
