//! Debug tracing (option O10) and access logging (option O12).
//!
//! In debug mode "all internal events that are triggered in the server are
//! written into a file. The user can trace this file to get a snapshot of
//! what happened during the time an error condition occurred." We keep the
//! trace in a bounded ring buffer and let the application dump it on
//! demand — same diagnostic value, no unbounded disk growth.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::event::{ConnId, EventKind};

/// One traced internal event.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Microseconds since the tracer was created.
    pub at_us: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Connection involved, if any.
    pub conn: Option<ConnId>,
    /// Free-form detail.
    pub detail: String,
}

/// Bounded in-memory event trace (debug mode, O10).
#[derive(Clone)]
pub struct DebugTracer {
    inner: Arc<Mutex<TraceInner>>,
    epoch: Instant,
    enabled: bool,
}

struct TraceInner {
    ring: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl DebugTracer {
    /// An enabled tracer holding the most recent `capacity` records.
    pub fn enabled(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(TraceInner {
                ring: VecDeque::with_capacity(capacity.min(4096)),
                capacity: capacity.max(1),
                dropped: 0,
            })),
            epoch: Instant::now(),
            enabled: true,
        }
    }

    /// A disabled tracer: every call is a cheap no-op (production mode).
    pub fn disabled() -> Self {
        Self {
            inner: Arc::new(Mutex::new(TraceInner {
                ring: VecDeque::new(),
                capacity: 1,
                dropped: 0,
            })),
            epoch: Instant::now(),
            enabled: false,
        }
    }

    /// Whether tracing is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an internal event.
    pub fn record(&self, kind: EventKind, conn: Option<ConnId>, detail: impl Into<String>) {
        if !self.enabled {
            return;
        }
        let rec = TraceRecord {
            at_us: self.epoch.elapsed().as_micros() as u64,
            kind,
            conn,
            detail: detail.into(),
        };
        let mut inner = self.inner.lock();
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(rec);
    }

    /// Copy out the retained records, oldest first.
    pub fn dump(&self) -> Vec<TraceRecord> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Records evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Render the trace as text lines (what debug mode writes to its file).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in self.dump() {
            let conn = r
                .conn
                .map(|c| format!(" conn={c}"))
                .unwrap_or_default();
            out.push_str(&format!("[{:>10}µs] {}{} {}\n", r.at_us, r.kind, conn, r.detail));
        }
        out
    }
}

/// Access-log hook (option O12): the generated framework calls this once
/// per completed request with a preformatted line; applications supply the
/// sink (file, stdout, collector…).
pub type AccessLogger = Arc<dyn Fn(&str) + Send + Sync>;

/// An in-memory access logger, handy for tests and examples.
#[derive(Clone, Default)]
pub struct MemoryLogger {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemoryLogger {
    /// New empty logger.
    pub fn new() -> Self {
        Self::default()
    }

    /// The logging hook to hand to the framework.
    pub fn as_hook(&self) -> AccessLogger {
        let lines = Arc::clone(&self.lines);
        Arc::new(move |line: &str| lines.lock().push(line.to_string()))
    }

    /// Copy of all logged lines.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = DebugTracer::disabled();
        t.record(EventKind::Readable, Some(1), "x");
        assert!(t.dump().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_tracer_keeps_records_in_order() {
        let t = DebugTracer::enabled(10);
        t.record(EventKind::Accepted, Some(1), "new conn");
        t.record(EventKind::Readable, Some(1), "64 bytes");
        let recs = t.dump();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, EventKind::Accepted);
        assert_eq!(recs[1].kind, EventKind::Readable);
        assert!(recs[0].at_us <= recs[1].at_us);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let t = DebugTracer::enabled(3);
        for i in 0..5 {
            t.record(EventKind::Timer, None, format!("t{i}"));
        }
        let recs = t.dump();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].detail, "t2");
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn render_formats_lines() {
        let t = DebugTracer::enabled(4);
        t.record(EventKind::Shutdown, Some(9), "bye");
        let text = t.render();
        assert!(text.contains("shutdown"));
        assert!(text.contains("conn=9"));
        assert!(text.contains("bye"));
    }

    #[test]
    fn memory_logger_captures_lines() {
        let log = MemoryLogger::new();
        let hook = log.as_hook();
        hook("GET /index.html 200");
        hook("GET /missing 404");
        assert_eq!(log.lines().len(), 2);
        assert!(log.lines()[1].contains("404"));
    }
}
