//! The "reused existing library" half of COPS-FTP (the analogue of the
//! 8,141 NCSS the paper reused from Apache FTPServer): protocol-agnostic
//! building blocks with no knowledge of the event-driven architecture.

pub mod replies;
pub mod users;
pub mod vfs;
