//! Observable-event extraction for conformance checking: turn the raw
//! byte streams a trace tap recorded into FTP-level events.
//!
//! * [`extract_commands`] replays the server's decode loop — it drives
//!   the real [`FtpCodec`] — so a conformance model knows, from the bytes
//!   the server actually read, exactly which commands were decoded (or
//!   reported malformed) and where decoding stopped.
//! * [`split_replies`] structures the server's outbound bytes into reply
//!   blocks: single `NNN text\r\n` lines and RFC 959 §4.2 multi-line
//!   blocks (`NNN-title` … `NNN End`). FTP conformance is checked at the
//!   reply-code level because multi-line 211 bodies carry live counters.

use bytes::BytesMut;
use nserver_core::pipeline::Codec;

use crate::codec::{FtpCodec, FtpRequest};

/// How the command stream ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandStreamEnd {
    /// Every byte was consumed by complete lines.
    Clean,
    /// Trailing bytes form an unterminated line (legal: the trace was
    /// cut mid-delivery).
    Incomplete(Vec<u8>),
    /// The codec rejected the stream here (oversized line); the server
    /// drops the connection without a reply.
    Invalid(String),
}

/// The decoded view of one control connection's inbound bytes.
#[derive(Debug, Clone)]
pub struct CommandStream {
    /// Requests the server decoded, in order — well-formed commands and
    /// malformed lines alike (both reach the service).
    pub requests: Vec<FtpRequest>,
    /// Why decoding stopped.
    pub end: CommandStreamEnd,
}

/// Replay the server's decode loop over `bytes` (the post-fault inbound
/// stream) using the real [`FtpCodec`].
pub fn extract_commands(bytes: &[u8]) -> CommandStream {
    let codec = FtpCodec;
    let mut buf = BytesMut::from(bytes);
    let mut requests = Vec::new();
    loop {
        match codec.decode(&mut buf) {
            Ok(Some(req)) => requests.push(req),
            Ok(None) => {
                let end = if buf.is_empty() {
                    CommandStreamEnd::Clean
                } else {
                    CommandStreamEnd::Incomplete(buf.to_vec())
                };
                return CommandStream { requests, end };
            }
            Err(e) => {
                return CommandStream {
                    requests,
                    end: CommandStreamEnd::Invalid(e.0),
                };
            }
        }
    }
}

/// One reply block from the server's outbound stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyBlock {
    /// Three-digit reply code.
    pub code: u16,
    /// Text after the code on the opening line.
    pub text: String,
    /// True for an RFC 959 §4.2 multi-line block (`NNN-` … `NNN `).
    pub multiline: bool,
    /// All lines of the block, terminators stripped.
    pub lines: Vec<String>,
    /// Byte offset of the block's first byte within the outbound stream
    /// (lets a checker locate the transport event that carried it).
    pub offset: usize,
}

/// Parse the data port out of a `227 Entering Passive Mode
/// (h1,h2,h3,h4,p1,p2)` reply text. `None` if the text does not carry a
/// well-formed host-port tuple.
pub fn parse_pasv_port(text: &str) -> Option<u16> {
    let inner = text.split('(').nth(1)?.split(')').next()?;
    let nums: Vec<u16> = inner
        .split(',')
        .map(|n| n.trim().parse().ok())
        .collect::<Option<_>>()?;
    if nums.len() != 6 || nums[4] > 255 || nums[5] > 255 {
        return None;
    }
    Some((nums[4] << 8) | nums[5])
}

/// The exact bytes a LIST transfer puts on the data socket for `entries`
/// (one name per line, CRLF terminated). Single source of truth shared by
/// the server's data path and the conformance replica.
pub fn listing_text(entries: &[String]) -> String {
    entries.iter().map(|e| format!("{e}\r\n")).collect()
}

/// How the reply stream ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyStreamEnd {
    /// Every byte was consumed by complete reply blocks.
    Clean,
    /// Trailing bytes form an unterminated block (legal under
    /// truncation: reset, stall, or snapshot cut).
    Truncated(Vec<u8>),
    /// The stream is not parseable as FTP replies at this offset.
    Malformed {
        /// Byte offset of the first unparseable line.
        offset: usize,
        /// What went wrong.
        why: String,
    },
}

/// The structured view of one control connection's outbound bytes.
#[derive(Debug, Clone)]
pub struct ReplyStream {
    /// Reply blocks fully delivered, in order.
    pub complete: Vec<ReplyBlock>,
    /// Why splitting stopped.
    pub end: ReplyStreamEnd,
}

/// Split `bytes` into reply blocks.
pub fn split_replies(bytes: &[u8]) -> ReplyStream {
    let mut complete = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let block_start = pos;
        let (first, after) = match take_line(bytes, pos) {
            Some(x) => x,
            None => {
                return ReplyStream {
                    complete,
                    end: ReplyStreamEnd::Truncated(bytes[block_start..].to_vec()),
                };
            }
        };
        let (code, sep, text) = match parse_reply_line(&first) {
            Ok(x) => x,
            Err(why) => {
                return ReplyStream {
                    complete,
                    end: ReplyStreamEnd::Malformed { offset: pos, why },
                };
            }
        };
        pos = after;
        let mut lines = vec![first.clone()];
        let multiline = sep == '-';
        if multiline {
            // Consume continuation lines until the closing `NNN text`.
            loop {
                let (line, after) = match take_line(bytes, pos) {
                    Some(x) => x,
                    None => {
                        return ReplyStream {
                            complete,
                            end: ReplyStreamEnd::Truncated(bytes[block_start..].to_vec()),
                        };
                    }
                };
                pos = after;
                let closes = matches!(parse_reply_line(&line), Ok((c, ' ', _)) if c == code);
                lines.push(line);
                if closes {
                    break;
                }
            }
        }
        complete.push(ReplyBlock {
            code,
            text,
            multiline,
            lines,
            offset: block_start,
        });
    }
    ReplyStream {
        complete,
        end: ReplyStreamEnd::Clean,
    }
}

/// Pull one `\r\n`-terminated line starting at `pos`; returns the line
/// (terminator stripped) and the offset just past it.
fn take_line(bytes: &[u8], pos: usize) -> Option<(String, usize)> {
    let rest = &bytes[pos..];
    let nl = rest.iter().position(|&b| b == b'\n')?;
    let mut end = nl;
    if end > 0 && rest[end - 1] == b'\r' {
        end -= 1;
    }
    Some((
        String::from_utf8_lossy(&rest[..end]).into_owned(),
        pos + nl + 1,
    ))
}

/// Parse `NNN<sep>text` where `<sep>` is a space (final line) or `-`
/// (multi-line opener). A bare `NNN` counts as a final line.
fn parse_reply_line(line: &str) -> Result<(u16, char, String), String> {
    let b = line.as_bytes();
    if b.len() < 3 || !b[..3].iter().all(|c| c.is_ascii_digit()) {
        return Err(format!("not a reply line: {line:?}"));
    }
    let code: u16 = line[..3]
        .parse()
        .map_err(|_| format!("bad code: {line:?}"))?;
    let sep = if b.len() == 3 { ' ' } else { b[3] as char };
    if sep != ' ' && sep != '-' {
        return Err(format!("bad separator after code: {line:?}"));
    }
    let text = if b.len() > 4 {
        line[4..].to_string()
    } else {
        String::new()
    };
    Ok((code, sep, text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::Command;
    use crate::legacy::replies;

    #[test]
    fn extracts_commands_and_malformed_lines() {
        let s = extract_commands(b"USER alice\r\nRETR\r\nQUIT\n");
        assert_eq!(s.requests.len(), 3);
        assert_eq!(
            s.requests[0],
            FtpRequest::Command(Command::User("alice".into()))
        );
        assert!(matches!(s.requests[1], FtpRequest::Malformed(_)));
        assert_eq!(s.requests[2], FtpRequest::Command(Command::Quit));
        assert_eq!(s.end, CommandStreamEnd::Clean);
    }

    #[test]
    fn unterminated_tail_is_incomplete() {
        let s = extract_commands(b"USER alice\r\nPAS");
        assert_eq!(s.requests.len(), 1);
        assert!(matches!(s.end, CommandStreamEnd::Incomplete(ref t) if t == b"PAS"));
    }

    #[test]
    fn oversized_line_is_invalid() {
        let s = extract_commands(&vec![b'a'; 5000]);
        assert!(s.requests.is_empty());
        assert!(matches!(s.end, CommandStreamEnd::Invalid(_)));
    }

    #[test]
    fn splits_single_and_multiline_replies() {
        let mut wire = String::new();
        wire.push_str(&replies::service_ready("COPS-FTP"));
        wire.push_str(&replies::status_lines("status", &["conns 3".into()]));
        wire.push_str(&replies::goodbye());
        let s = split_replies(wire.as_bytes());
        assert_eq!(s.complete.len(), 3);
        assert_eq!(s.complete[0].code, 220);
        assert!(!s.complete[0].multiline);
        assert_eq!(s.complete[1].code, 211);
        assert!(s.complete[1].multiline);
        assert_eq!(s.complete[1].lines.last().unwrap(), "211 End");
        assert_eq!(s.complete[2].code, 221);
        assert_eq!(s.end, ReplyStreamEnd::Clean);
    }

    #[test]
    fn truncated_multiline_block_reports_whole_tail() {
        let full = replies::status_lines("status", &["a 1".into(), "b 2".into()]);
        let cut = full.len() - replies::line(211, "End").len();
        let s = split_replies(&full.as_bytes()[..cut]);
        assert!(s.complete.is_empty());
        assert!(matches!(s.end, ReplyStreamEnd::Truncated(ref t) if t == &full.as_bytes()[..cut]));
    }

    #[test]
    fn reply_blocks_carry_their_stream_offset() {
        let mut wire = String::new();
        wire.push_str(&replies::service_ready("COPS-FTP"));
        let second = wire.len();
        wire.push_str(&replies::goodbye());
        let s = split_replies(wire.as_bytes());
        assert_eq!(s.complete[0].offset, 0);
        assert_eq!(s.complete[1].offset, second);
    }

    #[test]
    fn pasv_port_parses_and_rejects() {
        let text = replies::passive_mode([127, 0, 0, 1], 0x1234);
        let s = split_replies(text.as_bytes());
        assert_eq!(parse_pasv_port(&s.complete[0].text), Some(0x1234));
        assert_eq!(parse_pasv_port("no tuple here"), None);
        assert_eq!(parse_pasv_port("(1,2,3)"), None);
        assert_eq!(parse_pasv_port("(1,2,3,4,999,1)"), None);
    }

    #[test]
    fn listing_text_is_crlf_per_entry() {
        assert_eq!(
            listing_text(&["a.txt".to_string(), "sub/".to_string()]),
            "a.txt\r\nsub/\r\n"
        );
        assert_eq!(listing_text(&[]), "");
    }

    #[test]
    fn garbage_is_malformed_with_offset() {
        let mut wire = replies::goodbye();
        let at = wire.len();
        wire.push_str("oops\r\n");
        let s = split_replies(wire.as_bytes());
        assert_eq!(s.complete.len(), 1);
        match s.end {
            ReplyStreamEnd::Malformed { offset, .. } => assert_eq!(offset, at),
            other => panic!("{other:?}"),
        }
    }
}
