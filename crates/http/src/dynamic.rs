//! Dynamic content support — the paper's noted extension: "The same
//! pattern can be used to generate a server for dynamic content, except
//! that more application-dependent code would be required to support the
//! additional protocols."
//!
//! [`RoutedService`] front-ends the static file service with
//! prefix-matched dynamic handlers. A handler is a plain closure from
//! request to response; handlers marked *blocking* run through the
//! framework's Proactor path (`Action::Defer`) so a slow generator (a
//! database query, a CGI-like computation) never stalls the event loop.

use std::sync::Arc;

use nserver_core::diag::DiagHub;
use nserver_core::metrics::{prometheus_text, MetricsRegistry};
use nserver_core::pipeline::{Action, ConnCtx, Service};
use nserver_core::profiling::ServerStats;

use crate::codec::HttpCodec;
use crate::service::{ContentStore, StaticFileService};
use crate::types::{Request, Response, Status};

/// A dynamic request handler.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

struct Route {
    prefix: String,
    handler: Handler,
    blocking: bool,
}

/// Static files plus prefix-routed dynamic handlers.
pub struct RoutedService<St: ContentStore> {
    routes: Vec<Route>,
    fallback: StaticFileService<St>,
}

impl<St: ContentStore> RoutedService<St> {
    /// Wrap a static file service.
    pub fn new(fallback: StaticFileService<St>) -> Self {
        Self {
            routes: Vec::new(),
            fallback,
        }
    }

    /// Mount a fast (non-blocking) handler at a path prefix. Longest
    /// prefix wins; ties go to the earliest mount.
    pub fn route(
        mut self,
        prefix: impl Into<String>,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes.push(Route {
            prefix: prefix.into(),
            handler: Arc::new(handler),
            blocking: false,
        });
        self
    }

    /// Mount a blocking handler (database access, heavy generation): it
    /// runs off the event loop via the Proactor path.
    pub fn route_blocking(
        mut self,
        prefix: impl Into<String>,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes.push(Route {
            prefix: prefix.into(),
            handler: Arc::new(handler),
            blocking: true,
        });
        self
    }

    /// Mount the built-in `/server-status` observability route: a
    /// Prometheus-text rendition of the server's counters plus the O11
    /// per-stage latency histograms (p50/p99 per stage). Pass the same
    /// `Arc`s given to the [`ServerBuilder`](nserver_core::server::ServerBuilder)
    /// so the page reflects the live server.
    pub fn server_status(self, stats: Arc<ServerStats>, metrics: Arc<MetricsRegistry>) -> Self {
        self.route(
            "/server-status",
            text_page(Status::Ok, move |_| {
                prometheus_text(&stats.snapshot(), &metrics.latency_snapshot())
            }),
        )
    }

    /// Mount `/server-status` backed by a diagnostics hub: the same
    /// Prometheus text as [`server_status`](Self::server_status) plus
    /// every optional family the hub has wired (cache, overload, worker
    /// gauges, trace drops, watchdog counters). Pass the hub given to
    /// `ServerBuilder::diag` so the page reflects the live server.
    pub fn server_status_diag(self, hub: DiagHub) -> Self {
        self.route(
            "/server-status",
            text_page(Status::Ok, move |_| hub.prometheus()),
        )
    }

    /// Mount the `/debug/snapshot` flight-recorder route. A plain GET
    /// captures a fresh diagnostic snapshot on demand and serves it as
    /// JSON; `GET /debug/snapshot?latest` serves the most recent stored
    /// capture instead (watchdog-triggered or on-demand), or `null` when
    /// none has been taken yet.
    pub fn debug_snapshot(self, hub: DiagHub) -> Self {
        self.route(
            "/debug/snapshot",
            json_page(move |req| {
                let query = req.target.split_once('?').map(|(_, q)| q).unwrap_or("");
                if query.split('&').any(|kv| kv == "latest") {
                    hub.latest()
                        .map(|s| s.to_json())
                        .unwrap_or_else(|| "null".into())
                } else {
                    hub.capture("http_on_demand").to_json()
                }
            }),
        )
    }

    fn find(&self, target: &str) -> Option<&Route> {
        let path = target.split('?').next().unwrap_or(target);
        self.routes
            .iter()
            .filter(|r| path.starts_with(&r.prefix))
            .max_by_key(|r| r.prefix.len())
    }

    /// Number of mounted routes.
    pub fn routes_len(&self) -> usize {
        self.routes.len()
    }
}

impl<St: ContentStore> Service<HttpCodec> for RoutedService<St> {
    fn handle(&self, ctx: &ConnCtx, req: Request) -> Action<Response> {
        let Some(route) = self.find(&req.target) else {
            return self.fallback.handle(ctx, req);
        };
        let keep_alive = req.keep_alive();
        if route.blocking {
            let handler = Arc::clone(&route.handler);
            let job = move || {
                let resp = handler(&req).with_keep_alive(keep_alive);
                if req.method == crate::types::Method::Head {
                    resp.head()
                } else {
                    resp
                }
            };
            if keep_alive {
                Action::Defer(Box::new(job))
            } else {
                Action::DeferClose(Box::new(job))
            }
        } else {
            let resp = (route.handler)(&req).with_keep_alive(keep_alive);
            let resp = if req.method == crate::types::Method::Head {
                resp.head()
            } else {
                resp
            };
            if keep_alive {
                Action::Reply(resp)
            } else {
                Action::ReplyClose(resp)
            }
        }
    }
}

/// A ready-made JSON-ish status page handler exposing a closure's text.
pub fn text_page(
    status: Status,
    body: impl Fn(&Request) -> String + Send + Sync + 'static,
) -> impl Fn(&Request) -> Response + Send + Sync + 'static {
    move |req: &Request| {
        let text = body(req);
        let mut resp = Response::error(status, req.version);
        resp.body = Arc::new(text.into_bytes());
        resp.headers = crate::types::Headers::new();
        resp.headers.push("Content-Type", "text/plain");
        resp
    }
}

/// Like [`text_page`] but served as `application/json`.
pub fn json_page(
    body: impl Fn(&Request) -> String + Send + Sync + 'static,
) -> impl Fn(&Request) -> Response + Send + Sync + 'static {
    move |req: &Request| {
        let text = body(req);
        let mut resp = Response::error(Status::Ok, req.version);
        resp.body = Arc::new(text.into_bytes());
        resp.headers = crate::types::Headers::new();
        resp.headers.push("Content-Type", "application/json");
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::MemStore;
    use crate::types::{Headers, Method, Version};
    use nserver_core::event::Priority;

    fn ctx() -> ConnCtx {
        ConnCtx {
            id: 1,
            peer: "t".into(),
            priority: Priority::HIGHEST,
        }
    }

    fn get(target: &str) -> Request {
        Request {
            method: Method::Get,
            target: target.into(),
            version: Version::Http11,
            headers: Headers::new(),
        }
    }

    fn service() -> RoutedService<MemStore> {
        let mut store = MemStore::new();
        store.insert("/static.txt", b"file bytes".to_vec());
        RoutedService::new(StaticFileService::new(store, None))
            .route("/api/hello", text_page(Status::Ok, |_| "hi there".into()))
            .route(
                "/api",
                text_page(Status::Ok, |r| format!("api root: {}", r.target)),
            )
            .route_blocking(
                "/api/slow",
                text_page(Status::Ok, |_| "computed slowly".into()),
            )
    }

    fn run(action: Action<Response>) -> Response {
        match action {
            Action::Reply(r) | Action::ReplyClose(r) => r,
            Action::Defer(job) | Action::DeferClose(job) => job(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn longest_prefix_wins() {
        let svc = service();
        let r = run(svc.handle(&ctx(), get("/api/hello")));
        assert_eq!(String::from_utf8_lossy(&r.body), "hi there");
        let r = run(svc.handle(&ctx(), get("/api/other")));
        assert!(String::from_utf8_lossy(&r.body).starts_with("api root"));
    }

    #[test]
    fn blocking_routes_defer() {
        let svc = service();
        let action = svc.handle(&ctx(), get("/api/slow/compute"));
        assert!(matches!(action, Action::Defer(_)));
        let r = run(action);
        assert_eq!(String::from_utf8_lossy(&r.body), "computed slowly");
    }

    #[test]
    fn unrouted_paths_fall_back_to_static_files() {
        let svc = service();
        let r = run(svc.handle(&ctx(), get("/static.txt")));
        assert_eq!(String::from_utf8_lossy(&r.body), "file bytes");
        let r = run(svc.handle(&ctx(), get("/missing")));
        assert_eq!(r.status, Status::NotFound);
    }

    #[test]
    fn query_strings_do_not_break_routing() {
        let svc = service();
        let r = run(svc.handle(&ctx(), get("/api/hello?x=1")));
        assert_eq!(String::from_utf8_lossy(&r.body), "hi there");
    }

    #[test]
    fn dynamic_handlers_see_the_request() {
        let svc = service();
        let r = run(svc.handle(&ctx(), get("/api/echo-target")));
        assert!(String::from_utf8_lossy(&r.body).contains("/api/echo-target"));
    }

    #[test]
    fn connection_close_propagates_through_routes() {
        let svc = service();
        let mut headers = Headers::new();
        headers.push("Connection", "close");
        let req = Request {
            method: Method::Get,
            target: "/api/hello".into(),
            version: Version::Http11,
            headers,
        };
        let action = svc.handle(&ctx(), req);
        assert!(matches!(action, Action::ReplyClose(_)));
    }

    #[test]
    fn head_requests_suppress_dynamic_bodies() {
        let svc = service();
        let req = Request {
            method: Method::Head,
            target: "/api/hello".into(),
            version: Version::Http11,
            headers: Headers::new(),
        };
        let r = run(svc.handle(&ctx(), req));
        assert!(r.head_only);
    }

    #[test]
    fn routes_len_counts_mounts() {
        assert_eq!(service().routes_len(), 3);
    }

    #[test]
    fn debug_snapshot_route_serves_json() {
        let hub = DiagHub::new(ServerStats::new_shared(), MetricsRegistry::enabled());
        let svc = RoutedService::new(StaticFileService::new(MemStore::new(), None))
            .debug_snapshot(hub.clone());
        // No capture yet: ?latest is null, a plain GET captures on demand.
        let r = run(svc.handle(&ctx(), get("/debug/snapshot?latest")));
        assert_eq!(String::from_utf8_lossy(&r.body), "null");
        let r = run(svc.handle(&ctx(), get("/debug/snapshot")));
        assert_eq!(r.headers.get("content-type"), Some("application/json"));
        let body = String::from_utf8_lossy(&r.body).into_owned();
        assert!(body.contains("\"reason\":\"http_on_demand\""));
        assert!(body.contains("\"counters\""));
        // The on-demand capture is now the stored latest.
        let r = run(svc.handle(&ctx(), get("/debug/snapshot?latest")));
        assert!(String::from_utf8_lossy(&r.body).contains("\"seq\":1"));
        assert_eq!(hub.snapshots_captured(), 1);
    }

    #[test]
    fn server_status_diag_includes_wired_families() {
        let hub = DiagHub::new(ServerStats::new_shared(), MetricsRegistry::enabled());
        let svc = RoutedService::new(StaticFileService::new(MemStore::new(), None))
            .server_status_diag(hub);
        let r = run(svc.handle(&ctx(), get("/server-status")));
        let body = String::from_utf8_lossy(&r.body).into_owned();
        assert!(body.contains("nserver_watchdog_triggers 0"));
        assert!(body.contains("nserver_trace_dropped_spans 0"));
    }

    #[test]
    fn server_status_exposes_prometheus_text() {
        let stats = ServerStats::new_shared();
        let metrics = MetricsRegistry::enabled();
        stats
            .connections_accepted
            .fetch_add(3, std::sync::atomic::Ordering::Relaxed);
        metrics.record_stage(nserver_core::metrics::Stage::Handle, 128);
        let svc = RoutedService::new(StaticFileService::new(MemStore::new(), None))
            .server_status(Arc::clone(&stats), Arc::clone(&metrics));
        let r = run(svc.handle(&ctx(), get("/server-status")));
        let body = String::from_utf8_lossy(&r.body).into_owned();
        assert_eq!(r.status, Status::Ok);
        assert!(body.contains("nserver_connections_accepted 3"));
        assert!(body.contains("nserver_stage_latency_us_bucket{stage=\"handle\""));
        assert!(body.contains("quantile=\"0.99\""));
    }
}
