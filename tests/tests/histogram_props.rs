//! Property tests for the O11 logarithmic latency histogram.
//!
//! The histogram is the paper's profiling instrument promoted into the
//! core: power-of-two buckets, lock-free recording, snapshot merges
//! across per-thread shards, and an interpolation-free quantile
//! estimator. The properties pin the contracts the exposition layer
//! leans on: every sample lands in the bucket whose bounds contain it,
//! the extremes (0 and `u64::MAX`) saturate into the first and last
//! bucket rather than wrapping, quantiles are monotone in `q`, and
//! shard merging is associative and commutative so per-thread shards
//! can be folded in any order.

use nserver_core::metrics::{bucket_of, bucket_upper_us, Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// An arbitrary snapshot, including saturation-edge bucket counts.
fn arb_snapshot() -> impl Strategy<Value = HistogramSnapshot> {
    (
        prop::collection::vec(
            prop_oneof![
                0u64..1_000,
                0u64..1_000,
                0u64..1_000,
                prop_oneof![Just(u64::MAX), Just(u64::MAX - 1), any::<u64>()],
            ],
            64,
        ),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(v, count, sum_us)| {
            let mut buckets = [0u64; 64];
            buckets.copy_from_slice(&v);
            HistogramSnapshot {
                buckets,
                count,
                sum_us,
            }
        })
}

/// Microsecond values weighted toward the interesting edges.
fn arb_us() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..10_000_000,
        0u64..10_000_000,
        any::<u64>(),
        Just(0u64),
        Just(1u64),
        Just(u64::MAX),
    ]
}

proptest! {
    /// Every value lands inside its bucket's bounds: at most the upper
    /// bound, and strictly above the previous bucket's upper bound.
    #[test]
    fn bucket_bounds_contain_their_samples(us in arb_us()) {
        let i = bucket_of(us);
        prop_assert!(i < 64);
        prop_assert!(us <= bucket_upper_us(i), "{us} above bucket {i} upper");
        if i > 0 {
            prop_assert!(
                us > bucket_upper_us(i - 1),
                "{us} not above bucket {} upper {}",
                i - 1,
                bucket_upper_us(i - 1)
            );
        }
    }

    /// Bucket assignment is monotone: a larger value never lands in an
    /// earlier bucket, and bucket upper bounds strictly increase.
    #[test]
    fn bucketing_is_monotone(a in arb_us(), b in arb_us()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_of(lo) <= bucket_of(hi));
        prop_assert!(bucket_upper_us(bucket_of(lo)) <= bucket_upper_us(bucket_of(hi)));
    }

    /// The extremes saturate: 0 and 1 share the first bucket, `u64::MAX`
    /// pins the last, and a histogram holding only saturated samples
    /// reports `u64::MAX` at every quantile instead of wrapping.
    #[test]
    fn extremes_saturate(n in 1usize..50) {
        prop_assert_eq!(bucket_of(0), 0);
        prop_assert_eq!(bucket_of(1), 0);
        prop_assert_eq!(bucket_of(u64::MAX), 63);
        prop_assert_eq!(bucket_upper_us(63), u64::MAX);
        let h = Histogram::new();
        for _ in 0..n {
            h.record_us(u64::MAX);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, n as u64);
        prop_assert_eq!(s.buckets[63], n as u64);
        prop_assert_eq!(s.quantile_us(0.0), u64::MAX);
        prop_assert_eq!(s.quantile_us(0.5), u64::MAX);
        prop_assert_eq!(s.quantile_us(1.0), u64::MAX);
    }

    /// Quantiles are monotone in `q`, bracketed by the recorded extremes'
    /// bucket bounds, and every reported quantile is the upper bound of a
    /// bucket that actually holds samples.
    #[test]
    fn quantiles_are_monotone(
        samples in prop::collection::vec(arb_us(), 1..200),
        qs_raw in prop::collection::vec((0u32..=1000).prop_map(|n| f64::from(n) / 1000.0), 2..8),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record_us(s);
        }
        let snap = h.snapshot();
        let mut qs = qs_raw;
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0u64;
        for &q in &qs {
            let v = snap.quantile_us(q);
            prop_assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
            prop_assert!(
                snap.buckets[bucket_of(v)] > 0,
                "quantile({q}) = {v} points at an empty bucket"
            );
            prev = v;
        }
        let hi = *samples.iter().max().unwrap();
        prop_assert!(snap.quantile_us(1.0) <= bucket_upper_us(bucket_of(hi)));
        let lo = *samples.iter().min().unwrap();
        prop_assert!(snap.quantile_us(0.0) >= lo.min(bucket_upper_us(bucket_of(lo))));
    }

    /// Shard merging is commutative and associative — even with counts
    /// at the saturation edge, so fold order over per-thread shards is
    /// irrelevant.
    #[test]
    fn merge_is_associative_and_commutative(
        a in arb_snapshot(),
        b in arb_snapshot(),
        c in arb_snapshot(),
    ) {
        prop_assert_eq!(a.merge(b), b.merge(a));
        prop_assert_eq!(a.merge(b).merge(c), a.merge(b.merge(c)));
    }

    /// The empty snapshot is the merge identity, and merging accumulates
    /// counts (saturating) — a merged pair answers quantiles like one
    /// histogram that saw both sample streams.
    #[test]
    fn merge_identity_and_accumulation(
        xs in prop::collection::vec(0u64..1_000_000, 1..100),
        ys in prop::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let (ha, hb, hall) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &x in &xs {
            ha.record_us(x);
            hall.record_us(x);
        }
        for &y in &ys {
            hb.record_us(y);
            hall.record_us(y);
        }
        let (a, b) = (ha.snapshot(), hb.snapshot());
        prop_assert_eq!(a.merge(HistogramSnapshot::default()), a);
        let merged = a.merge(b);
        prop_assert_eq!(merged, hall.snapshot());
        prop_assert_eq!(merged.count, (xs.len() + ys.len()) as u64);
        for q in [0.0, 0.5, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile_us(q), hall.snapshot().quantile_us(q));
        }
    }
}
