//! Property-based tests over the core policy structures: the
//! priority-quota scheduler, the overload watermark, and the timer wheel.

use std::time::{Duration, Instant};

use nserver_core::event::Priority;
use nserver_core::overload::Watermark;
use nserver_core::queue::{EventQueue, FifoQueue};
use nserver_core::scheduler::PriorityQuotaQueue;
use nserver_core::timer::TimerWheel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FIFO preserves insertion order exactly.
    #[test]
    fn fifo_preserves_order(items in proptest::collection::vec(any::<u32>(), 0..200)) {
        let mut q = FifoQueue::new();
        for &i in &items {
            q.push(i, Priority(0));
        }
        let mut out = Vec::new();
        while let Some(v) = q.pop() {
            out.push(v);
        }
        prop_assert_eq!(out, items);
    }

    /// Conservation: every item pushed into the priority queue is popped
    /// exactly once, regardless of quota configuration and priorities.
    #[test]
    fn priority_queue_conserves_items(
        quotas in proptest::collection::vec(1u32..8, 1..5),
        items in proptest::collection::vec((any::<u32>(), 0u8..8), 0..300),
    ) {
        let levels = quotas.len();
        let mut q = PriorityQuotaQueue::new(quotas);
        for &(v, p) in &items {
            q.push(v, Priority(p));
        }
        prop_assert_eq!(q.len(), items.len());
        let mut out = Vec::new();
        while let Some(v) = q.pop() {
            out.push(v);
        }
        prop_assert_eq!(out.len(), items.len());
        out.sort_unstable();
        let mut expect: Vec<u32> = items.iter().map(|&(v, _)| v).collect();
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
        let _ = levels;
    }

    /// FIFO within each priority level: two items of the same level pop
    /// in push order.
    #[test]
    fn priority_queue_fifo_within_level(
        items in proptest::collection::vec((any::<u32>(), 0u8..3), 1..200),
    ) {
        let mut q = PriorityQuotaQueue::new(vec![4, 2, 1]);
        for (i, &(v, p)) in items.iter().enumerate() {
            q.push((i, v), Priority(p));
        }
        let mut last_index_per_level = [None::<usize>; 3];
        while let Some((i, _)) = q.pop() {
            let level = (items[i].1 as usize).min(2);
            if let Some(prev) = last_index_per_level[level] {
                prop_assert!(i > prev, "level {level} reordered: {prev} then {i}");
            }
            last_index_per_level[level] = Some(i);
        }
    }

    /// Starvation freedom: under any quota configuration, when every
    /// level is backlogged, every level receives service within one
    /// round (sum of quotas) of pops.
    #[test]
    fn no_level_starves(quotas in proptest::collection::vec(1u32..6, 2..5)) {
        let levels = quotas.len();
        let round: u32 = quotas.iter().sum();
        let mut q = PriorityQuotaQueue::new(quotas);
        // Saturate every level.
        for i in 0..(round as usize * 10) {
            for level in 0..levels {
                q.push((level, i), Priority(level as u8));
            }
        }
        // In any window of `round` pops, every level appears.
        let mut window: Vec<usize> = Vec::new();
        for _ in 0..(round * 4) {
            let (level, _) = q.pop().expect("saturated");
            window.push(level);
            if window.len() == round as usize {
                for l in 0..levels {
                    prop_assert!(
                        window.contains(&l),
                        "level {l} starved in a full round: {window:?}"
                    );
                }
                window.clear();
            }
        }
    }

    /// Watermark hysteresis invariants: never paused below low+1, always
    /// paused at/above high until drained, and the pause state is a pure
    /// function of the crossing history.
    #[test]
    fn watermark_invariants(
        lens in proptest::collection::vec(0usize..50, 1..200),
        low in 0usize..10,
        span in 1usize..20,
    ) {
        let high = low + span;
        let mut wm = Watermark::new(high, low);
        let mut model_paused = false;
        for &len in &lens {
            let paused = wm.observe(len);
            // Reference model.
            if model_paused {
                if len <= low {
                    model_paused = false;
                }
            } else if len >= high {
                model_paused = true;
            }
            prop_assert_eq!(paused, model_paused);
            if len >= high {
                prop_assert!(paused);
            }
            if len <= low {
                prop_assert!(!paused);
            }
        }
    }

    /// Timer wheel: every scheduled timer fires exactly once, never
    /// before its deadline.
    #[test]
    fn timers_fire_once_and_not_early(
        delays in proptest::collection::vec(0u64..500, 1..60),
    ) {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(8, Duration::from_millis(10), t0);
        for (i, &d) in delays.iter().enumerate() {
            wheel.schedule(t0, Duration::from_millis(d), (i, d));
        }
        let mut fired = vec![false; delays.len()];
        let mut clock = t0;
        for step in 0..200u64 {
            clock = t0 + Duration::from_millis(step * 5);
            for (i, d) in wheel.poll(clock) {
                prop_assert!(
                    clock.duration_since(t0) >= Duration::from_millis(d),
                    "timer {i} fired early"
                );
                prop_assert!(!fired[i], "timer {i} fired twice");
                fired[i] = true;
            }
        }
        let _ = clock;
        prop_assert!(fired.iter().all(|&f| f), "some timer never fired");
        prop_assert!(wheel.is_empty());
    }
}
