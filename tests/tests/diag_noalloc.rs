//! Allocation pin for the O11 = No / disabled-diagnostics hot path.
//!
//! The worker-state stamps and the queue-wait accounting ride the
//! per-event hot path, so their disabled forms must be free: zero heap
//! allocations per stamp and per queue push/pop once the structures are
//! warm. A counting `#[global_allocator]` (this binary only) measures
//! the steady state directly; any accidental `String`, boxed closure or
//! `Vec` growth on the disabled path fails the pin.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use nserver_core::diag::{attach_worker, stamp_idle, stamp_stage, WorkerRole, WorkerStateTable};
use nserver_core::event::Priority;
use nserver_core::metrics::{MetricsRegistry, Stage};
use nserver_core::queue::{BlockingQueue, FifoQueue};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Count allocations across `f`. The tests in this binary run serially
/// (each takes the same implicit measurement lock) so counts are exact.
fn allocations_during(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

// The two tests must not run concurrently — the counter is global.
// A process-wide mutex serializes them.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Worker-table stamping is allocation-free after attach: a thousand
/// stage/idle stamp pairs perform zero heap allocations. This is the
/// cost contract that lets the stamps ride the per-event hot path even
/// in production mode.
#[test]
fn worker_state_stamps_do_not_allocate() {
    let _guard = SERIAL.lock().unwrap();
    let table = WorkerStateTable::new(4);
    assert!(attach_worker(&table, WorkerRole::Worker));
    // Warm the thread-local attachment and the seqlock row.
    stamp_stage(Stage::Handle, 1);
    stamp_idle();

    let allocs = allocations_during(|| {
        for i in 0..1_000u64 {
            stamp_stage(Stage::Handle, i);
            stamp_idle();
        }
    });
    nserver_core::diag::detach_worker();
    assert_eq!(allocs, 0, "worker stamps allocated on the hot path");
}

/// With a disabled metrics registry attached (O11 = No), queue push/pop
/// is allocation-free in steady state: the `Stamped` envelope carries
/// `None`, no clock is read, and the warm ring never grows.
#[test]
fn disabled_queue_wait_accounting_does_not_allocate() {
    let _guard = SERIAL.lock().unwrap();
    let queue: std::sync::Arc<BlockingQueue<u64>> = BlockingQueue::new(Box::new(FifoQueue::new()));
    queue.set_wait_metrics(MetricsRegistry::disabled());
    // Warm the VecDeque past the steady-state occupancy.
    for i in 0..16 {
        queue.push(i, Priority::HIGHEST);
    }
    while queue.try_pop().is_some() {}

    let allocs = allocations_during(|| {
        for i in 0..1_000u64 {
            queue.push(i, Priority::HIGHEST);
            assert_eq!(queue.try_pop(), Some(i));
        }
    });
    assert_eq!(
        allocs, 0,
        "disabled queue-wait accounting allocated per event"
    );
}
