//! Failure injection: the framework must survive hostile clients and
//! faulty application hooks without losing its worker pool or wedging
//! other connections.

use std::time::{Duration, Instant};

use bytes::BytesMut;
use nserver_core::options::{Mode, ServerOptions, ThreadAllocation};
use nserver_core::pipeline::{Action, Codec, ConnCtx, ProtocolError, Service};
use nserver_core::server::ServerBuilder;
use nserver_core::transport::{mem, ReadOutcome, StreamIo};

struct LineCodec;

impl Codec for LineCodec {
    type Request = String;
    type Response = String;

    fn decode(&self, buf: &mut BytesMut) -> Result<Option<String>, ProtocolError> {
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                let line = buf.split_to(i + 1);
                let s = String::from_utf8_lossy(&line[..i]).into_owned();
                if s.contains('\u{0}') {
                    return Err(ProtocolError("NUL in command".into()));
                }
                Ok(Some(s))
            }
            None => Ok(None),
        }
    }

    fn encode(&self, r: &String, out: &mut BytesMut) -> Result<(), ProtocolError> {
        out.extend_from_slice(r.as_bytes());
        out.extend_from_slice(b"\n");
        Ok(())
    }
}

/// A service whose hook panics on demand — a buggy application.
struct FaultyService;

impl Service<LineCodec> for FaultyService {
    fn handle(&self, _ctx: &ConnCtx, req: String) -> Action<String> {
        if req == "panic" {
            panic!("application bug");
        }
        Action::Reply(format!("ok {req}"))
    }
}

fn read_until(stream: &mut mem::MemStream, needle: &str) -> String {
    let mut acc = Vec::new();
    let mut buf = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        match stream.try_read(&mut buf).unwrap() {
            ReadOutcome::Data(n) => acc.extend_from_slice(&buf[..n]),
            ReadOutcome::WouldBlock => std::thread::sleep(Duration::from_micros(200)),
            ReadOutcome::Closed => break,
        }
        if String::from_utf8_lossy(&acc).contains(needle) {
            break;
        }
    }
    String::from_utf8_lossy(&acc).into_owned()
}

#[test]
fn panicking_hook_does_not_kill_the_worker_pool() {
    let opts = ServerOptions {
        thread_allocation: ThreadAllocation::Static { threads: 2 },
        mode: Mode::Debug,
        ..ServerOptions::default()
    };
    let (listener, connector) = mem::listener("faulty");
    let server = ServerBuilder::new(opts, LineCodec, FaultyService)
        .unwrap()
        .serve(listener);

    // Trip the panic more times than there are workers, on separate
    // connections; the pool must survive every one of them.
    for _ in 0..6 {
        let mut c = connector.connect();
        c.try_write(b"panic\n").unwrap();
        // The framework fails the request and closes the offending
        // connection (like a protocol error), isolating the fault.
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut buf = [0u8; 64];
        loop {
            match c.try_read(&mut buf).unwrap() {
                ReadOutcome::Closed => break,
                _ if Instant::now() > deadline => panic!("conn not closed"),
                _ => std::thread::sleep(Duration::from_millis(1)),
            }
        }
    }
    assert_eq!(server.live_workers(), 2, "workers died on hook panic");
    assert_eq!(server.stats().protocol_errors, 6);
    // The caught panics are also accounted separately from generic
    // protocol errors in the stats snapshot.
    assert_eq!(server.stats().handler_panics, 6);

    // And the server still answers normal requests afterwards.
    let mut fresh = connector.connect();
    fresh.try_write(b"fresh\n").unwrap();
    let text = read_until(&mut fresh, "ok fresh");
    assert!(text.contains("ok fresh"));
    server.shutdown();
}

#[test]
fn garbage_on_one_connection_does_not_affect_others() {
    let (listener, connector) = mem::listener("garbage");
    let server = ServerBuilder::new(
        ServerOptions {
            mode: Mode::Debug,
            ..ServerOptions::default()
        },
        LineCodec,
        FaultyService,
    )
    .unwrap()
    .serve(listener);

    let mut evil = connector.connect();
    let mut good = connector.connect();

    // Protocol poison on the evil connection.
    evil.try_write(b"bad\x00command\n").unwrap();
    // Interleave with a healthy exchange.
    good.try_write(b"hello\n").unwrap();
    let text = read_until(&mut good, "ok hello");
    assert!(text.contains("ok hello"));

    // The poisoned connection gets closed...
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut closed = false;
    let mut buf = [0u8; 64];
    while Instant::now() < deadline {
        if matches!(evil.try_read(&mut buf).unwrap(), ReadOutcome::Closed) {
            closed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(closed);
    assert_eq!(server.stats().protocol_errors, 1);
    // ...and the good one keeps working.
    good.try_write(b"again\n").unwrap();
    let text = read_until(&mut good, "ok again");
    assert!(text.contains("ok again"));
    server.shutdown();
}

#[test]
fn half_open_flood_is_bounded_by_trickle_of_partial_requests() {
    // Clients that send partial requests and stall must not consume
    // worker time or block completions for healthy clients.
    let (listener, connector) = mem::listener("slowloris");
    let server = ServerBuilder::new(ServerOptions::default(), LineCodec, FaultyService)
        .unwrap()
        .serve(listener);

    let mut stalled: Vec<_> = (0..16)
        .map(|i| {
            let mut c = connector.connect();
            c.try_write(format!("never-finished-{i}").as_bytes())
                .unwrap();
            c
        })
        .collect();
    let mut good = connector.connect();
    let t0 = Instant::now();
    good.try_write(b"urgent\n").unwrap();
    let text = read_until(&mut good, "ok urgent");
    assert!(text.contains("ok urgent"));
    assert!(
        t0.elapsed() < Duration::from_secs(1),
        "healthy client starved behind stalled ones"
    );
    // Stalled connections can still complete later.
    stalled[0].try_write(b"\n").unwrap();
    let text = read_until(&mut stalled[0], "ok never-finished-0");
    assert!(text.contains("ok never-finished-0"));
    server.shutdown();
}
