//! Deliberately broken service wrappers — the harness's own soundness
//! check.
//!
//! A conformance harness that never fires is indistinguishable from one
//! that checks nothing. The mutation tests inject a known legality bug
//! into the real service through these wrappers and assert the models
//! catch it, shrink it, and emit a replayable counterexample. Each
//! mutation is chosen to be *observable in the trace alphabet the models
//! check*: response bytes for HTTP, reply codes for FTP.

use std::sync::Arc;

use nserver_core::pipeline::{Action, ConnCtx, Service};
use nserver_ftp::{FtpCodec, FtpRequest, FtpService};
use nserver_http::{HttpCodec, Request, Response, Status};

/// Which HTTP legality bug to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpMutation {
    /// 404s are rewritten into fabricated 200s — the model's fixture
    /// lookup disagrees on both the status line and the body bytes.
    MissBecomesOk,
    /// The service claims `Connection: keep-alive` even when the
    /// exchange decided to close — the header bytes diverge, and so does
    /// everything the model refuses to expect after a close.
    DropConnectionClose,
}

/// An HTTP service with `mutation` injected into every response path,
/// including the deferred (cache-miss) ones.
pub struct MutantHttp<S> {
    inner: S,
    mutation: HttpMutation,
}

impl<S> MutantHttp<S> {
    pub fn new(inner: S, mutation: HttpMutation) -> Self {
        Self { inner, mutation }
    }
}

fn mutate_http(m: HttpMutation, resp: Response) -> Response {
    match m {
        HttpMutation::MissBecomesOk => {
            if resp.status != Status::NotFound {
                return resp;
            }
            let mut fake = Response::ok(
                Arc::new(b"<html>phantom page</html>".to_vec()),
                "text/html",
                resp.version,
            )
            .with_keep_alive(resp.keep_alive);
            if resp.head_only {
                fake = fake.head();
            }
            fake
        }
        HttpMutation::DropConnectionClose => resp.with_keep_alive(true),
    }
}

fn map_action<R: Send + 'static>(
    action: Action<R>,
    mutate: impl Fn(R) -> R + Send + 'static,
) -> Action<R> {
    match action {
        Action::Reply(r) => Action::Reply(mutate(r)),
        Action::ReplyClose(r) => Action::ReplyClose(mutate(r)),
        Action::Defer(job) => Action::Defer(Box::new(move || mutate(job()))),
        Action::DeferClose(job) => Action::DeferClose(Box::new(move || mutate(job()))),
        passthrough @ (Action::NoReply | Action::Close) => passthrough,
    }
}

impl<S: Service<HttpCodec>> Service<HttpCodec> for MutantHttp<S> {
    fn handle(&self, ctx: &ConnCtx, req: Request) -> Action<Response> {
        let m = self.mutation;
        map_action(self.inner.handle(ctx, req), move |r| mutate_http(m, r))
    }

    fn on_open(&self, ctx: &ConnCtx) -> Option<Response> {
        self.inner.on_open(ctx)
    }

    fn on_close(&self, ctx: &ConnCtx) {
        self.inner.on_close(ctx);
    }
}

/// Which FTP legality bug to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtpMutation {
    /// Every `530 Not logged in` becomes `230 Logged in` — an
    /// authentication bypass visible as a reply-code mismatch.
    LoginAlwaysSucceeds,
}

/// The real FTP service with `mutation` injected into every reply path.
pub struct MutantFtp {
    inner: FtpService,
    mutation: FtpMutation,
}

impl MutantFtp {
    pub fn new(inner: FtpService, mutation: FtpMutation) -> Self {
        Self { inner, mutation }
    }
}

fn mutate_ftp(m: FtpMutation, reply: String) -> String {
    match m {
        FtpMutation::LoginAlwaysSucceeds => {
            if let Some(rest) = reply.strip_prefix("530") {
                format!("230{rest}")
            } else {
                reply
            }
        }
    }
}

impl Service<FtpCodec> for MutantFtp {
    fn handle(&self, ctx: &ConnCtx, req: FtpRequest) -> Action<String> {
        let m = self.mutation;
        map_action(self.inner.handle(ctx, req), move |r| mutate_ftp(m, r))
    }

    fn on_open(&self, ctx: &ConnCtx) -> Option<String> {
        self.inner
            .on_open(ctx)
            .map(|r| mutate_ftp(self.mutation, r))
    }

    fn on_close(&self, ctx: &ConnCtx) {
        self.inner.on_close(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nserver_http::Version;

    #[test]
    fn miss_becomes_ok_preserves_framing_decisions() {
        let resp = Response::error(Status::NotFound, Version::Http11)
            .with_keep_alive(false)
            .head();
        let mutated = mutate_http(HttpMutation::MissBecomesOk, resp);
        assert_eq!(mutated.status, Status::Ok);
        assert!(!mutated.keep_alive, "close decision must survive");
        assert!(mutated.head_only, "HEAD suppression must survive");
        let ok = Response::ok(Arc::new(vec![]), "text/plain", Version::Http11);
        assert_eq!(
            mutate_http(HttpMutation::MissBecomesOk, ok).status,
            Status::Ok,
            "non-404s pass through"
        );
    }

    #[test]
    fn drop_connection_close_lies_in_the_header() {
        let resp = Response::error(Status::Forbidden, Version::Http11).with_keep_alive(false);
        assert!(mutate_http(HttpMutation::DropConnectionClose, resp).keep_alive);
    }

    #[test]
    fn login_bypass_rewrites_only_530() {
        let m = FtpMutation::LoginAlwaysSucceeds;
        assert_eq!(
            mutate_ftp(m, "530 Not logged in.\r\n".into()),
            "230 Not logged in.\r\n"
        );
        assert_eq!(mutate_ftp(m, "221 Bye.\r\n".into()), "221 Bye.\r\n");
    }
}
