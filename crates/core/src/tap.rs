//! Conformance trace tap: transport wrappers that record every observable
//! byte-level event of each accepted connection as an ordered trace.
//!
//! The tap sits **outside** the fault layer (`Tap ∘ Faulty ∘ Mem`), so what
//! it records is exactly what the framework observed: reads are post-fault
//! (corrupted / short / suppressed bytes as the decoder saw them), writes
//! are the bytes the transport actually accepted, and injected resets show
//! up as the I/O errors the reactor had to handle. The conformance crate
//! replays these traces against executable protocol models; anything the
//! model rejects is either a framework bug or a model bug — both worth
//! knowing about.
//!
//! The wrappers mirror [`crate::fault`]'s delegation pattern: a
//! [`TapListener`] stamps each accepted stream with a fresh per-connection
//! trace, [`TapStream`] records the I/O events, and [`TapPoller`] is a pure
//! pass-through.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::fault::FaultPlan;
use crate::transport::{Interest, Listener, PollEvent, Poller, ReadOutcome, StreamIo, Waker};

/// One observable event on a tapped connection, in occurrence order.
///
/// This is the trace alphabet the conformance models consume. `Read` and
/// `Wrote` carry the actual bytes; error events carry the error text so a
/// model can distinguish injected resets from other failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TapEvent {
    /// Bytes the server read from the stream (post-fault: what the
    /// decoder actually consumed).
    Read(Vec<u8>),
    /// The peer closed its write side (`ReadOutcome::Closed`): half-close
    /// observed by the server.
    ReadEof,
    /// A read attempt failed hard (e.g. injected reset).
    ReadError(String),
    /// Bytes the transport accepted from the server ("on the wire").
    Wrote(Vec<u8>),
    /// A write attempt failed hard. A conforming server stops writing once
    /// a connection's sink is dead, so at most one of these may appear —
    /// any `Wrote`/`WriteError` *after* the first hard error is a
    /// model violation (a reply written to a reset peer).
    WriteError(String),
    /// The server shut the stream down.
    Shutdown,
    /// The server half-closed: FIN sent, read side kept open. The stamp
    /// that distinguishes a FIN-first lingering close (this, then reads,
    /// then `Shutdown`) from a hard close (`Shutdown` with no FIN).
    ShutdownWrite,
}

/// Causal link from a secondary (data) connection's trace back to the
/// control connection that announced it (FTP PASV/PORT).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataParent {
    /// `accept_index` of the owning control connection's trace.
    pub control_accept_index: u64,
    /// 1-based ordinal of the transfer attempt within that control
    /// connection (each listener-consuming transfer command ticks it,
    /// whether or not a data socket was ultimately accepted).
    pub transfer_ordinal: u32,
}

/// The ordered observable trace of one accepted connection.
#[derive(Debug, Clone)]
pub struct ConnTrace {
    /// 1-based accept index (aligned with [`FaultPlan::profile_for`]).
    /// Data-connection traces inherit their parent's index so violations
    /// attribute to the control connection that owns the transfer.
    pub accept_index: u64,
    /// Peer label reported by the transport.
    pub peer: String,
    /// Debug rendering of the injected fault profile, `"Clean"` when the
    /// tap wraps an un-faulted transport.
    pub profile: String,
    /// The events, in occurrence order.
    pub events: Vec<TapEvent>,
    /// Log-global sequence number of each event, aligned with `events`.
    /// All traces opened by one [`TraceLog`] share a single counter, so
    /// cross-connection ordering (e.g. "data socket closed before the
    /// control 226 was written") is decidable. Hand-built traces may
    /// leave this empty; ordering checks are then skipped.
    pub seqs: Vec<u64>,
    /// `Some` when this is a secondary (data) connection trace.
    pub parent: Option<DataParent>,
}

impl ConnTrace {
    /// Build a trace outside any [`TraceLog`] (tests and model fixtures):
    /// no sequence stamps, no parent.
    pub fn synthetic(
        accept_index: u64,
        peer: &str,
        profile: &str,
        events: Vec<TapEvent>,
    ) -> ConnTrace {
        ConnTrace {
            accept_index,
            peer: peer.to_string(),
            profile: profile.to_string(),
            events,
            seqs: Vec::new(),
            parent: None,
        }
    }

    /// True for secondary (data) connection traces.
    pub fn is_data(&self) -> bool {
        self.parent.is_some()
    }

    /// Log-global sequence number of the last recorded event, if stamped.
    pub fn last_seq(&self) -> Option<u64> {
        self.seqs.last().copied()
    }

    /// Sequence number of the `Wrote` event that carried the outbound
    /// byte at `offset` (an index into [`ConnTrace::outbound`]). `None`
    /// when the offset was never written or the trace is unstamped.
    pub fn seq_at_outbound_offset(&self, offset: usize) -> Option<u64> {
        let mut end = 0usize;
        for (i, e) in self.events.iter().enumerate() {
            if let TapEvent::Wrote(b) = e {
                end += b.len();
                if offset < end {
                    return self.seqs.get(i).copied();
                }
            }
        }
        None
    }
    /// All bytes the server read, concatenated in order (the decoder's
    /// exact input stream).
    pub fn inbound(&self) -> Vec<u8> {
        let mut v = Vec::new();
        for e in &self.events {
            if let TapEvent::Read(b) = e {
                v.extend_from_slice(b);
            }
        }
        v
    }

    /// All bytes the server put on the wire, concatenated in order (the
    /// peer's exact view of the response stream).
    pub fn outbound(&self) -> Vec<u8> {
        let mut v = Vec::new();
        for e in &self.events {
            if let TapEvent::Wrote(b) = e {
                v.extend_from_slice(b);
            }
        }
        v
    }

    /// True if any read or write attempt failed hard (injected reset or
    /// similar) at some point in the trace.
    pub fn saw_io_error(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, TapEvent::ReadError(_) | TapEvent::WriteError(_)))
    }

    /// True if the peer's write side was seen closed (half-close).
    pub fn saw_eof(&self) -> bool {
        self.events.iter().any(|e| matches!(e, TapEvent::ReadEof))
    }
}

/// Writable handle onto one trace in a [`TraceLog`]: pushes events
/// stamped with the log-global sequence counter. Cheap to clone and safe
/// to move into data-transfer closures.
#[derive(Clone)]
pub struct TraceHandle {
    trace: Arc<Mutex<ConnTrace>>,
    seq: Arc<AtomicU64>,
}

impl TraceHandle {
    /// Append `ev`, stamping it with the next log-global sequence number.
    /// The stamp is drawn inside the trace lock so each trace's `seqs`
    /// stay strictly increasing.
    pub fn push(&self, ev: TapEvent) {
        let mut t = self.trace.lock();
        t.seqs.push(self.seq.fetch_add(1, Ordering::Relaxed));
        t.events.push(ev);
    }

    /// Append a `ReadEof` unless one was already observed (the reactor may
    /// poll a half-closed stream repeatedly; one EOF event suffices).
    pub fn push_eof_once(&self) {
        let mut t = self.trace.lock();
        if !t.events.iter().any(|e| matches!(e, TapEvent::ReadEof)) {
            t.seqs.push(self.seq.fetch_add(1, Ordering::Relaxed));
            t.events.push(TapEvent::ReadEof);
        }
    }
}

/// Shared, clonable log of every connection trace a [`TapListener`]
/// produced, plus accept-time failures. Also the registration point for
/// secondary (data) connection traces via [`TraceLog::open_data`].
#[derive(Clone, Default)]
pub struct TraceLog {
    conns: Arc<Mutex<Vec<Arc<Mutex<ConnTrace>>>>>,
    accept_failures: Arc<Mutex<Vec<u64>>>,
    seq: Arc<AtomicU64>,
}

impl TraceLog {
    /// Fresh empty log.
    pub fn new() -> Self {
        Self::default()
    }

    fn open(&self, accept_index: u64, peer: String, profile: String) -> TraceHandle {
        let trace = Arc::new(Mutex::new(ConnTrace {
            accept_index,
            peer,
            profile,
            events: Vec::new(),
            seqs: Vec::new(),
            parent: None,
        }));
        self.conns.lock().push(Arc::clone(&trace));
        TraceHandle {
            trace,
            seq: Arc::clone(&self.seq),
        }
    }

    /// Open a trace for a secondary (data) connection owned by the
    /// `conn_ord`-th *successfully accepted* primary connection (1-based
    /// — the reactor's `ConnId` order, which counts only successful
    /// accepts, unlike `accept_index` which also counts injected accept
    /// failures). `ordinal` is the 1-based transfer attempt within that
    /// connection. Returns `None` if no such primary trace exists yet.
    pub fn open_data(&self, conn_ord: u64, ordinal: u32, peer: String) -> Option<TraceHandle> {
        let conns = self.conns.lock();
        let parent = conns
            .iter()
            .filter(|t| t.lock().parent.is_none())
            .nth(usize::try_from(conn_ord.checked_sub(1)?).ok()?)?;
        let (accept_index, profile) = {
            let p = parent.lock();
            (p.accept_index, p.profile.clone())
        };
        drop(conns);
        let trace = Arc::new(Mutex::new(ConnTrace {
            accept_index,
            peer,
            profile,
            events: Vec::new(),
            seqs: Vec::new(),
            parent: Some(DataParent {
                control_accept_index: accept_index,
                transfer_ordinal: ordinal,
            }),
        }));
        self.conns.lock().push(Arc::clone(&trace));
        Some(TraceHandle {
            trace,
            seq: Arc::clone(&self.seq),
        })
    }

    fn record_accept_failure(&self, accept_index: u64) {
        self.accept_failures.lock().push(accept_index);
    }

    /// Number of connections traced so far.
    pub fn len(&self) -> usize {
        self.conns.lock().len()
    }

    /// True when no connection has been traced.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accept indices that failed at accept time (injected accept faults).
    pub fn accept_failures(&self) -> Vec<u64> {
        self.accept_failures.lock().clone()
    }

    /// Deep-copy every per-connection trace in accept order. Traces of
    /// still-live connections reflect events so far.
    pub fn snapshot(&self) -> Vec<ConnTrace> {
        self.conns.lock().iter().map(|t| t.lock().clone()).collect()
    }
}

/// [`StreamIo`] wrapper recording each I/O event into the connection trace.
pub struct TapStream<S> {
    inner: S,
    trace: TraceHandle,
    shutdown_logged: bool,
}

impl<S: StreamIo> StreamIo for TapStream<S> {
    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<ReadOutcome> {
        match self.inner.try_read(buf) {
            Ok(ReadOutcome::Data(n)) => {
                self.trace.push(TapEvent::Read(buf[..n].to_vec()));
                Ok(ReadOutcome::Data(n))
            }
            Ok(ReadOutcome::WouldBlock) => Ok(ReadOutcome::WouldBlock),
            Ok(ReadOutcome::Closed) => {
                self.trace.push_eof_once();
                Ok(ReadOutcome::Closed)
            }
            Err(e) => {
                self.trace.push(TapEvent::ReadError(e.to_string()));
                Err(e)
            }
        }
    }

    fn try_write(&mut self, data: &[u8]) -> io::Result<usize> {
        match self.inner.try_write(data) {
            Ok(0) => Ok(0),
            Ok(n) => {
                self.trace.push(TapEvent::Wrote(data[..n].to_vec()));
                Ok(n)
            }
            Err(e) => {
                self.trace.push(TapEvent::WriteError(e.to_string()));
                Err(e)
            }
        }
    }

    fn peer_label(&self) -> String {
        self.inner.peer_label()
    }

    fn shutdown(&mut self) {
        if !self.shutdown_logged {
            self.shutdown_logged = true;
            self.trace.push(TapEvent::Shutdown);
        }
        self.inner.shutdown();
    }

    fn shutdown_write(&mut self) {
        self.trace.push(TapEvent::ShutdownWrite);
        self.inner.shutdown_write();
    }
}

/// [`Poller`] wrapper: pure delegation to the inner poller.
pub struct TapPoller<P> {
    inner: P,
}

impl<P: Poller> Poller for TapPoller<P> {
    type Stream = TapStream<P::Stream>;

    fn register(
        &mut self,
        token: u64,
        stream: &Self::Stream,
        interest: Interest,
    ) -> io::Result<()> {
        self.inner.register(token, &stream.inner, interest)
    }

    fn reregister(
        &mut self,
        token: u64,
        stream: &Self::Stream,
        interest: Interest,
    ) -> io::Result<()> {
        self.inner.reregister(token, &stream.inner, interest)
    }

    fn deregister(&mut self, token: u64, stream: &Self::Stream) -> io::Result<()> {
        self.inner.deregister(token, &stream.inner)
    }

    fn wait(&mut self, events: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.wait(events, timeout)
    }

    fn waker(&self) -> Waker {
        self.inner.waker()
    }
}

/// [`Listener`] wrapper opening a fresh [`ConnTrace`] per accepted stream.
///
/// When the wrapped listener is a [`crate::fault::FaultyListener`], pass
/// the same [`FaultPlan`] via [`TapListener::with_plan`] so each trace is
/// stamped with the profile the fault layer will apply; the tap counts
/// accepts (including injected accept failures, which consume an accept
/// index inside the fault layer) to stay aligned with
/// [`FaultPlan::profile_for`].
pub struct TapListener<L> {
    inner: L,
    log: TraceLog,
    plan: Option<FaultPlan>,
    accepted: u64,
}

impl<L: Listener> TapListener<L> {
    /// Tap `inner`, recording traces into `log`.
    pub fn new(inner: L, log: TraceLog) -> Self {
        Self {
            inner,
            log,
            plan: None,
            accepted: 0,
        }
    }

    /// Stamp each trace with the fault profile `plan` assigns to its
    /// accept index.
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }
}

impl<L: Listener> Listener for TapListener<L> {
    type Stream = TapStream<L::Stream>;
    type Poller = TapPoller<L::Poller>;

    fn try_accept(&mut self) -> io::Result<Option<Self::Stream>> {
        match self.inner.try_accept() {
            Ok(Some(stream)) => {
                self.accepted += 1;
                let profile = match &self.plan {
                    Some(p) => format!("{:?}", p.profile_for(self.accepted)),
                    None => "Clean".to_string(),
                };
                let trace = self.log.open(self.accepted, stream.peer_label(), profile);
                Ok(Some(TapStream {
                    inner: stream,
                    trace,
                    shutdown_logged: false,
                }))
            }
            Ok(None) => Ok(None),
            Err(e) => {
                // An injected accept failure consumed an accept index in
                // the fault layer; mirror it to stay aligned.
                self.accepted += 1;
                self.log.record_accept_failure(self.accepted);
                Err(e)
            }
        }
    }

    fn local_label(&self) -> String {
        self.inner.local_label()
    }

    fn new_poller() -> io::Result<Self::Poller> {
        Ok(TapPoller {
            inner: L::new_poller()?,
        })
    }

    fn register_listener(&self, poller: &mut Self::Poller) -> io::Result<()> {
        self.inner.register_listener(&mut poller.inner)
    }

    fn deregister_listener(&self, poller: &mut Self::Poller) -> io::Result<()> {
        self.inner.deregister_listener(&mut poller.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyListener};
    use crate::transport::mem;

    #[test]
    fn tap_records_reads_writes_and_shutdown_in_order() {
        let (listener, connector) = mem::listener("tap");
        let log = TraceLog::new();
        let mut tapped = TapListener::new(listener, log.clone());
        let mut client = connector.connect();

        let mut server_side = tapped.try_accept().unwrap().unwrap();
        client.try_write(b"hello").unwrap();
        let mut buf = [0u8; 16];
        assert!(matches!(
            server_side.try_read(&mut buf).unwrap(),
            ReadOutcome::Data(5)
        ));
        server_side.try_write(b"world!").unwrap();
        server_side.shutdown();
        server_side.shutdown(); // idempotent: one Shutdown event

        let traces = log.snapshot();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.accept_index, 1);
        assert_eq!(t.profile, "Clean");
        assert_eq!(
            t.events,
            vec![
                TapEvent::Read(b"hello".to_vec()),
                TapEvent::Wrote(b"world!".to_vec()),
                TapEvent::Shutdown,
            ]
        );
        assert_eq!(t.inbound(), b"hello");
        assert_eq!(t.outbound(), b"world!");
        assert!(!t.saw_io_error());
    }

    #[test]
    fn tap_over_faults_records_post_fault_bytes_and_errors() {
        // Corrupt{every: 2} flips every 2nd inbound byte; the tap must see
        // the corrupted stream (what the decoder saw), not the original.
        let plan = FaultPlan {
            corrupt_per_mille: 1000,
            ..FaultPlan::new(1)
        };
        // Find a seed/index where profile 1 actually corrupts.
        assert!(matches!(
            plan.profile_for(1),
            crate::fault::FaultProfile::Corrupt { .. }
        ));
        let (listener, connector) = mem::listener("tap-fault");
        let log = TraceLog::new();
        let mut tapped =
            TapListener::new(FaultyListener::new(listener, plan), log.clone()).with_plan(plan);
        let mut client = connector.connect();
        let mut server_side = tapped.try_accept().unwrap().unwrap();
        client.try_write(b"aaaa").unwrap();
        let mut buf = [0u8; 16];
        let n = match server_side.try_read(&mut buf).unwrap() {
            ReadOutcome::Data(n) => n,
            other => panic!("{other:?}"),
        };
        let traces = log.snapshot();
        assert_eq!(
            traces[0].inbound(),
            buf[..n].to_vec(),
            "tap sees decoder bytes"
        );
        assert_ne!(traces[0].inbound(), b"aaaa".to_vec(), "corruption visible");
        assert!(
            traces[0].profile.contains("Corrupt"),
            "{}",
            traces[0].profile
        );
    }

    #[test]
    fn data_traces_join_to_their_control_connection() {
        let (listener, connector) = mem::listener("tap-data");
        let log = TraceLog::new();
        let mut tapped = TapListener::new(listener, log.clone());
        let mut client = connector.connect();
        let mut server_side = tapped.try_accept().unwrap().unwrap();
        server_side.try_write(b"227 ok\r\n").unwrap();
        // ConnId order is 1-based over successful accepts.
        let data = log
            .open_data(1, 1, "data-peer".into())
            .expect("parent exists");
        data.push(TapEvent::Wrote(b"payload".to_vec()));
        data.push(TapEvent::Shutdown);
        server_side.try_write(b"226 done\r\n").unwrap();

        let traces = log.snapshot();
        assert_eq!(traces.len(), 2);
        let (control, child) = (&traces[0], &traces[1]);
        assert!(!control.is_data());
        assert!(child.is_data());
        let parent = child.parent.unwrap();
        assert_eq!(parent.control_accept_index, control.accept_index);
        assert_eq!(parent.transfer_ordinal, 1);
        assert_eq!(child.accept_index, control.accept_index);
        // Global sequencing: the data-socket close precedes the control
        // write that follows it; the first control write precedes all
        // data events.
        let offset_226 = b"227 ok\r\n".len();
        assert!(child.last_seq().unwrap() < control.seq_at_outbound_offset(offset_226).unwrap());
        assert!(control.seq_at_outbound_offset(0).unwrap() < child.seqs[0]);
        assert!(control.seq_at_outbound_offset(999).is_none());
        // Unknown parent ordinal → no trace opened.
        assert!(log.open_data(5, 1, "x".into()).is_none());
        client.shutdown();
    }

    #[test]
    fn half_close_is_recorded_once() {
        let (listener, connector) = mem::listener("tap-eof");
        let log = TraceLog::new();
        let mut tapped = TapListener::new(listener, log.clone());
        let mut client = connector.connect();
        let mut server_side = tapped.try_accept().unwrap().unwrap();
        client.shutdown();
        let mut buf = [0u8; 4];
        assert!(matches!(
            server_side.try_read(&mut buf).unwrap(),
            ReadOutcome::Closed
        ));
        assert!(matches!(
            server_side.try_read(&mut buf).unwrap(),
            ReadOutcome::Closed
        ));
        let t = &log.snapshot()[0];
        assert_eq!(t.events, vec![TapEvent::ReadEof]);
        assert!(t.saw_eof());
    }
}
