//! The fragment registry: every class the template can generate, with the
//! options that gate its existence (`O` in the paper's Table 2) and the
//! options whose values alter its generated body (`+`).
//!
//! This registry *is* Table 2, kept as data in one place: the crosscut
//! matrix is rendered from it, and the template consults it to decide
//! which modules to emit.

use nserver_core::options::{CompletionMode, FileCacheOption, ServerOptions, ThreadAllocation};

/// The twelve template options, in Table 1 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum OptionId {
    O1,
    O2,
    O3,
    O4,
    O5,
    O6,
    O7,
    O8,
    O9,
    O10,
    O11,
    O12,
}

impl OptionId {
    /// All options in order.
    pub const ALL: [OptionId; 12] = [
        OptionId::O1,
        OptionId::O2,
        OptionId::O3,
        OptionId::O4,
        OptionId::O5,
        OptionId::O6,
        OptionId::O7,
        OptionId::O8,
        OptionId::O9,
        OptionId::O10,
        OptionId::O11,
        OptionId::O12,
    ];

    /// Column label ("O1" … "O12").
    pub fn label(self) -> &'static str {
        match self {
            OptionId::O1 => "O1",
            OptionId::O2 => "O2",
            OptionId::O3 => "O3",
            OptionId::O4 => "O4",
            OptionId::O5 => "O5",
            OptionId::O6 => "O6",
            OptionId::O7 => "O7",
            OptionId::O8 => "O8",
            OptionId::O9 => "O9",
            OptionId::O10 => "O10",
            OptionId::O11 => "O11",
            OptionId::O12 => "O12",
        }
    }
}

/// A condition deciding whether a class exists in the generated framework
/// (`O` markers in Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Exists only when O4 = Asynchronous (completion machinery).
    CompletionAsync,
    /// Exists only when O3 = Yes (decode/encode pipeline stages).
    EncodeDecode,
    /// Exists only when O5 = Dynamic (the Processor Controller).
    DynamicAllocation,
    /// Exists only when O6 = Yes (the file cache).
    FileCache,
}

impl Gate {
    /// Evaluate the gate against a configuration.
    pub fn admits(self, opts: &ServerOptions) -> bool {
        match self {
            Gate::CompletionAsync => opts.completion_mode == CompletionMode::Asynchronous,
            Gate::EncodeDecode => opts.encode_decode,
            Gate::DynamicAllocation => {
                matches!(opts.thread_allocation, ThreadAllocation::Dynamic { .. })
            }
            Gate::FileCache => matches!(opts.file_cache, FileCacheOption::Yes { .. }),
        }
    }

    /// The option this gate corresponds to (its `O` column).
    pub fn option(self) -> OptionId {
        match self {
            Gate::CompletionAsync => OptionId::O4,
            Gate::EncodeDecode => OptionId::O3,
            Gate::DynamicAllocation => OptionId::O5,
            Gate::FileCache => OptionId::O6,
        }
    }
}

/// One generatable framework class.
#[derive(Debug, Clone, Copy)]
pub struct ClassSpec {
    /// Class name as printed in Table 2.
    pub name: &'static str,
    /// Module (file) name in the generated crate.
    pub module: &'static str,
    /// Existence gate, if the class is optional.
    pub gate: Option<Gate>,
    /// Options whose values change the generated body (`+` markers).
    pub affected_by: &'static [OptionId],
}

impl ClassSpec {
    /// Whether this class appears under the given configuration.
    pub fn exists(&self, opts: &ServerOptions) -> bool {
        self.gate.is_none_or(|g| g.admits(opts))
    }

    /// Whether this class's code depends on the given option (either as a
    /// gate or as a body modifier).
    pub fn depends_on(&self, opt: OptionId) -> bool {
        self.gate.map(|g| g.option()) == Some(opt) || self.affected_by.contains(&opt)
    }
}

use OptionId::*;

/// The complete class registry, row-for-row the paper's Table 2.
pub fn registry() -> &'static [ClassSpec] {
    &[
        ClassSpec {
            name: "Event",
            module: "event",
            gate: None,
            affected_by: &[O4, O8],
        },
        ClassSpec {
            name: "Completion Event",
            module: "completion_event",
            gate: Some(Gate::CompletionAsync),
            affected_by: &[],
        },
        ClassSpec {
            name: "File Open Event",
            module: "file_open_event",
            gate: Some(Gate::CompletionAsync),
            affected_by: &[O6],
        },
        ClassSpec {
            name: "File Read Event",
            module: "file_read_event",
            gate: Some(Gate::CompletionAsync),
            affected_by: &[O6],
        },
        ClassSpec {
            name: "Handle",
            module: "handle",
            gate: None,
            affected_by: &[O1],
        },
        ClassSpec {
            name: "File Handle",
            module: "file_handle",
            gate: Some(Gate::CompletionAsync),
            affected_by: &[O6],
        },
        ClassSpec {
            name: "Read Request Event Handler",
            module: "read_request_handler",
            gate: None,
            affected_by: &[O7, O10, O11, O12],
        },
        ClassSpec {
            name: "Send Reply Event Handler",
            module: "send_reply_handler",
            gate: None,
            affected_by: &[O7, O10, O11, O12],
        },
        ClassSpec {
            name: "Decode Request Event Handler",
            module: "decode_request_handler",
            gate: Some(Gate::EncodeDecode),
            affected_by: &[O7, O8, O10, O12],
        },
        ClassSpec {
            name: "Encode Reply Event Handler",
            module: "encode_reply_handler",
            gate: Some(Gate::EncodeDecode),
            affected_by: &[O7, O8, O10, O12],
        },
        ClassSpec {
            name: "Compute Request Event Handler",
            module: "compute_request_handler",
            gate: None,
            affected_by: &[O3, O4, O7, O8, O10, O12],
        },
        ClassSpec {
            name: "Event Processor",
            module: "event_processor",
            gate: None,
            affected_by: &[O5, O8, O9, O10],
        },
        ClassSpec {
            name: "Processor Controller",
            module: "processor_controller",
            gate: Some(Gate::DynamicAllocation),
            affected_by: &[],
        },
        ClassSpec {
            name: "Event Dispatcher",
            module: "event_dispatcher",
            gate: None,
            affected_by: &[O2, O4, O9, O10, O11],
        },
        ClassSpec {
            name: "Cache",
            module: "cache",
            gate: Some(Gate::FileCache),
            affected_by: &[O11],
        },
        ClassSpec {
            name: "Reactor",
            module: "reactor",
            gate: None,
            affected_by: &[O1, O2, O4, O5, O6, O8, O9, O10, O11, O12],
        },
        ClassSpec {
            name: "Communicator Component",
            module: "communicator",
            gate: None,
            affected_by: &[O3, O7, O8, O11],
        },
        ClassSpec {
            name: "Server Component",
            module: "server_component",
            gate: None,
            affected_by: &[O3, O7, O10, O12],
        },
        ClassSpec {
            name: "Client Component",
            module: "client_component",
            gate: None,
            affected_by: &[O3, O7, O10, O12],
        },
        ClassSpec {
            name: "Server Event Handler",
            module: "server_event_handler",
            gate: None,
            affected_by: &[O7, O10, O11],
        },
        ClassSpec {
            name: "Connector Event Handler",
            module: "connector_handler",
            gate: None,
            affected_by: &[O3, O10, O11, O12],
        },
        ClassSpec {
            name: "Acceptor Event Handler",
            module: "acceptor_handler",
            gate: None,
            affected_by: &[O3, O9, O10, O11, O12],
        },
        ClassSpec {
            name: "Container Component",
            module: "container",
            gate: None,
            affected_by: &[O7, O10, O11, O12],
        },
        ClassSpec {
            name: "Application Event Handler",
            module: "application_handler",
            gate: None,
            affected_by: &[O7, O10, O11],
        },
        ClassSpec {
            name: "Client Configuration",
            module: "client_config",
            gate: None,
            affected_by: &[O3, O10],
        },
        ClassSpec {
            name: "Server Configuration",
            module: "server_config",
            gate: None,
            affected_by: &[O10],
        },
        ClassSpec {
            name: "Server",
            module: "server",
            gate: None,
            affected_by: &[O3],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nserver_cache::PolicyKind;
    use nserver_core::options::{EventScheduling, OverloadControl};

    #[test]
    fn registry_has_the_paper_row_count() {
        assert_eq!(registry().len(), 27, "Table 2 lists 27 classes");
    }

    #[test]
    fn module_names_are_unique() {
        let mut mods: Vec<_> = registry().iter().map(|c| c.module).collect();
        mods.sort_unstable();
        let n = mods.len();
        mods.dedup();
        assert_eq!(mods.len(), n);
    }

    #[test]
    fn exactly_six_gated_classes() {
        // Completion/FileOpen/FileRead Events, File Handle (O4); Decode and
        // Encode handlers (O3); Processor Controller (O5); Cache (O6) —
        // that's 8 `O` markers total across 8 classes.
        let gated: Vec<_> = registry().iter().filter(|c| c.gate.is_some()).collect();
        assert_eq!(gated.len(), 8);
    }

    #[test]
    fn reactor_is_affected_by_ten_options() {
        let reactor = registry().iter().find(|c| c.name == "Reactor").unwrap();
        assert_eq!(reactor.affected_by.len(), 10);
        assert!(!reactor.depends_on(OptionId::O3));
        assert!(!reactor.depends_on(OptionId::O7));
        assert!(reactor.depends_on(OptionId::O8));
    }

    #[test]
    fn gates_admit_per_option_values() {
        let base = ServerOptions::default();
        assert!(!Gate::CompletionAsync.admits(&base));
        assert!(Gate::EncodeDecode.admits(&base));
        assert!(!Gate::DynamicAllocation.admits(&base));
        assert!(!Gate::FileCache.admits(&base));

        let async_opts = ServerOptions {
            completion_mode: nserver_core::options::CompletionMode::Asynchronous,
            file_cache: nserver_core::options::FileCacheOption::Yes {
                policy: PolicyKind::Lru,
                capacity_bytes: 1024,
            },
            thread_allocation: nserver_core::options::ThreadAllocation::Dynamic {
                min: 1,
                max: 2,
                idle_keepalive_ms: 10,
            },
            encode_decode: false,
            ..base
        };
        assert!(Gate::CompletionAsync.admits(&async_opts));
        assert!(!Gate::EncodeDecode.admits(&async_opts));
        assert!(Gate::DynamicAllocation.admits(&async_opts));
        assert!(Gate::FileCache.admits(&async_opts));
    }

    #[test]
    fn class_existence_follows_gates() {
        let minimal = ServerOptions {
            encode_decode: false,
            ..ServerOptions::default()
        };
        let existing: Vec<_> = registry()
            .iter()
            .filter(|c| c.exists(&minimal))
            .map(|c| c.name)
            .collect();
        assert!(!existing.contains(&"Completion Event"));
        assert!(!existing.contains(&"Decode Request Event Handler"));
        assert!(!existing.contains(&"Cache"));
        assert!(existing.contains(&"Reactor"));
        assert_eq!(existing.len(), 27 - 8);
    }

    #[test]
    fn full_config_generates_every_class() {
        let full = ServerOptions {
            completion_mode: nserver_core::options::CompletionMode::Asynchronous,
            thread_allocation: nserver_core::options::ThreadAllocation::Dynamic {
                min: 1,
                max: 8,
                idle_keepalive_ms: 100,
            },
            file_cache: nserver_core::options::FileCacheOption::Yes {
                policy: PolicyKind::Lru,
                capacity_bytes: 20 << 20,
            },
            event_scheduling: EventScheduling::Yes { quotas: vec![4, 1] },
            overload_control: OverloadControl::Watermark { high: 20, low: 5 },
            idle_shutdown_ms: Some(30_000),
            profiling: true,
            logging: true,
            ..ServerOptions::default()
        };
        full.validate().unwrap();
        assert!(registry().iter().all(|c| c.exists(&full)));
    }
}
