//! The generative path: expand the N-Server pattern template into a
//! standalone framework crate, exactly as CO₂P₃S generated Java from its
//! design pattern templates.
//!
//! Generates the COPS-HTTP configuration into `generated/cops-http/`
//! (pass a different directory as the first argument) and prints the
//! emitted file list with code metrics. Note how the option settings
//! decide *which classes exist*: regenerate with a different
//! configuration and modules appear or vanish per Table 2's `O` column.
//!
//! Run: `cargo run -p nserver-examples --bin generate_framework [outdir]`

use nserver_codegen::{count_source, generate};
use nserver_http::cops_http_options;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "generated/cops-http".to_string());
    let options = cops_http_options();
    // The generated Cargo.toml points back at this workspace's crates.
    let fw = generate("cops-http-generated", &options, "../../crates");

    println!("generating COPS-HTTP framework into {out}/\n");
    let mut total_ncss = 0;
    for f in &fw.files {
        let stats = count_source(&f.content);
        total_ncss += stats.ncss;
        println!(
            "  {:<44} {:>4} NCSS  {:>2} types  {:>2} fns",
            f.path, stats.ncss, stats.classes, stats.methods
        );
    }
    let gen = fw.generated_stats();
    let hooks = fw.hook_stats();
    println!(
        "\ngenerated framework: {} NCSS, {} types, {} methods",
        gen.ncss, gen.classes, gen.methods
    );
    println!(
        "programmer-owned hook stubs: {} NCSS ({}% of the total {total_ncss})",
        hooks.ncss,
        hooks.ncss * 100 / total_ncss.max(1)
    );

    let dir = std::path::Path::new(&out);
    fw.write_to(dir).expect("write generated crate");
    println!("\nwrote {} files under {out}/", fw.files.len());
    println!("build it with: cargo build --manifest-path {out}/Cargo.toml");
}
