//! The discrete-event experiment world for the COPS-HTTP vs Apache
//! studies (Figures 3, 4 and 6).
//!
//! The world composes the `nserver-netsim` substrate — shared link, CPU
//! pool, disk + OS buffer cache, listen queue, SYN backoff — with a client
//! population implementing the paper's workload ("establish a connection…
//! issue 5 HTTP requests… 20 milliseconds pause after receiving each
//! page") and one of two server models:
//!
//! * **Apache**: process-per-connection with a bounded worker pool; a
//!   worker is held for the entire connection (including think time), and
//!   per-request CPU inflates with the number of live processes. SYNs
//!   that overflow the backlog are dropped and retransmitted with
//!   exponential backoff — the mechanism behind Fig. 4's fairness
//!   collapse.
//! * **COPS-HTTP**: event-driven; accepts every connection (unless the
//!   watermark overload controller pauses accepts — Fig. 6), runs
//!   requests through a single-dispatcher stage whose cost grows mildly
//!   with the number of open connections, then a worker-pool CPU stage,
//!   an optional 20 MB application file cache, the OS buffer cache, and
//!   the disk. The overload gate is `nserver-core`'s *actual*
//!   [`nserver_core::overload::Watermark`] policy object.

use std::collections::VecDeque;

use nserver_core::overload::Watermark;
use nserver_netsim::{
    jain_index, BufferCache, CpuPool, Disk, Histogram, Link, ListenQueue, Model, OnlineStats,
    Scheduler, SimRng, SimTime, SynRetransmit,
};
use nserver_specweb::{AccessSampler, ClientConfig, FileSet};

use crate::apache::ApacheParams;

/// Parameters of the simulated COPS-HTTP server.
#[derive(Debug, Clone, Copy)]
pub struct CopsParams {
    /// Event-processor worker threads (Table 1: static pool).
    pub worker_threads: usize,
    /// Per-request CPU demand on a worker, in µs.
    pub base_cpu_us: u64,
    /// Fixed dispatcher cost per request, in µs.
    pub dispatch_base_us: u64,
    /// Dispatcher cost growth per open connection, in ns (readiness
    /// polling over the connection set).
    pub dispatch_per_conn_ns: u64,
    /// Application file cache size (None disables O6).
    pub app_cache_bytes: Option<u64>,
    /// Extra CPU burned while decoding each request, µs (Fig. 6 uses
    /// 50 000 — the paper's 50 ms sleep).
    pub decode_extra_us: u64,
    /// Watermark overload control on the reactive event-processor queue
    /// (high, low); None disables O9.
    pub watermark: Option<(usize, usize)>,
    /// SPED emulation: file I/O blocks the event-processing thread
    /// instead of overlapping through the Proactor helpers (the known
    /// weakness of single-process event-driven servers on disk-bound
    /// workloads — paper §III).
    pub blocking_file_io: bool,
}

impl Default for CopsParams {
    fn default() -> Self {
        Self {
            worker_threads: 4,
            base_cpu_us: 3000,
            dispatch_base_us: 80,
            dispatch_per_conn_ns: 1200,
            app_cache_bytes: Some(20 * 1024 * 1024),
            decode_extra_us: 0,
            watermark: None,
            blocking_file_io: false,
        }
    }
}

impl CopsParams {
    /// SPED (Zeus/Harvest-style): one thread does everything, and a disk
    /// read stalls it.
    pub fn sped() -> Self {
        Self {
            worker_threads: 1,
            blocking_file_io: true,
            app_cache_bytes: None,
            ..Self::default()
        }
    }

    /// MPED (Flash-style): one event-processing thread, but blocking file
    /// I/O is overlapped by helper processes.
    pub fn mped() -> Self {
        Self {
            worker_threads: 1,
            blocking_file_io: false,
            app_cache_bytes: None,
            ..Self::default()
        }
    }
}

/// Which server runs in this world.
#[derive(Debug, Clone, Copy)]
pub enum ServerKind {
    /// The Apache 1.3 process-per-connection baseline.
    Apache(ApacheParams),
    /// The simulated event-driven COPS-HTTP.
    Cops(CopsParams),
}

/// Full experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Number of web clients.
    pub clients: usize,
    /// Server model.
    pub kind: ServerKind,
    /// Server CPUs (4 on the Fig. 3/4 testbed, 2 on the Fig. 5/6 one).
    pub cpus: usize,
    /// Shared network bandwidth in bits/s ("slightly higher than
    /// 100 MBits/sec").
    pub link_bits_per_sec: u64,
    /// One-way network latency between clients and server.
    pub net_oneway: SimTime,
    /// Think time after each page.
    pub think: SimTime,
    /// Requests per connection.
    pub reqs_per_conn: u32,
    /// Total file-set size (paper: 204.8 MB).
    pub fileset_bytes: u64,
    /// OS buffer cache size (paper: 80 MB).
    pub os_cache_bytes: u64,
    /// Disk positioning time.
    pub disk_seek: SimTime,
    /// Disk transfer bandwidth, bytes/s.
    pub disk_bytes_per_sec: u64,
    /// Warmup before measurement starts.
    pub warmup: SimTime,
    /// Measurement window ("each measurement ran for 5 minutes").
    pub measure: SimTime,
    /// RNG seed.
    pub seed: u64,
}

impl ExperimentParams {
    /// The Fig. 3 / Fig. 4 testbed with a given client count and server.
    pub fn figure3(clients: usize, kind: ServerKind) -> Self {
        Self {
            clients,
            kind,
            cpus: 4,
            link_bits_per_sec: 115_000_000,
            net_oneway: SimTime::from_millis(50),
            think: SimTime::from_millis(ClientConfig::default().think_time_ms),
            reqs_per_conn: ClientConfig::default().requests_per_connection,
            fileset_bytes: (204.8 * 1024.0 * 1024.0) as u64,
            os_cache_bytes: 80 * 1024 * 1024,
            disk_seek: SimTime::from_millis(4),
            disk_bytes_per_sec: 30_000_000,
            warmup: SimTime::from_secs(30),
            measure: SimTime::from_secs(120),
            seed: 0x5EED_0001,
        }
    }

    /// The Fig. 6 testbed (2 CPUs, LAN latency, CPU-bound decode, cache
    /// disabled to keep the workload heavy, smaller measurement window).
    pub fn figure6(clients: usize, overload_control: bool) -> Self {
        let cops = CopsParams {
            decode_extra_us: 50_000,
            app_cache_bytes: None,
            watermark: if overload_control {
                Some((20, 5))
            } else {
                None
            },
            ..CopsParams::default()
        };
        Self {
            clients,
            kind: ServerKind::Cops(cops),
            cpus: 2,
            link_bits_per_sec: 100_000_000,
            net_oneway: SimTime::from_micros(300),
            warmup: SimTime::from_secs(10),
            measure: SimTime::from_secs(60),
            ..Self::figure3(clients, ServerKind::Cops(cops))
        }
    }
}

/// Measured results of one run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Responses per second over the measurement window.
    pub throughput_rps: f64,
    /// Jain fairness index over per-client response counts.
    pub fairness: f64,
    /// Mean response time (request sent → response received), ms.
    pub mean_response_ms: f64,
    /// Mean combined time (includes connection-establishment wait), ms.
    pub mean_combined_ms: f64,
    /// 95th-percentile response time, ms.
    pub p95_response_ms: f64,
    /// Total measured responses.
    pub responses: u64,
    /// SYN drops over the whole run (Apache backlog overflow).
    pub syn_drops: u64,
    /// Accepts postponed by the overload controller (COPS).
    pub accepts_deferred: u64,
    /// Application cache hit rate (COPS with O6 on).
    pub app_cache_hit_rate: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// SYN in flight or backing off.
    Connecting,
    /// Handshake accepted server-side; waiting for the Accepted notice or
    /// for a worker (Apache backlog) / gate (COPS postponed).
    Queued,
    /// Request in flight.
    WaitingResp,
    /// Thinking between pages.
    Thinking,
}

struct Client {
    gen: u32,
    phase: Phase,
    reqs_done: u32,
    responses_measured: u64,
    backoff: SynRetransmit,
    connect_started: SimTime,
    req_sent: SimTime,
    first_req_of_conn: bool,
    file: u64,
}

/// Simulation events; every client-directed event carries the connection
/// generation so stale events are ignored after a reconnect.
pub enum Ev {
    /// Client initiates a connection.
    Connect(u32),
    /// SYN reaches the server.
    SynArrive(u32, u32),
    /// Client retransmission timer.
    SynTimeout(u32, u32),
    /// Connection establishment visible to the client.
    Accepted(u32, u32),
    /// Request reaches the server.
    ReqArrive(u32, u32),
    /// Dispatcher + CPU stages finished.
    ServiceDone(u32, u32),
    /// File bytes available (cache or disk).
    DiskDone(u32, u32),
    /// Response fully received by the client.
    RespArrive(u32, u32),
    /// Think time elapsed.
    ThinkDone(u32, u32),
}

/// The experiment world.
pub struct World {
    params: ExperimentParams,
    fileset: FileSet,
    sampler: AccessSampler,
    rng: SimRng,
    clients: Vec<Client>,
    // Substrate.
    link: Link,
    cpu: CpuPool,
    dispatch: CpuPool,
    disk: Disk,
    os_cache: BufferCache,
    app_cache: Option<BufferCache>,
    // Apache state.
    free_workers: usize,
    live_workers: usize,
    backlog: ListenQueue<u32>,
    // COPS state.
    open_conns: usize,
    watermark: Option<Watermark>,
    postponed: VecDeque<u32>,
    cpu_inflight: usize,
    /// Connections accepted whose first request has not reached the CPU
    /// stage yet; the gate counts them as anticipated load so a drain of
    /// postponed clients cannot overshoot the high watermark.
    pending_accepts: usize,
    accepts_deferred: u64,
    // Measurement.
    measure_start: SimTime,
    resp_stats: OnlineStats,
    combined_stats: OnlineStats,
    resp_hist: Histogram,
    responses: u64,
}

impl World {
    /// Build a world from parameters.
    pub fn new(params: ExperimentParams) -> Self {
        let fileset = FileSet::specweb99(params.fileset_bytes);
        let sampler = AccessSampler::new(&fileset);
        let mut rng = SimRng::new(params.seed);
        let clients = (0..params.clients)
            .map(|_| Client {
                gen: 0,
                phase: Phase::Connecting,
                reqs_done: 0,
                responses_measured: 0,
                backoff: SynRetransmit::solaris(),
                connect_started: SimTime::ZERO,
                req_sent: SimTime::ZERO,
                first_req_of_conn: true,
                file: 0,
            })
            .collect();
        let _ = rng.next_u64();
        let (apache_workers, apache_backlog, cops_watermark, app_cache) = match params.kind {
            ServerKind::Apache(a) => (a.workers, a.backlog, None, None),
            ServerKind::Cops(c) => (
                0,
                0,
                c.watermark.map(|(h, l)| Watermark::new(h, l)),
                c.app_cache_bytes.map(BufferCache::new),
            ),
        };
        Self {
            fileset,
            sampler,
            rng,
            clients,
            link: Link::with_frame(params.link_bits_per_sec, 1500, 40, params.net_oneway),
            cpu: CpuPool::new(match params.kind {
                ServerKind::Apache(_) => params.cpus,
                // COPS runs a fixed worker pool; it cannot use more CPUs
                // than it has workers.
                ServerKind::Cops(c) => params.cpus.min(c.worker_threads),
            }),
            dispatch: CpuPool::new(1),
            disk: Disk::new(params.disk_seek, params.disk_bytes_per_sec),
            os_cache: BufferCache::new(params.os_cache_bytes),
            app_cache,
            free_workers: apache_workers,
            live_workers: 0,
            backlog: ListenQueue::new(apache_backlog.max(1)),
            open_conns: 0,
            watermark: cops_watermark,
            postponed: VecDeque::new(),
            cpu_inflight: 0,
            pending_accepts: 0,
            accepts_deferred: 0,
            measure_start: params.warmup,
            params,
            resp_stats: OnlineStats::new(),
            combined_stats: OnlineStats::new(),
            resp_hist: Histogram::new(),
            responses: 0,
        }
    }

    /// Run the experiment: warmup, measurement window, and collection.
    pub fn run(mut self) -> Outcome {
        let mut sched = Scheduler::new();
        // Stagger connection starts over one second to avoid lockstep.
        for c in 0..self.params.clients {
            let jitter = SimTime::from_micros(self.rng.below(1_000_000));
            sched.at(jitter, Ev::Connect(c as u32));
        }
        let end = self.params.warmup + self.params.measure;
        sched.run_until(&mut self, end);

        let per_client: Vec<f64> = self
            .clients
            .iter()
            .map(|c| c.responses_measured as f64)
            .collect();
        let app_cache_hit_rate = self.app_cache.as_ref().map_or(0.0, |c| c.hit_rate());
        Outcome {
            throughput_rps: self.responses as f64 / self.params.measure.as_secs_f64(),
            fairness: jain_index(&per_client),
            mean_response_ms: self.resp_stats.mean(),
            mean_combined_ms: self.combined_stats.mean(),
            p95_response_ms: self.resp_hist.quantile(0.95).as_millis_f64(),
            responses: self.responses,
            syn_drops: self.backlog.dropped(),
            accepts_deferred: self.accepts_deferred,
            app_cache_hit_rate,
        }
    }

    fn is_apache(&self) -> bool {
        matches!(self.params.kind, ServerKind::Apache(_))
    }

    fn stale(&self, c: u32, gen: u32) -> bool {
        self.clients[c as usize].gen != gen
    }

    fn send_request(&mut self, now: SimTime, c: u32, sched: &mut Scheduler<Ev>) {
        let file = self.sampler.sample_with(
            &self.fileset,
            self.rng.next_f64(),
            self.rng.next_f64(),
            self.rng.next_f64(),
        );
        let client = &mut self.clients[c as usize];
        client.file = file;
        client.req_sent = now;
        client.phase = Phase::WaitingResp;
        let gen = client.gen;
        sched.after(self.params.net_oneway, Ev::ReqArrive(c, gen));
    }

    fn gate_load(&self) -> usize {
        self.cpu_inflight + self.pending_accepts
    }

    fn accept_cops(&mut self, now: SimTime, c: u32, sched: &mut Scheduler<Ev>) {
        self.open_conns += 1;
        self.pending_accepts += 1;
        self.clients[c as usize].phase = Phase::Queued;
        let gen = self.clients[c as usize].gen;
        sched.at(now + self.params.net_oneway, Ev::Accepted(c, gen));
    }

    fn close_conn(&mut self, now: SimTime, c: u32, sched: &mut Scheduler<Ev>) {
        if self.is_apache() {
            self.live_workers -= 1;
            self.free_workers += 1;
            if let Some(next) = self.backlog.accept() {
                self.free_workers -= 1;
                self.live_workers += 1;
                let gen = self.clients[next as usize].gen;
                sched.at(now + self.params.net_oneway, Ev::Accepted(next, gen));
            }
        } else {
            self.open_conns -= 1;
        }
        let client = &mut self.clients[c as usize];
        client.gen += 1;
        client.reqs_done = 0;
        client.phase = Phase::Connecting;
        client.backoff = SynRetransmit::solaris();
        sched.at(now, Ev::Connect(c));
    }

    /// Service time of the file access for client `c`'s current request
    /// when the event thread performs it synchronously (SPED emulation).
    fn file_io_time(&mut self, c: u32) -> SimTime {
        let file = self.clients[c as usize].file;
        let size = self.fileset.file(file).size;
        if self.os_cache.access(file, size) {
            SimTime::from_micros(200)
        } else {
            // Dedicated seek + transfer; the thread is parked meanwhile.
            self.params.disk_seek
                + SimTime::from_micros(size * 1_000_000 / self.params.disk_bytes_per_sec)
        }
    }

    /// Re-evaluate the COPS overload gate; drain postponed clients while
    /// accepting resumes.
    fn reevaluate_gate(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        if self.watermark.is_none() {
            return;
        }
        // Accept postponed clients one at a time, re-observing the gate
        // after each: every accept raises the anticipated load, so the
        // drain stops at the high watermark instead of flooding the queue.
        loop {
            let load = self.gate_load();
            let paused = self
                .watermark
                .as_mut()
                .map(|wm| wm.observe(load))
                .unwrap_or(false);
            if paused {
                return;
            }
            match self.postponed.pop_front() {
                Some(c) => self.accept_cops(now, c, sched),
                None => return,
            }
        }
    }
}

impl Model for World {
    type Ev = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Connect(c) => {
                let client = &mut self.clients[c as usize];
                client.connect_started = now;
                client.first_req_of_conn = true;
                client.phase = Phase::Connecting;
                let gen = client.gen;
                sched.after(self.params.net_oneway, Ev::SynArrive(c, gen));
                let delay = client.backoff.next_delay();
                sched.after(delay, Ev::SynTimeout(c, gen));
            }
            Ev::SynArrive(c, gen) => {
                if self.stale(c, gen) || self.clients[c as usize].phase != Phase::Connecting {
                    return;
                }
                if self.is_apache() {
                    if self.free_workers > 0 {
                        self.free_workers -= 1;
                        self.live_workers += 1;
                        self.clients[c as usize].phase = Phase::Queued;
                        sched.after(self.params.net_oneway, Ev::Accepted(c, gen));
                    } else if self.backlog.offer(c) {
                        // Handshake completes; the client waits (no
                        // retransmissions) until a worker frees up.
                        self.clients[c as usize].phase = Phase::Queued;
                    }
                    // else: SYN dropped silently; the retransmission timer
                    // is already armed.
                } else {
                    let load = self.gate_load();
                    let gate_paused = match self.watermark.as_mut() {
                        Some(wm) => wm.observe(load),
                        None => false,
                    };
                    if gate_paused {
                        self.accepts_deferred += 1;
                        self.clients[c as usize].phase = Phase::Queued;
                        self.postponed.push_back(c);
                    } else {
                        self.accept_cops(now, c, sched);
                    }
                }
            }
            Ev::SynTimeout(c, gen) => {
                if self.stale(c, gen) || self.clients[c as usize].phase != Phase::Connecting {
                    return;
                }
                // Retransmit the SYN and arm the next (doubled) timer.
                sched.after(self.params.net_oneway, Ev::SynArrive(c, gen));
                let delay = self.clients[c as usize].backoff.next_delay();
                sched.after(delay, Ev::SynTimeout(c, gen));
            }
            Ev::Accepted(c, gen) => {
                if self.stale(c, gen) {
                    return;
                }
                self.send_request(now, c, sched);
            }
            Ev::ReqArrive(c, gen) => {
                if self.stale(c, gen) {
                    return;
                }
                let done = match self.params.kind {
                    ServerKind::Apache(a) => {
                        let demand = SimTime::from_micros(a.service_us(self.live_workers));
                        let sched_wait =
                            SimTime::from_micros(a.sched_latency_us(self.live_workers));
                        self.cpu.run(now, demand) + sched_wait
                    }
                    ServerKind::Cops(cp) => {
                        self.cpu_inflight += 1;
                        if self.clients[c as usize].first_req_of_conn {
                            self.pending_accepts = self.pending_accepts.saturating_sub(1);
                        }
                        let disp = SimTime::from_micros(
                            cp.dispatch_base_us
                                + cp.dispatch_per_conn_ns * self.open_conns as u64 / 1000,
                        );
                        let disp_done = self.dispatch.run(now, disp);
                        let mut demand = SimTime::from_micros(cp.base_cpu_us + cp.decode_extra_us);
                        if cp.blocking_file_io {
                            // SPED: the event thread itself waits out the
                            // file access, so its time is CPU occupancy.
                            demand += self.file_io_time(c);
                        }
                        self.cpu.run(disp_done, demand)
                    }
                };
                sched.at(done, Ev::ServiceDone(c, gen));
            }
            Ev::ServiceDone(c, gen) => {
                if !self.is_apache() {
                    self.cpu_inflight = self.cpu_inflight.saturating_sub(1);
                    self.reevaluate_gate(now, sched);
                }
                if self.stale(c, gen) {
                    return;
                }
                if let ServerKind::Cops(cp) = self.params.kind {
                    if cp.blocking_file_io {
                        // SPED: the file time was already charged to the
                        // event thread in ReqArrive.
                        sched.at(now, Ev::DiskDone(c, gen));
                        return;
                    }
                }
                let file = self.clients[c as usize].file;
                let size = self.fileset.file(file).size;
                // COPS application cache (O6), then the OS buffer cache,
                // then the disk.
                let app_hit = self
                    .app_cache
                    .as_mut()
                    .is_some_and(|cache| cache.access(file, size));
                let ready = if app_hit {
                    now + SimTime::from_micros(100)
                } else if self.os_cache.access(file, size) {
                    now + SimTime::from_micros(200)
                } else {
                    self.disk.read(now, size)
                };
                sched.at(ready, Ev::DiskDone(c, gen));
            }
            Ev::DiskDone(c, gen) => {
                if self.stale(c, gen) {
                    return;
                }
                let size = self.fileset.file(self.clients[c as usize].file).size;
                let arrive = self.link.send(now, size + 300);
                sched.at(arrive, Ev::RespArrive(c, gen));
            }
            Ev::RespArrive(c, gen) => {
                if self.stale(c, gen) {
                    return;
                }
                let measure_start = self.measure_start;
                let client = &mut self.clients[c as usize];
                if now >= measure_start {
                    client.responses_measured += 1;
                    self.responses += 1;
                    let resp = now - client.req_sent;
                    self.resp_stats.add_time_ms(resp);
                    self.resp_hist.record(resp);
                    let combined_from = if client.first_req_of_conn {
                        client.connect_started
                    } else {
                        client.req_sent
                    };
                    self.combined_stats.add_time_ms(now - combined_from);
                }
                client.first_req_of_conn = false;
                client.reqs_done += 1;
                if client.reqs_done < self.params.reqs_per_conn {
                    client.phase = Phase::Thinking;
                    let gen = client.gen;
                    sched.after(self.params.think, Ev::ThinkDone(c, gen));
                } else {
                    self.close_conn(now, c, sched);
                }
            }
            Ev::ThinkDone(c, gen) => {
                if self.stale(c, gen) {
                    return;
                }
                self.send_request(now, c, sched);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(params: ExperimentParams) -> Outcome {
        World::new(params).run()
    }

    fn short(mut p: ExperimentParams) -> ExperimentParams {
        p.warmup = SimTime::from_secs(5);
        p.measure = SimTime::from_secs(30);
        p
    }

    #[test]
    fn single_client_gets_reasonable_service() {
        let out = quick(short(ExperimentParams::figure3(
            1,
            ServerKind::Cops(CopsParams::default()),
        )));
        assert!(out.responses > 50, "responses {}", out.responses);
        assert!((out.fairness - 1.0).abs() < 1e-9);
        // Cycle ≈ 2×50ms RTT + service + think ⇒ response ≈ 100–150 ms.
        assert!(
            (90.0..250.0).contains(&out.mean_response_ms),
            "mean {}",
            out.mean_response_ms
        );
    }

    #[test]
    fn throughput_scales_then_saturates_on_the_link() {
        let t16 = quick(short(ExperimentParams::figure3(
            16,
            ServerKind::Cops(CopsParams::default()),
        )))
        .throughput_rps;
        let t64 = quick(short(ExperimentParams::figure3(
            64,
            ServerKind::Cops(CopsParams::default()),
        )))
        .throughput_rps;
        let t512 = quick(short(ExperimentParams::figure3(
            512,
            ServerKind::Cops(CopsParams::default()),
        )))
        .throughput_rps;
        let t1024 = quick(short(ExperimentParams::figure3(
            1024,
            ServerKind::Cops(CopsParams::default()),
        )))
        .throughput_rps;
        assert!(t64 > t16 * 2.5, "linear region: {t16} -> {t64}");
        // Saturation: 512 -> 1024 gains little or nothing.
        assert!(t1024 < t512 * 1.15, "saturated: {t512} -> {t1024}");
    }

    #[test]
    fn apache_is_unfair_beyond_its_worker_pool() {
        let apache = quick(short(ExperimentParams::figure3(
            1024,
            ServerKind::Apache(ApacheParams::default()),
        )));
        let cops = quick(short(ExperimentParams::figure3(
            1024,
            ServerKind::Cops(CopsParams::default()),
        )));
        assert!(
            apache.fairness < 0.75,
            "apache fairness {}",
            apache.fairness
        );
        assert!(cops.fairness > 0.9, "cops fairness {}", cops.fairness);
        assert!(apache.syn_drops > 0, "backlog overflow must drop SYNs");
    }

    #[test]
    fn apache_is_fair_at_light_load() {
        let apache = quick(short(ExperimentParams::figure3(
            32,
            ServerKind::Apache(ApacheParams::default()),
        )));
        assert!(apache.fairness > 0.95, "fairness {}", apache.fairness);
        assert_eq!(apache.syn_drops, 0);
    }

    #[test]
    fn overload_control_reduces_response_time_without_hurting_throughput() {
        let without = quick(ExperimentParams::figure6(64, false));
        let with = quick(ExperimentParams::figure6(64, true));
        assert!(
            with.mean_response_ms < without.mean_response_ms * 0.6,
            "with {} vs without {}",
            with.mean_response_ms,
            without.mean_response_ms
        );
        assert!(
            with.throughput_rps > without.throughput_rps * 0.9,
            "throughput {} vs {}",
            with.throughput_rps,
            without.throughput_rps
        );
        assert!(with.accepts_deferred > 0, "the gate must have engaged");
    }

    #[test]
    fn app_cache_gets_hits_under_zipf_popularity() {
        let out = quick(short(ExperimentParams::figure3(
            64,
            ServerKind::Cops(CopsParams::default()),
        )));
        assert!(
            out.app_cache_hit_rate > 0.3,
            "hit rate {}",
            out.app_cache_hit_rate
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = quick(short(ExperimentParams::figure3(
            32,
            ServerKind::Cops(CopsParams::default()),
        )));
        let b = quick(short(ExperimentParams::figure3(
            32,
            ServerKind::Cops(CopsParams::default()),
        )));
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.throughput_rps, b.throughput_rps);
        assert_eq!(a.fairness, b.fairness);
    }
}
