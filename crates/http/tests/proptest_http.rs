//! Property-based tests of the HTTP protocol library: encode∘parse
//! round-trips, incremental-delivery equivalence, and no-panic on
//! arbitrary input.

use bytes::BytesMut;
use nserver_http::parse::encode_request;
use nserver_http::{
    encode_response, parse_request, Headers, Method, ParseOutcome, Request, Response, Version,
};
use proptest::prelude::*;
use std::sync::Arc;

fn token() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,15}".prop_map(|s| s)
}

fn header_value() -> impl Strategy<Value = String> {
    "[ -~&&[^:]]{0,30}".prop_map(|s| s.trim().to_string())
}

fn path() -> impl Strategy<Value = String> {
    "(/[A-Za-z0-9_.-]{1,12}){1,4}".prop_map(|s| s)
}

fn request() -> impl Strategy<Value = Request> {
    (
        prop_oneof![Just(Method::Get), Just(Method::Head)],
        path(),
        prop_oneof![Just(Version::Http10), Just(Version::Http11)],
        proptest::collection::vec((token(), header_value()), 0..8),
    )
        .prop_map(|(method, target, version, hdrs)| {
            let mut headers = Headers::new();
            for (n, v) in hdrs {
                headers.push(n, v);
            }
            Request {
                method,
                target,
                version,
                headers,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode_request ∘ parse_request is the identity on valid requests.
    #[test]
    fn request_round_trip(req in request()) {
        let wire = encode_request(&req);
        let mut buf = BytesMut::from(&wire[..]);
        match parse_request(&mut buf) {
            ParseOutcome::Complete(parsed) => {
                prop_assert_eq!(parsed.method, req.method);
                prop_assert_eq!(parsed.target, req.target);
                prop_assert_eq!(parsed.version, req.version);
                // Header count may shrink if generated values were empty
                // after trimming; compare pairs that survive.
                for ((n1, v1), (n2, v2)) in req.headers.iter().zip(parsed.headers.iter()) {
                    prop_assert_eq!(n1, n2);
                    prop_assert_eq!(v1.trim(), v2);
                }
                prop_assert!(buf.is_empty());
            }
            other => prop_assert!(false, "round trip failed: {other:?}"),
        }
    }

    /// Byte-at-a-time delivery parses identically to one-shot delivery.
    #[test]
    fn incremental_parse_equivalence(req in request()) {
        let wire = encode_request(&req);
        let mut oneshot = BytesMut::from(&wire[..]);
        let expected = parse_request(&mut oneshot);

        let mut buf = BytesMut::new();
        let mut result = ParseOutcome::Incomplete;
        for &b in &wire {
            buf.extend_from_slice(&[b]);
            result = parse_request(&mut buf);
            if !matches!(result, ParseOutcome::Incomplete) {
                break;
            }
        }
        prop_assert_eq!(result, expected);
    }

    /// The parser never panics on arbitrary bytes and always consumes a
    /// terminated head (complete or invalid, never stuck).
    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut buf = BytesMut::from(&bytes[..]);
        let before = buf.len();
        let outcome = parse_request(&mut buf);
        match outcome {
            ParseOutcome::Complete(_) => prop_assert!(buf.len() < before),
            ParseOutcome::Incomplete => prop_assert_eq!(buf.len(), before),
            ParseOutcome::Invalid(_) => {}
        }
    }

    /// Responses always carry an accurate Content-Length and terminate
    /// the head properly.
    #[test]
    fn response_encoding_is_well_formed(
        body in proptest::collection::vec(any::<u8>(), 0..4096),
        keep_alive in any::<bool>(),
        head_only in any::<bool>(),
    ) {
        let mut resp = Response::ok(Arc::new(body.clone()), "text/plain", Version::Http11)
            .with_keep_alive(keep_alive);
        if head_only {
            resp = resp.head();
        }
        let mut out = BytesMut::new();
        encode_response(&resp, &mut out);
        let text = out.to_vec();
        let head_end = text.windows(4).position(|w| w == b"\r\n\r\n").expect("head end");
        let head = String::from_utf8_lossy(&text[..head_end]);
        prop_assert!(head.starts_with("HTTP/1.1 200 OK"));
        let want = format!("Content-Length: {}", body.len());
        prop_assert!(head.contains(&want), "missing {}", want);
        let wire_body = &text[head_end + 4..];
        if head_only {
            prop_assert!(wire_body.is_empty());
        } else {
            prop_assert_eq!(wire_body, &body[..]);
        }
    }
}
