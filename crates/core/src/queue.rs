//! Event queues: the FIFO default and the blocking wrapper the Event
//! Processor workers consume from.
//!
//! When event scheduling (O8) is enabled, the generated framework swaps the
//! plain FIFO for the [`crate::scheduler::PriorityQuotaQueue`] — the paper
//! calls out precisely this substitution as one of the crosscutting
//! structural variations the template performs.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::event::Priority;

/// An in-memory event queue. Implementations decide the service order;
/// callers supply a priority that FIFO queues simply ignore.
pub trait EventQueue<T>: Send {
    /// Enqueue an item at the given priority.
    fn push(&mut self, item: T, prio: Priority);
    /// Dequeue the next item according to the queue's discipline.
    fn pop(&mut self) -> Option<T>;
    /// Items currently queued.
    fn len(&self) -> usize;
    /// True when no items are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Plain FIFO queue (O8 = No).
#[derive(Debug)]
pub struct FifoQueue<T> {
    q: VecDeque<T>,
}

impl<T> Default for FifoQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FifoQueue<T> {
    /// Empty FIFO queue.
    pub fn new() -> Self {
        Self { q: VecDeque::new() }
    }
}

impl<T: Send> EventQueue<T> for FifoQueue<T> {
    fn push(&mut self, item: T, _prio: Priority) {
        self.q.push_back(item);
    }

    fn pop(&mut self) -> Option<T> {
        self.q.pop_front()
    }

    fn len(&self) -> usize {
        self.q.len()
    }
}

/// A thread-safe blocking façade over any [`EventQueue`]: workers block on
/// `pop_wait`, the dispatcher pushes, and the overload controller (O9)
/// observes the exact queue length through a shared gauge without taking
/// the lock.
pub struct BlockingQueue<T> {
    inner: Mutex<Box<dyn EventQueue<T>>>,
    available: Condvar,
    len_gauge: Arc<AtomicUsize>,
    closed: Mutex<bool>,
}

impl<T: Send + 'static> BlockingQueue<T> {
    /// Wrap a queue discipline.
    pub fn new(queue: Box<dyn EventQueue<T>>) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(queue),
            available: Condvar::new(),
            len_gauge: Arc::new(AtomicUsize::new(0)),
            closed: Mutex::new(false),
        })
    }

    /// Shared gauge mirroring the queue length (for watermark probes).
    pub fn len_gauge(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.len_gauge)
    }

    /// Current queue length.
    pub fn len(&self) -> usize {
        self.len_gauge.load(Ordering::Relaxed)
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue an item; wakes one waiting worker.
    pub fn push(&self, item: T, prio: Priority) {
        let mut q = self.inner.lock();
        q.push(item, prio);
        self.len_gauge.store(q.len(), Ordering::Relaxed);
        drop(q);
        self.available.notify_one();
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        let mut q = self.inner.lock();
        let item = q.pop();
        self.len_gauge.store(q.len(), Ordering::Relaxed);
        item
    }

    /// Block up to `timeout` for an item. Returns `None` on timeout or when
    /// the queue has been closed and drained.
    pub fn pop_wait(&self, timeout: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.inner.lock();
        loop {
            if let Some(item) = q.pop() {
                self.len_gauge.store(q.len(), Ordering::Relaxed);
                return Some(item);
            }
            if *self.closed.lock() {
                return None;
            }
            // Wait on the guard we already hold: releasing and re-taking
            // the lock here would open a missed-wakeup window between the
            // emptiness check and the wait.
            let timed_out = self.available.wait_until(&mut q, deadline).timed_out();
            if timed_out {
                let item = q.pop();
                self.len_gauge.store(q.len(), Ordering::Relaxed);
                return item;
            }
        }
    }

    /// Close the queue: waiting workers wake and drain what remains, then
    /// receive `None`.
    pub fn close(&self) {
        *self.closed.lock() = true;
        self.available.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        *self.closed.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_preserves_order() {
        let mut q = FifoQueue::new();
        for i in 0..10 {
            q.push(i, Priority(0));
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_ignores_priority() {
        let mut q = FifoQueue::new();
        q.push("low", Priority(9));
        q.push("high", Priority(0));
        assert_eq!(q.pop(), Some("low"));
    }

    #[test]
    fn blocking_queue_push_pop() {
        let q = BlockingQueue::new(Box::new(FifoQueue::new()));
        q.push(1, Priority(0));
        q.push(2, Priority(0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.pop_wait(Duration::from_millis(1)), Some(2));
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop_wait(Duration::from_millis(1)), None);
    }

    #[test]
    fn blocking_queue_wakes_waiter() {
        let q = BlockingQueue::new(Box::new(FifoQueue::new()));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.pop_wait(Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        q.push(42, Priority(0));
        assert_eq!(h.join().unwrap(), Some(42));
    }

    #[test]
    fn close_releases_waiters() {
        let q: Arc<BlockingQueue<i32>> = BlockingQueue::new(Box::new(FifoQueue::new()));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.pop_wait(Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
        assert!(q.is_closed());
    }

    #[test]
    fn close_still_drains_pending_items() {
        let q = BlockingQueue::new(Box::new(FifoQueue::new()));
        q.push(7, Priority(0));
        q.close();
        assert_eq!(q.pop_wait(Duration::from_millis(1)), Some(7));
        assert_eq!(q.pop_wait(Duration::from_millis(1)), None);
    }

    #[test]
    fn len_gauge_tracks_length() {
        let q = BlockingQueue::new(Box::new(FifoQueue::new()));
        let gauge = q.len_gauge();
        q.push(1, Priority(0));
        q.push(2, Priority(0));
        assert_eq!(gauge.load(Ordering::Relaxed), 2);
        q.try_pop();
        assert_eq!(gauge.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_producers_consumers_deliver_everything() {
        let q = BlockingQueue::new(Box::new(FifoQueue::new()));
        let mut producers = Vec::new();
        for p in 0..4 {
            let q = Arc::clone(&q);
            producers.push(thread::spawn(move || {
                for i in 0..250 {
                    q.push(p * 1000 + i, Priority(0));
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let q = Arc::clone(&q);
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop_wait(Duration::from_millis(200)) {
                    got.push(v);
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        assert_eq!(all.len(), 1000);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000, "duplicate or lost items");
    }
}
