//! The schedule explorer: run the real reactor under a [`Schedule`],
//! record every connection's observable trace, and check the traces
//! against the protocol models.
//!
//! The server runs exactly the production pipeline — the only test
//! scaffolding is the transport stack: an in-memory listener wrapped by
//! [`FaultyListener`] (injects the plan's faults) wrapped by
//! [`TapListener`] (records the traces the models consume). The driver
//! delivers each connection's segments in the schedule's interleaved
//! order, optionally slamming connections shut early, then quiesces:
//! clean connections are waited on until the model-predicted output has
//! drained, everything else until the trace log goes still.
//!
//! On a violation the explorer shrinks the schedule greedily — dropping
//! connections, merging segments, zeroing fault knobs and pauses — while
//! the violation persists, and panics with a replayable counterexample:
//! the generation seed, the `NSERVER_REPLAY_SEED` invocation, and the
//! serialized shrunken schedule (ready for `corpus/`).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use nserver_cache::{FileCache, PolicyKind, SharedFileCache};
use nserver_core::fault::{FaultProfile, FaultyListener};
use nserver_core::options::ServerOptions;
use nserver_core::pipeline::Service;
use nserver_core::server::ServerBuilder;
use nserver_core::tap::{ConnTrace, TapListener, TraceLog};
use nserver_core::transport::{mem, StreamIo};
use nserver_ftp::{cops_ftp_options, split_replies, FtpCodec, FtpService};
use nserver_http::{cops_http_options, HttpCodec, MemStore, StaticFileService};

use crate::ftp_model::{check_ftp, expected_replies, FtpFixture};
use crate::http_model::{check_http, expected_outbound, HttpFixture};
use crate::schedule::{generate, Proto, Schedule};
use crate::Violation;

/// Unique suffix per run so concurrent tests never share a listener
/// label.
static RUN_NONCE: AtomicU64 = AtomicU64::new(0);

/// Everything one exploration run produced.
#[derive(Debug)]
pub struct RunReport {
    /// Final trace of every accepted connection.
    pub traces: Vec<ConnTrace>,
    /// Model violations found (empty = conforming run).
    pub violations: Vec<Violation>,
}

/// The standard COPS-HTTP service under test: the conformance fixture
/// behind a real LRU file cache, so both the hit and the deferred-miss
/// paths are exercised.
pub fn standard_http_service() -> StaticFileService<MemStore> {
    let cache = SharedFileCache::new(FileCache::new(1 << 20, PolicyKind::Lru));
    StaticFileService::new(HttpFixture::standard().store(), Some(cache))
}

/// The standard COPS-FTP service under test.
pub fn standard_ftp_service() -> FtpService {
    FtpService::new(FtpFixture::vfs(), FtpFixture::users())
}

/// Run a schedule against the standard service for its protocol.
pub fn run(sched: &Schedule) -> RunReport {
    match sched.proto {
        Proto::Http => run_http(sched, standard_http_service()),
        Proto::Ftp => run_ftp(sched, standard_ftp_service()),
    }
}

/// Run an HTTP schedule against `svc` under the COPS-HTTP preset.
pub fn run_http<S: Service<HttpCodec>>(sched: &Schedule, svc: S) -> RunReport {
    run_http_with_options(sched, svc, cops_http_options())
}

/// Run an HTTP schedule against `svc` under explicit server options —
/// the hook the O1–O12 options-matrix conformance tests use.
pub fn run_http_with_options<S: Service<HttpCodec>>(
    sched: &Schedule,
    svc: S,
    opts: ServerOptions,
) -> RunReport {
    let fixture = HttpFixture::standard();
    let nonce = RUN_NONCE.fetch_add(1, Ordering::Relaxed);
    let (listener, connector) = mem::listener(&format!("conformance-http-{}-{nonce}", sched.seed));
    let log = TraceLog::new();
    let tapped = TapListener::new(FaultyListener::new(listener, sched.plan), log.clone())
        .with_plan(sched.plan);
    let server = ServerBuilder::new(opts, HttpCodec::new(), svc)
        .expect("valid server options")
        .serve(tapped);

    let (streams, connect_order) = deliver(sched, &connector);
    let targets = strict_targets(sched, &connect_order, |conn| {
        Target::Bytes(expected_outbound(&fixture, &conn.bytes()).0.len())
    });
    quiesce(&log, &targets, Duration::from_secs(3));
    server.shutdown();
    let traces = log.snapshot();
    let violations = collect_violations(sched, &traces, &log, &connect_order, |trace, strict| {
        check_http(&fixture, trace, strict)
    });
    drop(streams);
    RunReport { traces, violations }
}

/// Run an FTP schedule against `svc` under the COPS-FTP preset.
pub fn run_ftp<S: Service<FtpCodec>>(sched: &Schedule, svc: S) -> RunReport {
    let nonce = RUN_NONCE.fetch_add(1, Ordering::Relaxed);
    let (listener, connector) = mem::listener(&format!("conformance-ftp-{}-{nonce}", sched.seed));
    let log = TraceLog::new();
    let tapped = TapListener::new(FaultyListener::new(listener, sched.plan), log.clone())
        .with_plan(sched.plan);
    let server = ServerBuilder::new(cops_ftp_options(), FtpCodec, svc)
        .expect("valid server options")
        .serve(tapped);

    let (streams, connect_order) = deliver(sched, &connector);
    let targets = strict_targets(sched, &connect_order, |conn| {
        Target::Blocks(expected_replies(&conn.bytes()).0.len())
    });
    quiesce(&log, &targets, Duration::from_secs(3));
    server.shutdown();
    let traces = log.snapshot();
    let violations = collect_violations(sched, &traces, &log, &connect_order, |trace, strict| {
        check_ftp(trace, strict)
    });
    drop(streams);
    RunReport { traces, violations }
}

/// What quiescence means for one strictly-checked connection.
enum Target {
    /// At least this many outbound bytes (HTTP: byte-exact model).
    Bytes(usize),
    /// At least this many complete reply blocks (FTP: code-level model).
    Blocks(usize),
}

/// Deliver the schedule: connect lazily on a connection's first step (so
/// connect order — and with the FIFO inbox, accept index — is the order
/// of first steps), push one segment per step, pause as scheduled, and
/// slam `close_early` connections shut right after their last segment.
/// Returns the client streams (kept open so the server never sees a
/// spurious EOF) and each conn's 1-based connect order.
fn deliver(
    sched: &Schedule,
    connector: &mem::MemConnector,
) -> (Vec<Option<mem::MemStream>>, Vec<Option<u64>>) {
    let mut streams: Vec<Option<mem::MemStream>> = (0..sched.conns.len()).map(|_| None).collect();
    let mut connect_order: Vec<Option<u64>> = vec![None; sched.conns.len()];
    let mut next_order = 0u64;
    let mut seg_idx = vec![0usize; sched.conns.len()];
    for step in &sched.order {
        let ci = step.conn;
        if streams[ci].is_none() {
            streams[ci] = Some(connector.connect());
            next_order += 1;
            connect_order[ci] = Some(next_order);
        }
        let stream = streams[ci].as_mut().expect("just connected");
        let seg = &sched.conns[ci].segments[seg_idx[ci]];
        seg_idx[ci] += 1;
        push_bytes(stream, seg);
        if seg_idx[ci] == sched.conns[ci].segments.len() && sched.conns[ci].close_early {
            stream.shutdown();
        }
        if step.pause_ms > 0 {
            std::thread::sleep(Duration::from_millis(step.pause_ms));
        }
    }
    (streams, connect_order)
}

/// Client-side tolerant write: retry backpressure, give up on a hard
/// error (the server legitimately reset or closed the pipe).
fn push_bytes(stream: &mut mem::MemStream, data: &[u8]) {
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut sent = 0;
    while sent < data.len() && Instant::now() < deadline {
        match stream.try_write(&data[sent..]) {
            Ok(0) => std::thread::sleep(Duration::from_micros(100)),
            Ok(n) => sent += n,
            Err(_) => return,
        }
    }
}

/// The quiesce targets: one per connection the models will check
/// strictly (clean profile, no early close, accept succeeded).
fn strict_targets(
    sched: &Schedule,
    connect_order: &[Option<u64>],
    target_for: impl Fn(&crate::schedule::ConnScript) -> Target,
) -> Vec<(u64, Target)> {
    sched
        .conns
        .iter()
        .zip(connect_order)
        .filter_map(|(conn, k)| {
            let k = (*k)?;
            let strict = !sched.plan.accept_fails(k)
                && sched.plan.profile_for(k) == FaultProfile::Clean
                && !conn.close_early;
            strict.then(|| (k, target_for(conn)))
        })
        .collect()
}

fn target_met(trace: &ConnTrace, target: &Target) -> bool {
    match target {
        Target::Bytes(n) => trace.outbound().len() >= *n,
        Target::Blocks(n) => split_replies(&trace.outbound()).complete.len() >= *n,
    }
}

/// Wait until every strict connection has drained its model-predicted
/// output AND the trace log has gone still, or the deadline passes (a
/// stuck run is then diagnosed by the checkers, not by a hang).
fn quiesce(log: &TraceLog, targets: &[(u64, Target)], patience: Duration) {
    let deadline = Instant::now() + patience;
    let mut last_sig: Option<Vec<(u64, usize)>> = None;
    let mut stable = 0;
    loop {
        let snap = log.snapshot();
        let targets_met = targets.iter().all(|(k, t)| {
            snap.iter()
                .find(|tr| tr.accept_index == *k)
                .is_some_and(|tr| target_met(tr, t))
        });
        let sig: Vec<(u64, usize)> = snap
            .iter()
            .map(|t| (t.accept_index, t.events.len()))
            .collect();
        if targets_met && last_sig.as_ref() == Some(&sig) {
            stable += 1;
            if stable >= 2 {
                return;
            }
        } else {
            stable = 0;
        }
        last_sig = Some(sig);
        if Instant::now() > deadline {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Map each conn script to its trace (via connect order == accept index)
/// and run the model checker over it.
fn collect_violations(
    sched: &Schedule,
    traces: &[ConnTrace],
    log: &TraceLog,
    connect_order: &[Option<u64>],
    check: impl Fn(&ConnTrace, bool) -> Vec<Violation>,
) -> Vec<Violation> {
    let failed: HashSet<u64> = log.accept_failures().into_iter().collect();
    let mut violations = Vec::new();
    for (conn, k) in sched.conns.iter().zip(connect_order) {
        let Some(k) = *k else { continue };
        if failed.contains(&k) {
            // An injected accept failure: the connection never existed
            // server-side, so there is nothing to check.
            continue;
        }
        let Some(trace) = traces.iter().find(|t| t.accept_index == k) else {
            // Accepted-but-untraced cannot happen; never-accepted (run
            // shut down first) has no observable behaviour to judge.
            continue;
        };
        let strict = sched.plan.profile_for(k) == FaultProfile::Clean && !conn.close_early;
        violations.extend(check(trace, strict));
    }
    violations
}

/// Greedy counterexample shrinking: repeatedly try structural
/// simplifications, keeping any that still fail, until a fixed point or
/// the run budget is spent. Returns the shrunken schedule and how many
/// candidate runs it took.
pub fn shrink(
    orig: &Schedule,
    still_fails: &dyn Fn(&Schedule) -> bool,
    max_runs: usize,
) -> (Schedule, usize) {
    let mut cur = orig.clone();
    let mut runs = 0;
    'outer: loop {
        for cand in shrink_candidates(&cur) {
            if runs >= max_runs {
                break 'outer;
            }
            runs += 1;
            if still_fails(&cand) {
                cur = cand;
                continue 'outer;
            }
        }
        break;
    }
    (cur, runs)
}

/// One round of simplification candidates, most aggressive first.
fn shrink_candidates(s: &Schedule) -> Vec<Schedule> {
    let mut out = Vec::new();
    // Drop a whole connection (re-indexing the order).
    if s.conns.len() > 1 {
        for drop_ci in 0..s.conns.len() {
            let mut c = s.clone();
            c.conns.remove(drop_ci);
            c.order.retain(|st| st.conn != drop_ci);
            for st in &mut c.order {
                if st.conn > drop_ci {
                    st.conn -= 1;
                }
            }
            out.push(c);
        }
    }
    // Zero every fault knob, one family at a time.
    for knob in 0..6 {
        let mut c = s.clone();
        let p = &mut c.plan;
        let changed = match knob {
            0 => std::mem::take(&mut p.reset_per_mille) != 0,
            1 => std::mem::take(&mut p.storm_per_mille) != 0,
            2 => std::mem::take(&mut p.short_io_per_mille) != 0,
            3 => std::mem::take(&mut p.corrupt_per_mille) != 0,
            4 => std::mem::take(&mut p.stall_per_mille) != 0,
            _ => std::mem::take(&mut p.accept_fail_every) != 0,
        };
        if changed {
            out.push(c);
        }
    }
    // Disable early closes.
    for ci in 0..s.conns.len() {
        if s.conns[ci].close_early {
            let mut c = s.clone();
            c.conns[ci].close_early = false;
            out.push(c);
        }
    }
    // Zero all pauses.
    if s.order.iter().any(|st| st.pause_ms > 0) {
        let mut c = s.clone();
        for st in &mut c.order {
            st.pause_ms = 0;
        }
        out.push(c);
    }
    // Merge a connection's last two segments (drops one order step).
    for ci in 0..s.conns.len() {
        if s.conns[ci].segments.len() > 1 {
            let mut c = s.clone();
            let tail = c.conns[ci].segments.pop().expect("len > 1");
            c.conns[ci]
                .segments
                .last_mut()
                .expect("len > 0")
                .extend_from_slice(&tail);
            let last_step = c
                .order
                .iter()
                .rposition(|st| st.conn == ci)
                .expect("conn has steps");
            c.order.remove(last_step);
            out.push(c);
        }
    }
    // Halve a connection's final segment.
    for ci in 0..s.conns.len() {
        let seg = s.conns[ci].segments.last().expect("non-empty");
        if seg.len() > 1 {
            let mut c = s.clone();
            let half = seg.len() / 2;
            c.conns[ci]
                .segments
                .last_mut()
                .expect("non-empty")
                .truncate(half);
            out.push(c);
        }
    }
    out
}

/// Shrink `sched` and panic with a fully replayable counterexample.
pub fn fail_with_counterexample(
    sched: &Schedule,
    violations: &[Violation],
    still_fails: &dyn Fn(&Schedule) -> bool,
) -> ! {
    let (shrunk, runs) = shrink(sched, still_fails, 200);
    let listing: String = violations.iter().map(|v| format!("  {v}\n")).collect();
    panic!(
        "conformance violation: proto={} seed={} fault-plan-seed={}\n{listing}\
         replay exactly this seed with:\n  NSERVER_REPLAY_SEED={} cargo test -q -p conformance\n\
         shrunken counterexample ({runs} shrink runs; parseable via Schedule::parse):\n{}",
        sched.proto_name(),
        sched.seed,
        sched.plan.seed,
        sched.seed,
        shrunk.serialize(),
    );
}

impl Schedule {
    fn proto_name(&self) -> &'static str {
        match self.proto {
            Proto::Http => "http",
            Proto::Ftp => "ftp",
        }
    }
}

/// Coverage summary returned by [`explore`].
#[derive(Debug)]
pub struct ExploreSummary {
    /// Schedules executed.
    pub runs: usize,
    /// Distinct schedule fingerprints among them.
    pub distinct_schedules: usize,
}

/// Generate and run one schedule per seed, panicking with a shrunken,
/// replayable counterexample on the first violation.
pub fn explore(proto: Proto, seeds: impl IntoIterator<Item = u64>) -> ExploreSummary {
    let mut fingerprints = HashSet::new();
    let mut runs = 0;
    for seed in seeds {
        let sched = generate(proto, seed);
        fingerprints.insert(sched.fingerprint());
        runs += 1;
        let report = run(&sched);
        if !report.violations.is_empty() {
            fail_with_counterexample(&sched, &report.violations, &|s| {
                !run(s).violations.is_empty()
            });
        }
    }
    ExploreSummary {
        runs,
        distinct_schedules: fingerprints.len(),
    }
}

/// The seed set for an exploration test. `NSERVER_REPLAY_SEED=n` narrows
/// every suite to exactly seed `n` (the counterexample replay workflow);
/// `NSERVER_CONF_SEED_SPAN=lo..hi` widens the sweep (the CI extended
/// run); otherwise `default_lo..default_hi`.
pub fn seed_range(default_lo: u64, default_hi: u64) -> Vec<u64> {
    if let Ok(s) = std::env::var("NSERVER_REPLAY_SEED") {
        let seed = s
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("NSERVER_REPLAY_SEED={s:?} is not a u64: {e}"));
        return vec![seed];
    }
    if let Ok(s) = std::env::var("NSERVER_CONF_SEED_SPAN") {
        let (lo, hi) = s
            .split_once("..")
            .unwrap_or_else(|| panic!("NSERVER_CONF_SEED_SPAN={s:?} is not lo..hi"));
        let lo: u64 = lo.trim().parse().expect("span lo");
        let hi: u64 = hi.trim().parse().expect("span hi");
        return (lo..hi).collect();
    }
    (default_lo..default_hi).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{ConnScript, Step};
    use nserver_core::fault::FaultPlan;

    fn two_conn_schedule() -> Schedule {
        Schedule {
            proto: Proto::Http,
            seed: 0,
            plan: FaultPlan {
                reset_per_mille: 100,
                ..FaultPlan::new(5)
            },
            conns: vec![
                ConnScript {
                    segments: vec![b"GET /a HTTP/1.1\r\n".to_vec(), b"\r\n".to_vec()],
                    close_early: true,
                },
                ConnScript {
                    segments: vec![b"GET /b HTTP/1.1\r\n\r\n".to_vec()],
                    close_early: false,
                },
            ],
            order: vec![
                Step {
                    conn: 0,
                    pause_ms: 1,
                },
                Step {
                    conn: 1,
                    pause_ms: 0,
                },
                Step {
                    conn: 0,
                    pause_ms: 2,
                },
            ],
        }
    }

    #[test]
    fn shrink_reaches_a_minimal_failing_form() {
        // Synthetic oracle: "fails" whenever conn 0's script mentions /a.
        let fails = |s: &Schedule| {
            s.conns
                .iter()
                .any(|c| c.bytes().windows(2).any(|w| w == b"/a"))
        };
        let orig = two_conn_schedule();
        assert!(fails(&orig));
        let (shrunk, runs) = shrink(&orig, &fails, 100);
        assert!(fails(&shrunk), "shrinking must preserve the failure");
        assert!(runs > 0);
        assert_eq!(shrunk.conns.len(), 1, "irrelevant conn dropped");
        assert_eq!(shrunk.plan.reset_per_mille, 0, "irrelevant knob zeroed");
        assert!(shrunk.order.iter().all(|s| s.pause_ms == 0));
        assert!(!shrunk.conns[0].close_early);
        shrunk.check_consistency().expect("shrunk stays consistent");
        assert!(
            shrunk.conns[0].bytes().len() < orig.conns[0].bytes().len(),
            "byte-level shrinking happened"
        );
    }

    #[test]
    fn shrink_respects_the_run_budget() {
        let (_, runs) = shrink(&two_conn_schedule(), &|_| true, 7);
        assert!(runs <= 7);
    }

    #[test]
    fn seed_range_defaults_and_env_overrides() {
        assert_eq!(seed_range(3, 6), vec![3, 4, 5]);
        std::env::set_var("NSERVER_CONF_SEED_SPAN", "10..13");
        assert_eq!(seed_range(3, 6), vec![10, 11, 12]);
        std::env::set_var("NSERVER_REPLAY_SEED", "42");
        assert_eq!(seed_range(3, 6), vec![42], "replay wins over span");
        std::env::remove_var("NSERVER_REPLAY_SEED");
        std::env::remove_var("NSERVER_CONF_SEED_SPAN");
    }
}
