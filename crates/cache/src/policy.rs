//! Replacement-policy abstraction (template option O6).
//!
//! A [`ReplacementPolicy`] only sees opaque [`EntryId`]s plus per-entry
//! metadata; the [`crate::FileCache`] owns keys and data. This mirrors the
//! paper's design where the cache replacement policy is a pluggable hook
//! that the generated framework calls "automatically at the appropriate
//! time" — a programmer supplies a custom policy without touching any other
//! generated code.

use crate::{HyperG, Lfu, Lru, LruMin, LruThreshold};

/// Opaque identifier for a cache entry, assigned by the cache.
pub type EntryId = u64;

/// Metadata the cache tracks per entry and exposes to policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryMeta {
    /// Entry payload size in bytes.
    pub size: u64,
    /// Logical access clock value of the most recent access (monotonically
    /// increasing; larger = more recent).
    pub last_access: u64,
    /// Number of accesses since insertion (insertion counts as one).
    pub access_count: u64,
    /// Logical clock value at insertion time.
    pub inserted_at: u64,
}

/// A cache replacement policy.
///
/// The cache notifies the policy of insertions, accesses and removals, and
/// asks it to pick victims when space is needed. Implementations maintain
/// whatever index structures they need, keyed by [`EntryId`].
pub trait ReplacementPolicy: Send {
    /// Human-readable policy name (used in profiling output).
    fn name(&self) -> &'static str;

    /// Whether an object of `size` bytes should be admitted to a cache of
    /// `capacity` bytes at all. LRU-Threshold refuses outsized documents;
    /// every other built-in policy admits anything that can physically fit.
    fn admits(&self, size: u64, capacity: u64) -> bool {
        size <= capacity
    }

    /// An entry was inserted.
    fn on_insert(&mut self, id: EntryId, meta: &EntryMeta);

    /// An entry was accessed (cache hit).
    fn on_access(&mut self, id: EntryId, meta: &EntryMeta);

    /// An entry was removed (either evicted or explicitly invalidated).
    fn on_remove(&mut self, id: EntryId);

    /// Choose a victim to make room for an incoming object of
    /// `incoming_size` bytes. Returns `None` when the policy tracks no
    /// entries. The cache calls this repeatedly until enough space is free.
    fn choose_victim(&mut self, incoming_size: u64) -> Option<EntryId>;
}

/// Built-in policy selection, mirroring the legal values of option O6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least Recently Used.
    Lru,
    /// Least Frequently Used (ties broken by recency).
    Lfu,
    /// LRU-MIN: prefer evicting documents at least as large as the incoming
    /// one; halve the size threshold until victims are found.
    LruMin,
    /// LRU with an admission threshold: documents larger than the given
    /// fraction of capacity are never cached.
    LruThreshold {
        /// Maximum cacheable object size as parts-per-thousand of capacity.
        max_size_permille: u32,
    },
    /// Hyper-G: evict least-frequently used, break ties by least recent
    /// access, break remaining ties by largest size.
    HyperG,
}

impl PolicyKind {
    /// Instantiate the corresponding policy object.
    pub fn build(self) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new()),
            PolicyKind::Lfu => Box::new(Lfu::new()),
            PolicyKind::LruMin => Box::new(LruMin::new()),
            PolicyKind::LruThreshold { max_size_permille } => {
                Box::new(LruThreshold::new(max_size_permille))
            }
            PolicyKind::HyperG => Box::new(HyperG::new()),
        }
    }

    /// Stable display name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Lfu => "LFU",
            PolicyKind::LruMin => "LRU-MIN",
            PolicyKind::LruThreshold { .. } => "LRU-Threshold",
            PolicyKind::HyperG => "Hyper-G",
        }
    }

    /// All parameterless built-in kinds (threshold uses a default of 25%),
    /// handy for exhaustive tests and the policy-comparison bench.
    pub fn all() -> [PolicyKind; 5] {
        [
            PolicyKind::Lru,
            PolicyKind::Lfu,
            PolicyKind::LruMin,
            PolicyKind::LruThreshold {
                max_size_permille: 250,
            },
            PolicyKind::HyperG,
        ]
    }
}

/// The "Custom" legal value of O6: a user-supplied victim-selection hook.
///
/// The hook receives the candidate set (id + metadata) and the incoming
/// object size and returns the entry to evict. The surrounding bookkeeping
/// (candidate tracking, metadata, repetition until space frees up) is kept
/// in generated/framework code, exactly as the paper describes: "a
/// programmer can implement a different cache replacement policy by simply
/// adding code to a hook method".
pub struct CustomPolicy {
    entries: Vec<(EntryId, EntryMeta)>,
    select: VictimSelector,
}

/// The custom victim-selection hook: `(candidates, incoming_size) ->
/// entry to evict`.
pub type VictimSelector = Box<dyn FnMut(&[(EntryId, EntryMeta)], u64) -> Option<EntryId> + Send>;

impl CustomPolicy {
    /// Create a custom policy from a victim-selection closure.
    pub fn new(
        select: impl FnMut(&[(EntryId, EntryMeta)], u64) -> Option<EntryId> + Send + 'static,
    ) -> Self {
        Self {
            entries: Vec::new(),
            select: Box::new(select),
        }
    }
}

impl ReplacementPolicy for CustomPolicy {
    fn name(&self) -> &'static str {
        "Custom"
    }

    fn on_insert(&mut self, id: EntryId, meta: &EntryMeta) {
        self.entries.push((id, *meta));
    }

    fn on_access(&mut self, id: EntryId, meta: &EntryMeta) {
        if let Some(e) = self.entries.iter_mut().find(|(eid, _)| *eid == id) {
            e.1 = *meta;
        }
    }

    fn on_remove(&mut self, id: EntryId) {
        self.entries.retain(|(eid, _)| *eid != id);
    }

    fn choose_victim(&mut self, incoming_size: u64) -> Option<EntryId> {
        (self.select)(&self.entries, incoming_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(size: u64, t: u64) -> EntryMeta {
        EntryMeta {
            size,
            last_access: t,
            access_count: 1,
            inserted_at: t,
        }
    }

    #[test]
    fn policy_kind_names_match_paper() {
        assert_eq!(PolicyKind::Lru.name(), "LRU");
        assert_eq!(PolicyKind::Lfu.name(), "LFU");
        assert_eq!(PolicyKind::LruMin.name(), "LRU-MIN");
        assert_eq!(
            PolicyKind::LruThreshold {
                max_size_permille: 100
            }
            .name(),
            "LRU-Threshold"
        );
        assert_eq!(PolicyKind::HyperG.name(), "Hyper-G");
    }

    #[test]
    fn policy_kind_builds_every_variant() {
        for kind in PolicyKind::all() {
            let built = kind.build();
            assert_eq!(built.name(), kind.name());
        }
    }

    #[test]
    fn custom_policy_uses_the_hook() {
        // Evict the largest entry regardless of recency.
        let mut p = CustomPolicy::new(|entries, _incoming| {
            entries
                .iter()
                .max_by_key(|(_, m)| m.size)
                .map(|(id, _)| *id)
        });
        p.on_insert(1, &meta(10, 0));
        p.on_insert(2, &meta(99, 1));
        p.on_insert(3, &meta(50, 2));
        assert_eq!(p.choose_victim(1), Some(2));
        p.on_remove(2);
        assert_eq!(p.choose_victim(1), Some(3));
    }

    #[test]
    fn custom_policy_on_access_updates_meta() {
        // Evict the least-recently-accessed entry.
        let mut p = CustomPolicy::new(|entries, _| {
            entries
                .iter()
                .min_by_key(|(_, m)| m.last_access)
                .map(|(id, _)| *id)
        });
        p.on_insert(1, &meta(10, 0));
        p.on_insert(2, &meta(10, 1));
        p.on_access(
            1,
            &EntryMeta {
                size: 10,
                last_access: 5,
                access_count: 2,
                inserted_at: 0,
            },
        );
        assert_eq!(p.choose_victim(1), Some(2));
    }

    #[test]
    fn default_admits_rejects_only_oversized() {
        let p = Lru::new();
        assert!(p.admits(10, 10));
        assert!(!p.admits(11, 10));
    }
}
