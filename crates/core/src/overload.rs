//! Automatic overload control (template option O9).
//!
//! The paper describes two mechanisms. The trivial one caps the number of
//! simultaneous connections. The second — which Fig. 6 evaluates — watches
//! the lengths of multiple event queues: "If there is a queue whose length
//! exceeds its specified high watermark, then new connection requests are
//! postponed until the length drops below a specified low watermark." The
//! hysteresis band between the watermarks prevents accept/pause flapping,
//! and watching *multiple* queues handles multi-bottleneck overload (CPU
//! and disk at once).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Watermark state machine over a single observed queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermark {
    high: usize,
    low: usize,
    paused: bool,
}

impl Watermark {
    /// Create with `low < high` (validated by the options layer).
    pub fn new(high: usize, low: usize) -> Self {
        assert!(low < high, "low watermark must be below high");
        Self {
            high,
            low,
            paused: false,
        }
    }

    /// Feed the current queue length; returns `true` while accepting
    /// should pause.
    pub fn observe(&mut self, len: usize) -> bool {
        if self.paused {
            if len <= self.low {
                self.paused = false;
            }
        } else if len >= self.high {
            self.paused = true;
        }
        self.paused
    }

    /// Whether accepting is currently paused.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// High watermark.
    pub fn high(&self) -> usize {
        self.high
    }

    /// Low watermark.
    pub fn low(&self) -> usize {
        self.low
    }
}

/// A queue-length probe: a shared gauge owned by some event queue.
pub type LenProbe = Arc<AtomicUsize>;

/// The overload controller the dispatcher consults before accepting.
pub struct OverloadController {
    max_connections: Option<usize>,
    watched: Vec<(LenProbe, Watermark)>,
    pauses: u64,
    resumes: u64,
}

impl OverloadController {
    /// A controller that never pauses (O9 = No).
    pub fn disabled() -> Self {
        Self {
            max_connections: None,
            watched: Vec::new(),
            pauses: 0,
            resumes: 0,
        }
    }

    /// The trivial mechanism: a simultaneous-connection cap.
    pub fn with_max_connections(limit: usize) -> Self {
        Self {
            max_connections: Some(limit),
            watched: Vec::new(),
            pauses: 0,
            resumes: 0,
        }
    }

    /// The watermark mechanism over an initial probe; more queues can be
    /// watched via [`OverloadController::watch`].
    pub fn with_watermark(probe: LenProbe, high: usize, low: usize) -> Self {
        let mut c = Self::disabled();
        c.watch(probe, high, low);
        c
    }

    /// Watch an additional queue (multi-bottleneck control).
    pub fn watch(&mut self, probe: LenProbe, high: usize, low: usize) {
        self.watched.push((probe, Watermark::new(high, low)));
    }

    /// Should the server accept a new connection right now, given the
    /// current connection count?
    pub fn may_accept(&mut self, current_connections: usize) -> bool {
        if let Some(limit) = self.max_connections {
            if current_connections >= limit {
                return false;
            }
        }
        let mut pause = false;
        for (probe, wm) in &mut self.watched {
            let len = probe.load(Ordering::Relaxed);
            let was = wm.is_paused();
            let now = wm.observe(len);
            if now && !was {
                self.pauses += 1;
            }
            if was && !now {
                self.resumes += 1;
            }
            pause |= now;
        }
        !pause
    }

    /// Times any watermark transitioned into the paused state.
    pub fn pause_transitions(&self) -> u64 {
        self.pauses
    }

    /// Times any watermark transitioned back to accepting.
    pub fn resume_transitions(&self) -> u64 {
        self.resumes
    }

    /// Whether any watched watermark is currently paused. Does not
    /// re-observe the probes: reflects the state as of the last
    /// [`may_accept`](Self::may_accept) call.
    pub fn is_paused(&self) -> bool {
        self.watched.iter().any(|(_, wm)| wm.is_paused())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_hysteresis() {
        let mut wm = Watermark::new(20, 5);
        assert!(!wm.observe(10));
        assert!(wm.observe(20)); // hits high -> pause
        assert!(wm.observe(10)); // still above low -> stay paused
        assert!(wm.observe(6));
        assert!(!wm.observe(5)); // at low -> resume
        assert!(!wm.observe(19)); // below high -> keep accepting
        assert!(wm.observe(25));
        assert_eq!((wm.high(), wm.low()), (20, 5));
    }

    #[test]
    #[should_panic(expected = "low watermark")]
    fn inverted_watermarks_panic() {
        Watermark::new(5, 20);
    }

    #[test]
    fn disabled_controller_always_accepts() {
        let mut c = OverloadController::disabled();
        assert!(c.may_accept(1_000_000));
        assert_eq!(c.pause_transitions(), 0);
    }

    #[test]
    fn max_connections_cap() {
        let mut c = OverloadController::with_max_connections(150);
        assert!(c.may_accept(149));
        assert!(!c.may_accept(150));
        assert!(!c.may_accept(151));
    }

    #[test]
    fn watermark_controller_gates_on_probe() {
        let probe: LenProbe = Arc::new(AtomicUsize::new(0));
        let mut c = OverloadController::with_watermark(Arc::clone(&probe), 20, 5);
        assert!(c.may_accept(0));
        probe.store(20, Ordering::Relaxed);
        assert!(!c.may_accept(0));
        probe.store(10, Ordering::Relaxed);
        assert!(!c.may_accept(0), "hysteresis keeps it paused");
        probe.store(5, Ordering::Relaxed);
        assert!(c.may_accept(0));
        assert_eq!(c.pause_transitions(), 1);
        assert_eq!(c.resume_transitions(), 1);
        assert!(!c.is_paused());
    }

    #[test]
    fn resume_counter_tracks_pause_counter() {
        let probe: LenProbe = Arc::new(AtomicUsize::new(0));
        let mut c = OverloadController::with_watermark(Arc::clone(&probe), 20, 5);
        for _ in 0..3 {
            probe.store(25, Ordering::Relaxed);
            assert!(!c.may_accept(0));
            assert!(c.is_paused());
            probe.store(0, Ordering::Relaxed);
            assert!(c.may_accept(0));
        }
        assert_eq!(c.pause_transitions(), 3);
        assert_eq!(c.resume_transitions(), 3);
    }

    #[test]
    fn any_watched_queue_can_pause() {
        let cpu: LenProbe = Arc::new(AtomicUsize::new(0));
        let disk: LenProbe = Arc::new(AtomicUsize::new(0));
        let mut c = OverloadController::with_watermark(Arc::clone(&cpu), 20, 5);
        c.watch(Arc::clone(&disk), 10, 2);
        assert!(c.may_accept(0));
        disk.store(10, Ordering::Relaxed);
        assert!(!c.may_accept(0), "disk bottleneck pauses accepting");
        disk.store(2, Ordering::Relaxed);
        cpu.store(30, Ordering::Relaxed);
        assert!(!c.may_accept(0), "cpu bottleneck pauses accepting");
        cpu.store(1, Ordering::Relaxed);
        assert!(c.may_accept(0));
        assert_eq!(c.pause_transitions(), 2);
    }
}
