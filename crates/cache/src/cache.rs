//! The byte-bounded file cache that the generated framework embeds when
//! template option O6 is enabled.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::policy::{EntryId, EntryMeta, PolicyKind, ReplacementPolicy};

/// Cache statistics, feeding the performance-profiling option (O11): the
/// paper explicitly lists "the file cache hit rate" among the statistics a
/// profiled N-Server gathers automatically.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the entry resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Insertions refused by the policy's admission test.
    pub rejected: u64,
    /// Bytes evicted over the cache lifetime.
    pub evicted_bytes: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise accumulation (used to aggregate per-shard stats).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.rejected += other.rejected;
        self.evicted_bytes += other.evicted_bytes;
    }
}

struct Entry<K> {
    key: K,
    data: Arc<Vec<u8>>,
    meta: EntryMeta,
}

/// A byte-capacity-bounded in-memory file cache with a pluggable
/// replacement policy.
///
/// Values are `Arc<Vec<u8>>` so a hit hands out a cheap shared reference —
/// the server can keep sending a file that has since been evicted.
pub struct FileCache<K: Eq + Hash + Clone> {
    capacity: u64,
    used: u64,
    clock: u64,
    next_id: EntryId,
    ids: HashMap<K, EntryId>,
    entries: HashMap<EntryId, Entry<K>>,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone> FileCache<K> {
    /// Create a cache bounded to `capacity` bytes with a built-in policy.
    pub fn new(capacity: u64, policy: PolicyKind) -> Self {
        Self::with_policy(capacity, policy.build())
    }

    /// Create a cache with an arbitrary (possibly custom) policy object.
    pub fn with_policy(capacity: u64, policy: Box<dyn ReplacementPolicy>) -> Self {
        Self {
            capacity,
            used: 0,
            clock: 0,
            next_id: 0,
            ids: HashMap::new(),
            entries: HashMap::new(),
            policy,
            stats: CacheStats::default(),
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Look up a file. Counts a hit or miss and refreshes recency/frequency.
    pub fn get<Q>(&mut self, key: &Q) -> Option<Arc<Vec<u8>>>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let now = self.tick();
        if let Some(&id) = self.ids.get(key) {
            let entry = self.entries.get_mut(&id).expect("id map out of sync");
            entry.meta.last_access = now;
            entry.meta.access_count += 1;
            let meta = entry.meta;
            let data = Arc::clone(&entry.data);
            self.policy.on_access(id, &meta);
            self.stats.hits += 1;
            Some(data)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Check residency without perturbing statistics or recency.
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.ids.contains_key(key)
    }

    /// Insert (or replace) a file. Returns `false` when the policy's
    /// admission test refused the object (e.g. LRU-Threshold and oversized
    /// documents) — the caller then serves the bytes without caching them.
    pub fn insert(&mut self, key: K, data: Arc<Vec<u8>>) -> bool {
        let size = data.len() as u64;
        if !self.policy.admits(size, self.capacity) {
            self.stats.rejected += 1;
            return false;
        }
        // Replacing an existing entry: drop the old one first.
        if let Some(&id) = self.ids.get(&key) {
            self.remove_id(id, false);
        }
        // Evict until the newcomer fits.
        while self.used + size > self.capacity {
            match self.policy.choose_victim(size) {
                Some(victim) => self.remove_id(victim, true),
                None => return false, // nothing left to evict; cannot fit
            }
        }
        let now = self.tick();
        let id = self.next_id;
        self.next_id += 1;
        let meta = EntryMeta {
            size,
            last_access: now,
            access_count: 1,
            inserted_at: now,
        };
        self.ids.insert(key.clone(), id);
        self.entries.insert(id, Entry { key, data, meta });
        self.used += size;
        self.policy.on_insert(id, &meta);
        true
    }

    /// Explicitly invalidate a file (e.g. after it changed on disk).
    pub fn invalidate<Q>(&mut self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        if let Some(&id) = self.ids.get(key) {
            self.remove_id(id, false);
            true
        } else {
            false
        }
    }

    fn remove_id(&mut self, id: EntryId, is_eviction: bool) {
        if let Some(entry) = self.entries.remove(&id) {
            self.ids.remove(&entry.key);
            self.used -= entry.meta.size;
            self.policy.on_remove(id);
            if is_eviction {
                self.stats.evictions += 1;
                self.stats.evicted_bytes += entry.meta.size;
            }
        }
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Name of the active replacement policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }
}

/// Default shard count for [`SharedFileCache::sharded`].
pub const DEFAULT_SHARDS: usize = 8;

/// Thread-safe cache handle shared between event-processor workers.
///
/// The cache is partitioned into independent shards, each behind its own
/// lock, with keys routed by `hash(key) % shards`. Workers touching
/// different shards never contend; a single global lock would serialize
/// every worker of the Event Processor (O2) behind one mutex on the file
/// hot path (O6). Capacity is split evenly across shards, so the byte
/// bound still holds globally — the tradeoff is that no single object
/// larger than `capacity / shards` can be cached.
#[derive(Clone)]
pub struct SharedFileCache<K: Eq + Hash + Clone> {
    shards: Arc<Vec<Mutex<FileCache<K>>>>,
}

impl<K: Eq + Hash + Clone> SharedFileCache<K> {
    /// Wrap a single pre-built cache for shared use (one shard). This is
    /// the path for custom policy objects, which cannot be replicated
    /// across shards.
    pub fn new(cache: FileCache<K>) -> Self {
        Self {
            shards: Arc::new(vec![Mutex::new(cache)]),
        }
    }

    /// Build a sharded cache: `shards` independent partitions (≥ 1), each
    /// running its own instance of the built-in `policy` over an even
    /// split of `capacity`.
    pub fn sharded(capacity: u64, policy: PolicyKind, shards: usize) -> Self {
        let n = shards.max(1) as u64;
        let base = capacity / n;
        let remainder = capacity % n;
        let shards = (0..n)
            // Spread the rounding remainder so the shard capacities sum
            // exactly to `capacity`.
            .map(|i| base + u64::from(i < remainder))
            .map(|cap| Mutex::new(FileCache::new(cap, policy)))
            .collect();
        Self {
            shards: Arc::new(shards),
        }
    }

    fn shard_for<Q>(&self, key: &Q) -> &Mutex<FileCache<K>>
    where
        Q: Hash + ?Sized,
    {
        use std::hash::Hasher;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Number of independent partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// See [`FileCache::get`].
    pub fn get<Q>(&self, key: &Q) -> Option<Arc<Vec<u8>>>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.shard_for(key).lock().get(key)
    }

    /// See [`FileCache::insert`].
    pub fn insert(&self, key: K, data: Arc<Vec<u8>>) -> bool {
        self.shard_for(&key).lock().insert(key, data)
    }

    /// See [`FileCache::invalidate`].
    pub fn invalidate<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.shard_for(key).lock().invalidate(key)
    }

    /// Aggregate statistics summed over every shard.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in self.shards.iter() {
            total.merge(&shard.lock().stats());
        }
        total
    }

    /// Bytes resident, summed over every shard.
    pub fn used_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().used_bytes()).sum()
    }

    /// Configured capacity, summed over every shard.
    pub fn capacity_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().capacity_bytes()).sum()
    }

    /// Resident entries, summed over every shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::CustomPolicy;

    fn blob(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0xAB; n])
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut c = FileCache::new(100, PolicyKind::Lru);
        assert!(c.get(&"x").is_none());
        c.insert("x", blob(10));
        assert!(c.get(&"x").is_some());
        assert!(c.get(&"y").is_none());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_never_exceeded_on_lru() {
        let mut c = FileCache::new(100, PolicyKind::Lru);
        for i in 0..20 {
            c.insert(i, blob(30));
            assert!(c.used_bytes() <= 100);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 17);
    }

    #[test]
    fn lru_eviction_order_through_cache() {
        let mut c = FileCache::new(100, PolicyKind::Lru);
        c.insert("a", blob(40));
        c.insert("b", blob(40));
        c.get(&"a"); // refresh a
        c.insert("c", blob(40)); // evicts b
        assert!(c.contains(&"a"));
        assert!(!c.contains(&"b"));
        assert!(c.contains(&"c"));
    }

    #[test]
    fn replacing_a_key_reuses_space() {
        let mut c = FileCache::new(100, PolicyKind::Lru);
        c.insert("a", blob(60));
        c.insert("a", blob(80));
        assert_eq!(c.used_bytes(), 80);
        assert_eq!(c.len(), 1);
        // Replacement is not an eviction.
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn threshold_policy_rejects_oversized_insert() {
        let mut c = FileCache::new(
            1000,
            PolicyKind::LruThreshold {
                max_size_permille: 100,
            },
        );
        assert!(!c.insert("big", blob(500)));
        assert!(c.insert("small", blob(100)));
        assert_eq!(c.stats().rejected, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn object_larger_than_capacity_is_never_cached() {
        let mut c = FileCache::new(50, PolicyKind::Lru);
        assert!(!c.insert("huge", blob(51)));
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_removes_without_counting_eviction() {
        let mut c = FileCache::new(100, PolicyKind::Lfu);
        c.insert("a", blob(10));
        assert!(c.invalidate(&"a"));
        assert!(!c.invalidate(&"a"));
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn hit_hands_out_shared_data() {
        let mut c = FileCache::new(100, PolicyKind::Lru);
        c.insert("a", blob(10));
        let d1 = c.get(&"a").unwrap();
        // Evict "a" and confirm the handed-out Arc stays valid.
        c.insert("b", blob(95));
        assert!(!c.contains(&"a"));
        assert_eq!(d1.len(), 10);
    }

    #[test]
    fn custom_policy_plugs_in() {
        // Evict the biggest file first.
        let policy = CustomPolicy::new(|entries, _| {
            entries.iter().max_by_key(|(_, m)| m.size).map(|(id, _)| *id)
        });
        let mut c = FileCache::with_policy(100, Box::new(policy));
        c.insert("small", blob(10));
        c.insert("big", blob(80));
        c.insert("mid", blob(50)); // must evict "big"
        assert!(c.contains(&"small"));
        assert!(!c.contains(&"big"));
        assert!(c.contains(&"mid"));
        assert_eq!(c.policy_name(), "Custom");
    }

    #[test]
    fn all_policies_respect_capacity_under_zipfish_trace() {
        for kind in PolicyKind::all() {
            let mut c = FileCache::new(10_000, kind);
            for i in 0u64..500 {
                // Skewed popularity: half the accesses go to 3 hot keys.
                let key = if i % 2 == 0 { i % 3 } else { i % 37 };
                let size = 100 + (key % 13) * 120;
                if c.get(&key).is_none() {
                    c.insert(key, blob(size as usize));
                }
                assert!(
                    c.used_bytes() <= 10_000,
                    "{} exceeded capacity",
                    kind.name()
                );
            }
            let s = c.stats();
            assert!(s.hits > 0, "{} never hit", kind.name());
        }
    }

    #[test]
    fn shared_cache_is_cloneable_and_consistent() {
        let shared = SharedFileCache::new(FileCache::new(100, PolicyKind::Lru));
        let other = shared.clone();
        shared.insert("k".to_string(), blob(10));
        assert!(other.get("k").is_some());
        assert_eq!(other.stats().hits, 1);
        assert_eq!(shared.used_bytes(), 10);
    }

    #[test]
    fn shared_cache_concurrent_access() {
        use std::thread;
        let shared = SharedFileCache::new(FileCache::new(50_000, PolicyKind::Lru));
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = shared.clone();
            handles.push(thread::spawn(move || {
                for i in 0..200u64 {
                    let key = t * 1000 + i % 20;
                    if c.get(&key).is_none() {
                        c.insert(key, Arc::new(vec![0u8; 64]));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(shared.used_bytes() <= 50_000);
    }

    #[test]
    fn sharded_cache_splits_capacity_exactly() {
        let c: SharedFileCache<u64> = SharedFileCache::sharded(1003, PolicyKind::Lru, 8);
        assert_eq!(c.shard_count(), 8);
        assert_eq!(c.capacity_bytes(), 1003);
        let single: SharedFileCache<u64> = SharedFileCache::new(FileCache::new(100, PolicyKind::Lru));
        assert_eq!(single.shard_count(), 1);
        let zero: SharedFileCache<u64> = SharedFileCache::sharded(100, PolicyKind::Lru, 0);
        assert_eq!(zero.shard_count(), 1);
    }

    #[test]
    fn sharded_cache_routes_keys_consistently() {
        let c: SharedFileCache<String> = SharedFileCache::sharded(8_000, PolicyKind::Lru, 8);
        for i in 0..50 {
            assert!(c.insert(format!("/file/{i}"), blob(10)));
        }
        for i in 0..50 {
            // Borrowed-form lookups must land on the same shard as the
            // owned-key inserts (Borrow guarantees equal hashes).
            assert!(c.get(&format!("/file/{i}")[..]).is_some(), "lost /file/{i}");
        }
        assert_eq!(c.len(), 50);
        assert_eq!(c.used_bytes(), 500);
        let s = c.stats();
        assert_eq!(s.hits, 50);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn sharded_cache_aggregates_stats_across_shards() {
        let c: SharedFileCache<u64> = SharedFileCache::sharded(4_000, PolicyKind::Lru, 4);
        for k in 0..40u64 {
            c.insert(k, blob(50));
        }
        for k in 0..40u64 {
            c.get(&k);
        }
        for k in 1000..1010u64 {
            c.get(&k);
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 50);
        assert_eq!(s.misses, 10);
        assert!((s.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn sharded_cache_respects_global_capacity_under_pressure() {
        let c: SharedFileCache<u64> = SharedFileCache::sharded(10_000, PolicyKind::Lru, 8);
        for k in 0..500u64 {
            c.insert(k, blob(100));
            assert!(c.used_bytes() <= 10_000);
        }
        assert!(c.stats().evictions > 0, "pressure must evict");
        assert!(!c.is_empty());
    }

    #[test]
    fn sharded_cache_invalidate_hits_the_owning_shard() {
        let c: SharedFileCache<String> = SharedFileCache::sharded(8_000, PolicyKind::Lru, 8);
        c.insert("victim".to_string(), blob(10));
        assert!(c.invalidate("victim"));
        assert!(!c.invalidate("victim"));
        assert!(c.get("victim").is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn sharded_cache_concurrent_workers_stay_bounded() {
        use std::thread;
        let shared: SharedFileCache<u64> =
            SharedFileCache::sharded(50_000, PolicyKind::Lru, DEFAULT_SHARDS);
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = shared.clone();
            handles.push(thread::spawn(move || {
                for i in 0..500u64 {
                    let key = (t * 31 + i) % 200;
                    if c.get(&key).is_none() {
                        c.insert(key, Arc::new(vec![0u8; 64]));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(shared.used_bytes() <= 50_000);
        let s = shared.stats();
        assert!(s.hits > 0);
    }
}
