//! The Reactor: event demultiplexing and dispatching.
//!
//! "The Event Dispatcher repeatedly polls for ready events and dispatches
//! a registered Event Handler to process each one." Here each dispatcher
//! thread owns a partition of the connections (option O1: one dispatcher,
//! or several with connections partitioned between them), polls their
//! non-blocking streams for readiness, performs the framework-owned Read
//! Request and Send Reply steps, and hands the application-dependent steps
//! to the Event Processor (O2 = Yes) or runs them in place (O2 = No — the
//! classic single-threaded Reactor).
//!
//! The Acceptor half of the Acceptor-Connector pattern lives here too:
//! dispatcher 0 owns the listening endpoint, consults the overload
//! controller (O9) before accepting, assigns the connection its priority
//! (O8) via the application's priority policy, and distributes accepted
//! connections across dispatchers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::event::{CompletionToken, ConnId, EventKind, Priority};
use crate::overload::OverloadController;
use crate::pipeline::{Codec, ConnShared, Engine, Service, Work};
use crate::processor::EventProcessor;
use crate::profiling::ServerStats;
use crate::timer::IdleTracker;
use crate::transport::{Listener, ReadOutcome, StreamIo};

/// Where ready events go: the Event Processor pool (O2 = Yes) or inline on
/// the dispatcher (O2 = No).
pub enum SubmitMode<R: Send + 'static> {
    /// Run handlers on the dispatcher thread.
    Inline,
    /// Queue work for the Event Processor.
    Pool(Arc<EventProcessor<Work<R>>>),
}

impl<R: Send + 'static> Clone for SubmitMode<R> {
    fn clone(&self) -> Self {
        match self {
            SubmitMode::Inline => SubmitMode::Inline,
            SubmitMode::Pool(p) => SubmitMode::Pool(Arc::clone(p)),
        }
    }
}

/// How a peer label maps to a scheduling priority (option O8). The paper's
/// Fig. 5 experiment uses the client IP address for exactly this.
pub type PriorityPolicy = Arc<dyn Fn(&str) -> Priority + Send + Sync>;

/// A newly accepted connection being handed to its owning dispatcher.
pub struct NewConn<St> {
    id: ConnId,
    stream: St,
    shared: Arc<ConnShared>,
}

/// One dispatcher thread's configuration and state.
pub struct Dispatcher<C: Codec, S: Service<C>, L: Listener> {
    /// Dispatcher index (0 owns the listener).
    pub index: usize,
    /// Shared engine.
    pub engine: Arc<Engine<C, S>>,
    /// The listening endpoint (dispatcher 0 only).
    pub listener: Option<L>,
    /// Incoming connections assigned to this dispatcher.
    pub inj_rx: Receiver<NewConn<L::Stream>>,
    /// Handles to every dispatcher's injection queue (used by dispatcher 0).
    pub inj_txs: Vec<Sender<NewConn<L::Stream>>>,
    /// Work submission mode.
    pub submit: SubmitMode<C::Response>,
    /// Overload controller (consulted by dispatcher 0 before accepting).
    pub overload: Arc<Mutex<OverloadController>>,
    /// Completion events from the Proactor helper pool (dispatcher 0 only).
    pub completion_rx: Option<Receiver<(CompletionToken, C::Response)>>,
    /// Priority assignment at accept time.
    pub priority_policy: PriorityPolicy,
    /// O7 idle limit.
    pub idle_limit: Option<Duration>,
    /// Cooperative shutdown flag.
    pub stop: Arc<AtomicBool>,
    /// Connection id allocator shared by all dispatchers.
    pub next_conn_id: Arc<AtomicU64>,
}

struct ConnLocal<St> {
    stream: St,
    shared: Arc<ConnShared>,
    peer_eof: bool,
}

impl<C: Codec, S: Service<C>, L: Listener> Dispatcher<C, S, L> {
    /// The dispatch loop. Runs until the stop flag is raised, then closes
    /// every connection it owns.
    pub fn run(mut self) {
        let mut conns: HashMap<ConnId, ConnLocal<L::Stream>> = HashMap::new();
        let mut idle = self.idle_limit.map(IdleTracker::new);
        let mut last_sweep = Instant::now();
        let mut read_buf = vec![0u8; 16 * 1024];

        loop {
            let mut active = false;

            if self.stop.load(Ordering::Relaxed) {
                for (_, mut c) in conns.drain() {
                    self.finalize(&mut c);
                }
                return;
            }

            // 1. Adopt connections assigned to this dispatcher.
            while let Ok(nc) = self.inj_rx.try_recv() {
                if let Some(ref mut tracker) = idle {
                    tracker.touch(nc.id, Instant::now());
                }
                conns.insert(
                    nc.id,
                    ConnLocal {
                        stream: nc.stream,
                        shared: nc.shared,
                        peer_eof: false,
                    },
                );
                active = true;
            }

            // 2. Accept new connections (dispatcher 0).
            if self.listener.is_some() {
                active |= self.accept_pending(&mut conns, &mut idle);
            }

            // 3. Route Proactor completions (dispatcher 0).
            if let Some(rx) = &self.completion_rx {
                while let Ok((token, resp)) = rx.try_recv() {
                    let prio = self
                        .engine
                        .conn(token.conn)
                        .map(|c| c.priority)
                        .unwrap_or_default();
                    self.submit_work(Work::Completion(token, resp), prio);
                    active = true;
                }
            }

            // 4. Per-connection I/O: Send Reply then Read Request.
            let mut to_remove: Vec<ConnId> = Vec::new();
            for (&id, c) in conns.iter_mut() {
                let wrote = Self::flush(&self.engine.stats, c);
                let read = self.read_into_inbox(c, &mut read_buf);
                active |= wrote || read;
                if read {
                    if let Some(ref mut tracker) = idle {
                        tracker.touch(id, Instant::now());
                    }
                    self.submit_work(Work::Process(id), c.shared.priority);
                }
                let closing = c.shared.closing.load(Ordering::Relaxed);
                let outbox_empty = c.shared.outbox.lock().is_empty();
                let pending = c.shared.responses_pending();
                // After peer EOF, a non-empty inbox may still hold a
                // complete request a worker has not decoded yet, so the
                // connection is kept until the inbox drains; a peer that
                // half-closes mid-request therefore lingers until the O7
                // idle sweep (or shutdown) reaps it — the conservative
                // choice over dropping a decodable request.
                if (closing && outbox_empty && !pending)
                    || (c.peer_eof
                        && outbox_empty
                        && !pending
                        && c.shared.inbox.lock().is_empty())
                {
                    to_remove.push(id);
                }
            }
            for id in to_remove {
                if let Some(mut c) = conns.remove(&id) {
                    self.finalize(&mut c);
                    if let Some(ref mut tracker) = idle {
                        tracker.forget(id);
                    }
                    active = true;
                }
            }

            // 5. Idle sweep (O7), every 100 ms.
            if let Some(ref mut tracker) = idle {
                if last_sweep.elapsed() >= Duration::from_millis(100) {
                    last_sweep = Instant::now();
                    for id in tracker.sweep(Instant::now()) {
                        if let Some(c) = conns.get(&id) {
                            c.shared.closing.store(true, Ordering::Relaxed);
                            ServerStats::bump(&self.engine.stats.connections_idle_closed);
                            self.engine.tracer.record(
                                EventKind::Timer,
                                Some(id),
                                "idle shutdown",
                            );
                        }
                    }
                }
            }

            if !active {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }

    fn accept_pending(
        &mut self,
        conns: &mut HashMap<ConnId, ConnLocal<L::Stream>>,
        idle: &mut Option<IdleTracker>,
    ) -> bool {
        let mut any = false;
        for _ in 0..64 {
            let open = self.engine.registry.read().len();
            if !self.overload.lock().may_accept(open) {
                ServerStats::bump(&self.engine.stats.accepts_deferred);
                break;
            }
            let listener = self.listener.as_mut().expect("only dispatcher 0 accepts");
            match listener.try_accept() {
                Ok(Some(stream)) => {
                    any = true;
                    self.register(stream, conns, idle);
                }
                Ok(None) => break,
                Err(e) => {
                    self.engine.tracer.record(
                        EventKind::Accepted,
                        None,
                        format!("accept error: {e}"),
                    );
                    break;
                }
            }
        }
        any
    }

    fn register(
        &mut self,
        stream: L::Stream,
        conns: &mut HashMap<ConnId, ConnLocal<L::Stream>>,
        idle: &mut Option<IdleTracker>,
    ) {
        let id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let peer = stream.peer_label();
        let priority = (self.priority_policy)(&peer);
        let shared = ConnShared::new(id, peer, priority);
        self.engine.registry.write().insert(id, Arc::clone(&shared));
        ServerStats::bump(&self.engine.stats.connections_accepted);
        self.engine
            .tracer
            .record(EventKind::Accepted, Some(id), shared.peer.clone());

        // Server-speaks-first greeting (e.g. FTP 220).
        if let Some(greeting) = self.engine.service.on_open(&shared.ctx()) {
            let mut out = bytes::BytesMut::new();
            if self.engine.codec.encode(&greeting, &mut out).is_ok() {
                shared.outbox.lock().extend_from_slice(&out);
            }
        }

        let target = (id as usize) % self.inj_txs.len();
        if target == self.index {
            if let Some(ref mut tracker) = idle {
                tracker.touch(id, Instant::now());
            }
            conns.insert(
                id,
                ConnLocal {
                    stream,
                    shared,
                    peer_eof: false,
                },
            );
        } else {
            let _ = self.inj_txs[target].send(NewConn { id, stream, shared });
        }
    }

    fn submit_work(&self, work: Work<C::Response>, prio: Priority) {
        match &self.submit {
            SubmitMode::Inline => self.engine.handle_work(work),
            SubmitMode::Pool(p) => p.submit(work, prio),
        }
    }

    /// Send Reply: move outbox bytes to the wire. Returns true if any
    /// bytes were written.
    fn flush(stats: &ServerStats, c: &mut ConnLocal<L::Stream>) -> bool {
        let mut out = c.shared.outbox.lock();
        if out.is_empty() {
            return false;
        }
        let mut wrote_any = false;
        loop {
            if out.is_empty() {
                break;
            }
            match c.stream.try_write(&out) {
                Ok(0) => break,
                Ok(n) => {
                    let _ = out.split_to(n);
                    ServerStats::add(&stats.bytes_sent, n as u64);
                    wrote_any = true;
                }
                Err(_) => {
                    c.shared.closing.store(true, Ordering::Relaxed);
                    out.clear();
                    break;
                }
            }
        }
        wrote_any
    }

    /// Read Request: pull available bytes into the inbox. Returns true if
    /// any bytes arrived.
    fn read_into_inbox(&self, c: &mut ConnLocal<L::Stream>, buf: &mut [u8]) -> bool {
        if c.peer_eof || c.shared.closing.load(Ordering::Relaxed) {
            return false;
        }
        let mut got = false;
        // Cap per-iteration intake so one chatty peer cannot monopolise the
        // dispatcher.
        for _ in 0..8 {
            match c.stream.try_read(buf) {
                Ok(ReadOutcome::Data(n)) => {
                    c.shared.inbox.lock().extend_from_slice(&buf[..n]);
                    ServerStats::add(&self.engine.stats.bytes_read, n as u64);
                    got = true;
                }
                Ok(ReadOutcome::WouldBlock) => break,
                Ok(ReadOutcome::Closed) => {
                    c.peer_eof = true;
                    break;
                }
                Err(_) => {
                    c.peer_eof = true;
                    c.shared.closing.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }
        got
    }

    fn finalize(&self, c: &mut ConnLocal<L::Stream>) {
        c.stream.shutdown();
        let id = c.shared.id;
        self.engine.registry.write().remove(&id);
        ServerStats::bump(&self.engine.stats.connections_closed);
        self.engine.service.on_close(&c.shared.ctx());
        self.engine
            .tracer
            .record(EventKind::Shutdown, Some(id), "connection closed");
    }
}
