//! Distributed N-Server — the paper's future-work extension: serve "from
//! a network of workstations" with *unchanged* application hook code.
//!
//! Two backend COPS-HTTP instances run behind a
//! [`nserver_core::cluster::ClusterFrontEnd`] relay; clients talk to the
//! front end and are balanced round-robin across the backends.
//!
//! Run: `cargo run -p nserver-examples --bin cluster`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use nserver_core::cluster::{Balancing, ClusterFrontEnd};
use nserver_core::prelude::*;
use nserver_http::{cops_http_options, HttpCodec, MemStore, RoutedService, StaticFileService};
use nserver_http::{text_page, Status};

fn backend(name: &'static str) -> ServerHandle<HttpCodec, RoutedService<MemStore>> {
    let mut store = MemStore::new();
    store.insert("/index.html", format!("<html>{name}</html>").into_bytes());
    // Each backend exposes a dynamic identity route (the dynamic-content
    // extension) so clients can see which node served them.
    let service = RoutedService::new(StaticFileService::new(store, None))
        .route("/whoami", text_page(Status::Ok, move |_| name.to_string()));
    ServerBuilder::new(cops_http_options(), HttpCodec::new(), service)
        .expect("valid options")
        .serve(TcpListenerNb::bind("127.0.0.1:0").expect("bind"))
}

fn get(addr: &str, path: &str) -> String {
    let mut c = TcpStream::connect(addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    c.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes())
        .unwrap();
    let mut acc = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match c.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => acc.extend_from_slice(&buf[..n]),
        }
    }
    let text = String::from_utf8_lossy(&acc);
    text.split("\r\n\r\n").nth(1).unwrap_or("").to_string()
}

fn main() {
    let node_a = backend("node-a");
    let node_b = backend("node-b");
    println!(
        "backends: {} (node-a), {} (node-b)",
        node_a.local_label(),
        node_b.local_label()
    );

    let front = ClusterFrontEnd::start(
        TcpListenerNb::bind("127.0.0.1:0").expect("bind front end"),
        vec![
            node_a.local_label().to_string(),
            node_b.local_label().to_string(),
        ],
        Balancing::RoundRobin,
    )
    .expect("start front end");
    let addr = front.local_label().to_string();
    println!("cluster front end on {addr}\n");

    let mut served = std::collections::HashMap::new();
    for i in 0..6 {
        let who = get(&addr, "/whoami");
        println!("request {i} served by {who}");
        *served.entry(who).or_insert(0u32) += 1;
    }
    assert_eq!(served.get("node-a"), Some(&3));
    assert_eq!(served.get("node-b"), Some(&3));

    let page = get(&addr, "/index.html");
    println!("\nstatic page through the relay: {page}");
    assert!(page.contains("node-"));

    println!(
        "relay stats: {} connections, {} bytes up, {} bytes down",
        front
            .stats()
            .connections
            .load(std::sync::atomic::Ordering::Relaxed),
        front
            .stats()
            .bytes_upstream
            .load(std::sync::atomic::Ordering::Relaxed),
        front
            .stats()
            .bytes_downstream
            .load(std::sync::atomic::Ordering::Relaxed),
    );

    front.shutdown();
    node_a.shutdown();
    node_b.shutdown();
    println!("cluster OK");
}
