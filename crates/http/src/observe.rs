//! Observable-event extraction for conformance checking: turn the raw
//! byte streams a trace tap recorded into protocol-level events.
//!
//! Two directions:
//!
//! * [`extract_requests`] mirrors the server's decode loop exactly — the
//!   same incremental parser ([`crate::parse::parse_request_hinted`]), the
//!   same stop conditions — so a conformance model can predict, from the
//!   bytes the server *actually read*, precisely which requests it
//!   decoded and where it stopped (clean, mid-request, or on a protocol
//!   error).
//! * [`split_responses`] is a tolerant response-stream splitter used for
//!   diagnostics: it structures the server's outbound bytes into status
//!   lines, headers and bodies, stopping at the first malformed byte or
//!   truncated tail.

use bytes::BytesMut;

use crate::parse::{parse_request_hinted, ParseOutcome};
use crate::types::{Request, Version};

/// How the request stream ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestStreamEnd {
    /// Every byte was consumed by complete requests.
    Clean,
    /// Trailing bytes form an incomplete request head (legal: the trace
    /// was cut mid-delivery).
    Incomplete(Vec<u8>),
    /// The parser rejected the head at this point; the server closes the
    /// connection here and everything after is never decoded.
    Invalid(String),
}

/// The decoded view of one connection's inbound bytes.
#[derive(Debug, Clone)]
pub struct RequestStream {
    /// Requests the server decoded, in order.
    pub complete: Vec<Request>,
    /// Why decoding stopped.
    pub end: RequestStreamEnd,
}

/// Replay the server's decode loop over `bytes` (the post-fault inbound
/// stream). This is deterministic: the server decodes the same requests
/// from the same bytes regardless of read chunking, because
/// [`ParseOutcome::Invalid`] verdicts only fire on complete heads or the
/// head-size cap, both functions of the byte prefix alone.
pub fn extract_requests(bytes: &[u8]) -> RequestStream {
    let mut buf = BytesMut::from(bytes);
    let mut scanned = 0usize;
    let mut complete = Vec::new();
    loop {
        match parse_request_hinted(&mut buf, &mut scanned) {
            ParseOutcome::Complete(req) => complete.push(req),
            ParseOutcome::Incomplete => {
                let end = if buf.is_empty() {
                    RequestStreamEnd::Clean
                } else {
                    RequestStreamEnd::Incomplete(buf.to_vec())
                };
                return RequestStream { complete, end };
            }
            ParseOutcome::Invalid(why) => {
                return RequestStream {
                    complete,
                    end: RequestStreamEnd::Invalid(why),
                };
            }
        }
    }
}

/// One structurally parsed response from the server's outbound stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedResponse {
    /// Version from the status line.
    pub version: Version,
    /// Numeric status code.
    pub status: u16,
    /// Header (name, value) pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// `Content-Length` value, when present and numeric.
    pub content_length: Option<usize>,
    /// True when a `Connection: close` header was sent.
    pub connection_close: bool,
    /// Body bytes consumed (empty for HEAD responses).
    pub body: Vec<u8>,
}

/// How the response stream ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseStreamEnd {
    /// Every byte was consumed by complete responses.
    Clean,
    /// Trailing bytes form an incomplete response (legal under
    /// truncation: reset, stall, or snapshot cut).
    Truncated(Vec<u8>),
    /// The stream is not parseable as HTTP responses at this offset.
    Malformed {
        /// Byte offset of the first unparseable response.
        offset: usize,
        /// What went wrong.
        why: String,
    },
}

/// The structured view of one connection's outbound bytes.
#[derive(Debug, Clone)]
pub struct ResponseStream {
    /// Responses fully delivered, in order.
    pub complete: Vec<ObservedResponse>,
    /// Why splitting stopped.
    pub end: ResponseStreamEnd,
}

/// Split `bytes` into responses. `head_only[i]` tells the splitter that
/// the `i`-th response answers a HEAD request, so its `Content-Length`
/// promises a body that never follows (HTTP/1.1 framing depends on the
/// request). Responses past the end of `head_only` are assumed to carry
/// their body.
pub fn split_responses(bytes: &[u8], head_only: &[bool]) -> ResponseStream {
    let mut complete = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        let Some(head_len) = find_blank_line(rest) else {
            return ResponseStream {
                complete,
                end: ResponseStreamEnd::Truncated(rest.to_vec()),
            };
        };
        let head = &rest[..head_len];
        let text = match std::str::from_utf8(head) {
            Ok(t) => t,
            Err(_) => {
                return ResponseStream {
                    complete,
                    end: ResponseStreamEnd::Malformed {
                        offset: pos,
                        why: "head is not UTF-8".into(),
                    },
                }
            }
        };
        let mut lines = text.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let mut parts = status_line.splitn(3, ' ');
        let (v, code) = match (parts.next(), parts.next()) {
            (Some(v), Some(c)) => (v, c),
            _ => {
                return ResponseStream {
                    complete,
                    end: ResponseStreamEnd::Malformed {
                        offset: pos,
                        why: format!("bad status line: {status_line}"),
                    },
                }
            }
        };
        let Some(version) = Version::parse(v) else {
            return ResponseStream {
                complete,
                end: ResponseStreamEnd::Malformed {
                    offset: pos,
                    why: format!("bad version in status line: {status_line}"),
                },
            };
        };
        let Ok(status) = code.parse::<u16>() else {
            return ResponseStream {
                complete,
                end: ResponseStreamEnd::Malformed {
                    offset: pos,
                    why: format!("bad status code: {status_line}"),
                },
            };
        };
        let mut headers = Vec::new();
        let mut content_length = None;
        let mut connection_close = false;
        for line in lines.filter(|l| !l.is_empty()) {
            let Some((name, value)) = line.split_once(':') else {
                return ResponseStream {
                    complete,
                    end: ResponseStreamEnd::Malformed {
                        offset: pos,
                        why: format!("malformed header: {line}"),
                    },
                };
            };
            let (name, value) = (name.trim().to_string(), value.trim().to_string());
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse::<usize>().ok();
            }
            if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
                connection_close = true;
            }
            headers.push((name, value));
        }
        let body_len = if head_only.get(complete.len()).copied().unwrap_or(false) {
            0
        } else {
            content_length.unwrap_or(0)
        };
        let body_start = pos + head_len + 4;
        let body_end = body_start + body_len;
        if body_end > bytes.len() {
            return ResponseStream {
                complete,
                end: ResponseStreamEnd::Truncated(bytes[pos..].to_vec()),
            };
        }
        complete.push(ObservedResponse {
            version,
            status,
            headers,
            content_length,
            connection_close,
            body: bytes[body_start..body_end].to_vec(),
        });
        pos = body_end;
    }
    ResponseStream {
        complete,
        end: ResponseStreamEnd::Clean,
    }
}

fn find_blank_line(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::encode_response;
    use crate::types::{Method, Response, Status};
    use std::sync::Arc;

    #[test]
    fn extracts_pipelined_requests_with_clean_end() {
        let s = extract_requests(b"GET /a HTTP/1.1\r\n\r\nHEAD /b HTTP/1.0\r\nHost: x\r\n\r\n");
        assert_eq!(s.complete.len(), 2);
        assert_eq!(s.complete[0].target, "/a");
        assert_eq!(s.complete[1].method, Method::Head);
        assert_eq!(s.end, RequestStreamEnd::Clean);
    }

    #[test]
    fn truncated_tail_is_incomplete() {
        let s = extract_requests(b"GET /a HTTP/1.1\r\n\r\nGET /b HT");
        assert_eq!(s.complete.len(), 1);
        assert!(matches!(s.end, RequestStreamEnd::Incomplete(ref t) if t == b"GET /b HT"));
    }

    #[test]
    fn invalid_head_stops_extraction() {
        let s = extract_requests(
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\n\r\n",
        );
        assert_eq!(
            s.complete.len(),
            1,
            "nothing after the invalid request decodes"
        );
        assert!(matches!(s.end, RequestStreamEnd::Invalid(_)));
    }

    #[test]
    fn splits_responses_and_heads() {
        let mut wire = BytesMut::new();
        let r1 = Response::ok(Arc::new(b"hello".to_vec()), "text/plain", Version::Http11);
        encode_response(&r1, &mut wire);
        let r2 = Response::error(Status::NotFound, Version::Http11)
            .head()
            .with_keep_alive(false);
        encode_response(&r2, &mut wire);
        let s = split_responses(&wire, &[false, true]);
        assert_eq!(s.complete.len(), 2);
        assert_eq!(s.complete[0].status, 200);
        assert_eq!(s.complete[0].body, b"hello");
        assert_eq!(s.complete[1].status, 404);
        assert!(s.complete[1].body.is_empty());
        assert!(s.complete[1].connection_close);
        assert!(
            s.complete[1].content_length.unwrap() > 0,
            "HEAD promises a length"
        );
        assert_eq!(s.end, ResponseStreamEnd::Clean);
    }

    #[test]
    fn truncated_response_reports_tail() {
        let mut wire = BytesMut::new();
        let r = Response::ok(
            Arc::new(b"0123456789".to_vec()),
            "text/plain",
            Version::Http11,
        );
        encode_response(&r, &mut wire);
        let cut = wire.len() - 4;
        let s = split_responses(&wire[..cut], &[false]);
        assert!(s.complete.is_empty());
        assert!(matches!(s.end, ResponseStreamEnd::Truncated(_)));
    }

    #[test]
    fn garbage_is_malformed_with_offset() {
        let mut wire = BytesMut::new();
        let r = Response::ok(Arc::new(b"x".to_vec()), "text/plain", Version::Http11);
        encode_response(&r, &mut wire);
        let at = wire.len();
        wire.extend_from_slice(b"NONSENSE\r\n\r\n");
        let s = split_responses(&wire, &[false]);
        assert_eq!(s.complete.len(), 1);
        match s.end {
            ResponseStreamEnd::Malformed { offset, .. } => assert_eq!(offset, at),
            other => panic!("{other:?}"),
        }
    }
}
