//! Exhaustive small-case interleaving exploration, and determinism of the
//! netsim schedule-control hooks the explorer's design builds on.

use conformance::{enumerate_orders, run, ConnScript, Proto, Schedule};
use nserver_core::fault::FaultPlan;
use nserver_netsim::{Link, Model, Scheduler, SimTime};
use std::collections::HashSet;

/// Two pipelined connections, two segments each: every one of the six
/// order-preserving interleavings of their segment deliveries must
/// conform. This is the exhaustive (rather than randomized) arm of
/// schedule exploration.
#[test]
fn all_interleavings_of_a_small_http_case_conform() {
    let base = Schedule {
        proto: Proto::Http,
        seed: 0,
        plan: FaultPlan::new(1),
        conns: vec![
            ConnScript {
                segments: vec![
                    b"GET /index.html HTTP/1.1\r\nHost: c\r\n\r\nGET /miss".to_vec(),
                    b"ing.html HTTP/1.1\r\nHost: c\r\nConnection: close\r\n\r\n".to_vec(),
                ],
                close_early: false,
                data_ops: vec![],
            },
            ConnScript {
                segments: vec![
                    b"HEAD /big.bin HTTP/1.1\r\nHost: c\r\n\r\n".to_vec(),
                    b"GET /hello%20world.txt HTTP/1.1\r\nHost: c\r\n\r\n".to_vec(),
                ],
                close_early: false,
                data_ops: vec![],
            },
        ],
        order: Vec::new(),
    };
    let orders = enumerate_orders(&[2, 2]);
    assert_eq!(orders.len(), 6, "multinomial(4; 2,2)");
    let mut fingerprints = HashSet::new();
    for order in orders {
        let sched = base.with_order(order);
        sched.check_consistency().expect("consistent");
        assert!(
            fingerprints.insert(sched.fingerprint()),
            "each interleaving is a distinct schedule"
        );
        let report = run(&sched);
        assert!(
            report.violations.is_empty(),
            "interleaving {:?}: {:?}",
            sched.order,
            report.violations
        );
    }
}

/// A toy queueing model over the shared link, driven one event at a time
/// through [`Scheduler::step`] — the hook that lets an external driver
/// interleave observations between dispatches.
struct Pump {
    link: Link,
    arrivals: Vec<SimTime>,
}

enum Ev {
    Send(u64),
}

impl Model for Pump {
    type Ev = Ev;
    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        let Ev::Send(payload) = ev;
        let arrival = self.link.send(now, payload);
        self.arrivals.push(arrival);
        if payload > 1_000 {
            // Fragment: the tail respawns as a follow-up event.
            sched.after(SimTime::from_micros(50), Ev::Send(payload / 2));
        }
    }
}

fn pump_run(seed: u64, stepped: bool) -> (Vec<SimTime>, Vec<nserver_netsim::LinkEvent>) {
    let mut pump = Pump {
        link: Link::new(100_000_000)
            .with_faults(
                seed,
                200,
                200,
                SimTime::from_micros(500),
                SimTime::from_micros(2_000),
            )
            .with_event_log(),
        arrivals: Vec::new(),
    };
    let mut sched = Scheduler::new();
    for i in 0..20u64 {
        sched.at(SimTime::from_micros(i * 10), Ev::Send(1_500 * (i + 1)));
    }
    if stepped {
        while let Some(t) = sched.step(&mut pump) {
            // The external-driver invariant: peeking never disagrees with
            // what stepping then observes.
            if let Some(next) = sched.next_event_time() {
                assert!(next >= t, "heap order");
            }
        }
    } else {
        sched.run_to_completion(&mut pump);
    }
    (pump.arrivals, pump.link.take_events())
}

#[test]
fn stepped_netsim_schedules_are_deterministic_and_match_batch_runs() {
    let (a1, e1) = pump_run(42, true);
    let (a2, e2) = pump_run(42, true);
    assert_eq!(a1, a2, "same seed, same stepped schedule");
    assert_eq!(e1, e2, "same link event trace");
    let (a3, e3) = pump_run(42, false);
    assert_eq!(a1, a3, "step-at-a-time equals run_to_completion");
    assert_eq!(e1, e3);
    let (_, e4) = pump_run(43, true);
    assert_ne!(e1, e4, "different seeds explore different fault timelines");
}

/// The event log records every message in FIFO enqueue order with
/// non-decreasing arrivals per the link discipline.
#[test]
fn link_event_log_is_ordered_and_fault_accounted() {
    let (_, events) = pump_run(7, true);
    assert!(!events.is_empty());
    for pair in events.windows(2) {
        assert!(pair[0].enqueued <= pair[1].enqueued || pair[0].arrival <= pair[1].arrival);
    }
    let faulted = events
        .iter()
        .filter(|e| e.fault != nserver_netsim::LinkFault::None)
        .count();
    assert!(
        faulted > 0,
        "20% × 2 incidences should fault something in 20+ sends"
    );
}
