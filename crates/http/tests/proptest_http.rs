//! Property-based tests of the HTTP protocol library: encode∘parse
//! round-trips, incremental-delivery equivalence, and no-panic on
//! arbitrary input.

use bytes::BytesMut;
use nserver_core::pipeline::{Codec, DecodeState, EncodedReply, Outbox};
use nserver_http::parse::encode_request;
use nserver_http::{
    encode_response, parse_request, Headers, HttpCodec, Method, ParseOutcome, Request, Response,
    Version,
};
use proptest::prelude::*;
use std::sync::Arc;

fn token() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,15}".prop_map(|s| s)
}

fn header_value() -> impl Strategy<Value = String> {
    "[ -~&&[^:]]{0,30}".prop_map(|s| s.trim().to_string())
}

fn path() -> impl Strategy<Value = String> {
    "(/[A-Za-z0-9_.-]{1,12}){1,4}".prop_map(|s| s)
}

fn request() -> impl Strategy<Value = Request> {
    (
        prop_oneof![Just(Method::Get), Just(Method::Head)],
        path(),
        prop_oneof![Just(Version::Http10), Just(Version::Http11)],
        proptest::collection::vec((token(), header_value()), 0..8),
    )
        .prop_map(|(method, target, version, hdrs)| {
            let mut headers = Headers::new();
            for (n, v) in hdrs {
                headers.push(n, v);
            }
            Request {
                method,
                target,
                version,
                headers,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode_request ∘ parse_request is the identity on valid requests.
    #[test]
    fn request_round_trip(req in request()) {
        let wire = encode_request(&req);
        let mut buf = BytesMut::from(&wire[..]);
        match parse_request(&mut buf) {
            ParseOutcome::Complete(parsed) => {
                prop_assert_eq!(parsed.method, req.method);
                prop_assert_eq!(parsed.target, req.target);
                prop_assert_eq!(parsed.version, req.version);
                // Header count may shrink if generated values were empty
                // after trimming; compare pairs that survive.
                for ((n1, v1), (n2, v2)) in req.headers.iter().zip(parsed.headers.iter()) {
                    prop_assert_eq!(n1, n2);
                    prop_assert_eq!(v1.trim(), v2);
                }
                prop_assert!(buf.is_empty());
            }
            other => prop_assert!(false, "round trip failed: {other:?}"),
        }
    }

    /// Byte-at-a-time delivery parses identically to one-shot delivery.
    #[test]
    fn incremental_parse_equivalence(req in request()) {
        let wire = encode_request(&req);
        let mut oneshot = BytesMut::from(&wire[..]);
        let expected = parse_request(&mut oneshot);

        let mut buf = BytesMut::new();
        let mut result = ParseOutcome::Incomplete;
        for &b in &wire {
            buf.extend_from_slice(&[b]);
            result = parse_request(&mut buf);
            if !matches!(result, ParseOutcome::Incomplete) {
                break;
            }
        }
        prop_assert_eq!(result, expected);
    }

    /// The parser never panics on arbitrary bytes and always consumes a
    /// terminated head (complete or invalid, never stuck).
    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut buf = BytesMut::from(&bytes[..]);
        let before = buf.len();
        let outcome = parse_request(&mut buf);
        match outcome {
            ParseOutcome::Complete(_) => prop_assert!(buf.len() < before),
            ParseOutcome::Incomplete => prop_assert_eq!(buf.len(), before),
            ParseOutcome::Invalid(_) => {}
        }
    }

    /// Byte-at-a-time delivery through the codec's stateful decode path
    /// (the one the framework drives) yields the identical request and
    /// consumed length as one-shot delivery — the incremental-scan state
    /// must never change what is parsed, only how often it is rescanned.
    #[test]
    fn codec_incremental_decode_equivalence(req in request()) {
        let codec = HttpCodec::new();
        let wire = encode_request(&req);

        let mut oneshot = BytesMut::from(&wire[..]);
        let expected = codec.decode(&mut oneshot).expect("valid").expect("complete");
        let expected_consumed = wire.len() - oneshot.len();

        let mut buf = BytesMut::new();
        let mut state = DecodeState::default();
        let mut got = None;
        let mut fed = 0;
        for &b in &wire {
            buf.extend_from_slice(&[b]);
            fed += 1;
            if let Some(r) = codec.decode_with(&mut buf, &mut state).expect("valid") {
                got = Some(r);
                break;
            }
        }
        let parsed = got.expect("drip-fed request completed");
        let consumed = fed - buf.len();
        prop_assert_eq!(parsed, expected);
        prop_assert_eq!(consumed, expected_consumed);
    }

    /// Arbitrary chunked delivery (not just single bytes) through
    /// `decode_with` also matches one-shot decode.
    #[test]
    fn codec_chunked_decode_equivalence(
        req in request(),
        cuts in proptest::collection::vec(1usize..64, 0..16),
    ) {
        let codec = HttpCodec::new();
        let wire = encode_request(&req);
        let mut oneshot = BytesMut::from(&wire[..]);
        let expected = codec.decode(&mut oneshot).expect("valid").expect("complete");

        let mut buf = BytesMut::new();
        let mut state = DecodeState::default();
        let mut pos = 0;
        let mut parsed = None;
        let mut cut_iter = cuts.into_iter();
        while pos < wire.len() {
            let step = cut_iter.next().unwrap_or(wire.len()).min(wire.len() - pos);
            buf.extend_from_slice(&wire[pos..pos + step]);
            pos += step;
            if let Some(r) = codec.decode_with(&mut buf, &mut state).expect("valid") {
                parsed = Some(r);
                break;
            }
        }
        prop_assert_eq!(parsed.expect("completed"), expected);
    }

    /// The segmented zero-copy encoding (`encode_reply` → outbox
    /// drained chunk-by-chunk) is byte-identical to the flat
    /// `encode_response` wire image, and the body segment aliases the
    /// response's `Arc` rather than copying it.
    #[test]
    fn segmented_encoding_matches_flat_wire_image(
        body in proptest::collection::vec(any::<u8>(), 0..4096),
        keep_alive in any::<bool>(),
        head_only in any::<bool>(),
        drain in 1usize..512,
    ) {
        let codec = HttpCodec::new();
        let mut resp = Response::ok(Arc::new(body), "text/plain", Version::Http11)
            .with_keep_alive(keep_alive);
        if head_only {
            resp = resp.head();
        }

        let mut flat = BytesMut::new();
        codec.encode(&resp, &mut flat).expect("flat encode");

        let mut reply = EncodedReply::new();
        codec.encode_reply(&resp, &mut reply).expect("segmented encode");
        prop_assert_eq!(reply.len(), flat.len());

        // Drain through the outbox in arbitrary chunk sizes, as the
        // dispatcher's flush loop would under partial writes.
        let mut outbox = Outbox::new();
        outbox.push_reply(reply);
        let mut wire = Vec::new();
        while let Some(chunk) = outbox.front_chunk() {
            let take = drain.min(chunk.len());
            wire.extend_from_slice(&chunk[..take]);
            outbox.advance(take);
        }
        prop_assert!(outbox.is_empty());
        prop_assert_eq!(&wire[..], &flat[..]);
    }

    /// Responses always carry an accurate Content-Length and terminate
    /// the head properly.
    #[test]
    fn response_encoding_is_well_formed(
        body in proptest::collection::vec(any::<u8>(), 0..4096),
        keep_alive in any::<bool>(),
        head_only in any::<bool>(),
    ) {
        let mut resp = Response::ok(Arc::new(body.clone()), "text/plain", Version::Http11)
            .with_keep_alive(keep_alive);
        if head_only {
            resp = resp.head();
        }
        let mut out = BytesMut::new();
        encode_response(&resp, &mut out);
        let text = out.to_vec();
        let head_end = text.windows(4).position(|w| w == b"\r\n\r\n").expect("head end");
        let head = String::from_utf8_lossy(&text[..head_end]);
        prop_assert!(head.starts_with("HTTP/1.1 200 OK"));
        let want = format!("Content-Length: {}", body.len());
        prop_assert!(head.contains(&want), "missing {}", want);
        let wire_body = &text[head_end + 4..];
        if head_only {
            prop_assert!(wire_body.is_empty());
        } else {
            prop_assert_eq!(wire_body, &body[..]);
        }
    }
}
