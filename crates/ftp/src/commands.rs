//! FTP command parsing (RFC 959 subset used by COPS-FTP).

/// A parsed control-connection command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `USER <name>`
    User(String),
    /// `PASS <password>`
    Pass(String),
    /// QUIT
    Quit,
    /// SYST
    Syst,
    /// NOOP
    Noop,
    /// PWD
    Pwd,
    /// `CWD <dir>`
    Cwd(String),
    /// `TYPE <A|I>`
    Type(char),
    /// PASV
    Pasv,
    /// `LIST [path]`
    List(Option<String>),
    /// `RETR <file>`
    Retr(String),
    /// `STOR <file>`
    Stor(String),
    /// `MKD <dir>`
    Mkd(String),
    /// `DELE <file>`
    Dele(String),
    /// `SIZE <file>`
    Size(String),
    /// `STAT [path]` (also accepted as `SITE STAT`) — server status.
    Stat(Option<String>),
    /// `SITE DUMP` — capture and return a diagnostic snapshot (JSON).
    SiteDump,
    /// A syntactically valid verb this server does not implement.
    Unknown(String),
}

impl Command {
    /// Parse one command line (without its CRLF).
    pub fn parse(line: &str) -> Result<Command, String> {
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            return Err("empty command".into());
        }
        let (verb, arg) = match line.split_once(' ') {
            Some((v, a)) => (v, Some(a.trim().to_string())),
            None => (line, None),
        };
        let verb_upper = verb.to_ascii_uppercase();
        let need = |arg: Option<String>| -> Result<String, String> {
            arg.filter(|a| !a.is_empty())
                .ok_or_else(|| format!("{verb_upper} requires an argument"))
        };
        Ok(match verb_upper.as_str() {
            "USER" => Command::User(need(arg)?),
            "PASS" => Command::Pass(arg.unwrap_or_default()),
            "QUIT" => Command::Quit,
            "SYST" => Command::Syst,
            "NOOP" => Command::Noop,
            "PWD" | "XPWD" => Command::Pwd,
            "CWD" => Command::Cwd(need(arg)?),
            "TYPE" => {
                let a = need(arg)?;
                let c = a.chars().next().unwrap().to_ascii_uppercase();
                if c == 'A' || c == 'I' {
                    Command::Type(c)
                } else {
                    return Err(format!("unsupported TYPE {a}"));
                }
            }
            "PASV" => Command::Pasv,
            "LIST" | "NLST" => Command::List(arg.filter(|a| !a.is_empty())),
            "RETR" => Command::Retr(need(arg)?),
            "STOR" => Command::Stor(need(arg)?),
            "MKD" | "XMKD" => Command::Mkd(need(arg)?),
            "DELE" => Command::Dele(need(arg)?),
            "SIZE" => Command::Size(need(arg)?),
            "STAT" => Command::Stat(arg.filter(|a| !a.is_empty())),
            "SITE" => match arg.as_deref().map(str::trim) {
                Some(a) if a.eq_ignore_ascii_case("STAT") => Command::Stat(None),
                Some(a) if a.eq_ignore_ascii_case("DUMP") => Command::SiteDump,
                _ => Command::Unknown(verb_upper),
            },
            _ => Command::Unknown(verb_upper),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_common_commands() {
        assert_eq!(
            Command::parse("USER alice").unwrap(),
            Command::User("alice".into())
        );
        assert_eq!(
            Command::parse("PASS s3cret").unwrap(),
            Command::Pass("s3cret".into())
        );
        assert_eq!(Command::parse("QUIT").unwrap(), Command::Quit);
        assert_eq!(Command::parse("PWD").unwrap(), Command::Pwd);
        assert_eq!(
            Command::parse("CWD /pub").unwrap(),
            Command::Cwd("/pub".into())
        );
        assert_eq!(Command::parse("PASV").unwrap(), Command::Pasv);
        assert_eq!(Command::parse("LIST").unwrap(), Command::List(None));
        assert_eq!(
            Command::parse("LIST /pub").unwrap(),
            Command::List(Some("/pub".into()))
        );
        assert_eq!(
            Command::parse("RETR f.txt").unwrap(),
            Command::Retr("f.txt".into())
        );
        assert_eq!(
            Command::parse("STOR up.bin").unwrap(),
            Command::Stor("up.bin".into())
        );
        assert_eq!(Command::parse("SIZE f").unwrap(), Command::Size("f".into()));
    }

    #[test]
    fn verbs_are_case_insensitive() {
        assert_eq!(
            Command::parse("user bob").unwrap(),
            Command::User("bob".into())
        );
        assert_eq!(Command::parse("pasv").unwrap(), Command::Pasv);
    }

    #[test]
    fn type_only_a_or_i() {
        assert_eq!(Command::parse("TYPE I").unwrap(), Command::Type('I'));
        assert_eq!(Command::parse("TYPE a").unwrap(), Command::Type('A'));
        assert!(Command::parse("TYPE E").is_err());
    }

    #[test]
    fn missing_arguments_are_errors() {
        assert!(Command::parse("USER").is_err());
        assert!(Command::parse("RETR").is_err());
        assert!(Command::parse("CWD ").is_err());
        assert!(Command::parse("").is_err());
    }

    #[test]
    fn pass_allows_empty_password() {
        assert_eq!(
            Command::parse("PASS").unwrap(),
            Command::Pass(String::new())
        );
    }

    #[test]
    fn stat_with_and_without_argument() {
        assert_eq!(Command::parse("STAT").unwrap(), Command::Stat(None));
        assert_eq!(
            Command::parse("STAT /pub").unwrap(),
            Command::Stat(Some("/pub".into()))
        );
        assert_eq!(Command::parse("SITE STAT").unwrap(), Command::Stat(None));
        assert_eq!(
            Command::parse("SITE CHMOD").unwrap(),
            Command::Unknown("SITE".into())
        );
    }

    #[test]
    fn site_dump_parses_case_insensitively() {
        assert_eq!(Command::parse("SITE DUMP").unwrap(), Command::SiteDump);
        assert_eq!(Command::parse("site dump").unwrap(), Command::SiteDump);
        assert_eq!(Command::parse("SITE  DUMP").unwrap(), Command::SiteDump);
    }

    #[test]
    fn unknown_verbs_are_preserved() {
        assert_eq!(
            Command::parse("FEAT").unwrap(),
            Command::Unknown("FEAT".into())
        );
    }

    #[test]
    fn trailing_crlf_is_stripped() {
        assert_eq!(Command::parse("QUIT\r\n").unwrap(), Command::Quit);
    }
}
