//! Ablation for option O2: request round-trip latency through a live
//! framework instance with handlers inline on the dispatcher (classic
//! Reactor) vs handed to the Event Processor pool.

use std::time::{Duration, Instant};

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion};
use nserver_core::options::{ServerOptions, ThreadAllocation};
use nserver_core::pipeline::{Action, Codec, ConnCtx, ProtocolError, Service};
use nserver_core::server::ServerBuilder;
use nserver_core::transport::{mem, ReadOutcome, StreamIo};

struct LineCodec;

impl Codec for LineCodec {
    type Request = String;
    type Response = String;

    fn decode(&self, buf: &mut BytesMut) -> Result<Option<String>, ProtocolError> {
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                let line = buf.split_to(i + 1);
                Ok(Some(String::from_utf8_lossy(&line[..i]).into_owned()))
            }
            None => Ok(None),
        }
    }

    fn encode(&self, r: &String, out: &mut BytesMut) -> Result<(), ProtocolError> {
        out.extend_from_slice(r.as_bytes());
        out.extend_from_slice(b"\n");
        Ok(())
    }
}

struct Echo;

impl Service<LineCodec> for Echo {
    fn handle(&self, _ctx: &ConnCtx, req: String) -> Action<String> {
        Action::Reply(req)
    }
}

fn round_trip(stream: &mut mem::MemStream) {
    stream.try_write(b"ping\n").unwrap();
    let mut buf = [0u8; 64];
    let mut got = 0;
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        match stream.try_read(&mut buf[got..]).unwrap() {
            ReadOutcome::Data(n) => {
                got += n;
                if buf[..got].contains(&b'\n') {
                    return;
                }
            }
            ReadOutcome::WouldBlock => std::hint::spin_loop(),
            ReadOutcome::Closed => panic!("closed"),
        }
    }
    panic!("timed out");
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("reactor_dispatch");
    g.sample_size(20);

    // O2 = No: inline handlers.
    {
        let (listener, connector) = mem::listener("inline");
        let opts = ServerOptions {
            separate_handler_pool: false,
            thread_allocation: ThreadAllocation::Static { threads: 1 },
            ..ServerOptions::default()
        };
        let server = ServerBuilder::new(opts, LineCodec, Echo).unwrap().serve(listener);
        let mut stream = connector.connect();
        round_trip(&mut stream); // warm up
        g.bench_function("inline_round_trip", |b| {
            b.iter(|| round_trip(&mut stream))
        });
        server.shutdown();
    }

    // O2 = Yes: Event Processor pool.
    {
        let (listener, connector) = mem::listener("pool");
        let opts = ServerOptions {
            separate_handler_pool: true,
            thread_allocation: ThreadAllocation::Static { threads: 2 },
            ..ServerOptions::default()
        };
        let server = ServerBuilder::new(opts, LineCodec, Echo).unwrap().serve(listener);
        let mut stream = connector.connect();
        round_trip(&mut stream);
        g.bench_function("pooled_round_trip", |b| {
            b.iter(|| round_trip(&mut stream))
        });
        server.shutdown();
    }

    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
