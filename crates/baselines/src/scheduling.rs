//! The Fig. 5 differentiated-service experiment.
//!
//! "An ISP hosts two types of Web content: a corporate portal and
//! personal homepages. … Web accesses to the corporate portal are
//! prioritized." Requests are classified by client IP; the event
//! scheduler serves the two priority levels by quota. Under saturation,
//! the throughput ratio between the classes approximates the quota ratio
//! (with a small gap, because the server "exerts no control over … many
//! operating system resources").
//!
//! This module drives `nserver-core`'s *actual*
//! [`PriorityQuotaQueue`] — the same structure the real framework swaps
//! in when O8 is enabled — inside a discrete-event loop with a 2-CPU
//! service stage and no file cache (both per the paper's setup).

use nserver_core::event::Priority;
use nserver_core::queue::EventQueue;
use nserver_core::scheduler::PriorityQuotaQueue;
use nserver_netsim::{CpuPool, Model, Scheduler, SimRng, SimTime};

/// Parameters of the differentiated-service run.
#[derive(Debug, Clone, Copy)]
pub struct SchedulingParams {
    /// Quota for homepage requests (priority level 1), the `x` of `x/y`.
    pub homepage_quota: u32,
    /// Quota for portal requests (priority level 0), the `y` of `x/y`.
    pub portal_quota: u32,
    /// Clients generating portal requests.
    pub portal_clients: usize,
    /// Clients generating homepage requests (0 = the paper's rightmost
    /// "portal only" bar).
    pub homepage_clients: usize,
    /// Per-request service demand, µs (cache disabled ⇒ every request
    /// touches the disk path; the paper keeps the workload heavy).
    pub service_us: u64,
    /// Server CPUs (the Fig. 5 host is a dual-processor machine).
    pub cpus: usize,
    /// Think time between a client's requests.
    pub think: SimTime,
    /// Measurement window (after warmup).
    pub measure: SimTime,
    /// Warmup.
    pub warmup: SimTime,
    /// RNG seed.
    pub seed: u64,
}

impl SchedulingParams {
    /// The paper's setup for a given `x/y` quota pair.
    pub fn paper(homepage_quota: u32, portal_quota: u32) -> Self {
        Self {
            homepage_quota,
            portal_quota,
            portal_clients: 48,
            homepage_clients: 48,
            service_us: 2_500,
            cpus: 2,
            think: SimTime::from_millis(5),
            measure: SimTime::from_secs(60),
            warmup: SimTime::from_secs(5),
            seed: 0x5EED_0005,
        }
    }

    /// The rightmost Fig. 5 column: portal-only maximal throughput.
    pub fn portal_only() -> Self {
        Self {
            homepage_clients: 0,
            ..Self::paper(1, 1)
        }
    }
}

/// Throughput per content class.
#[derive(Debug, Clone, Copy)]
pub struct SchedulingOutcome {
    /// Portal responses per second.
    pub portal_rps: f64,
    /// Homepage responses per second.
    pub homepage_rps: f64,
}

impl SchedulingOutcome {
    /// Portal/homepage throughput ratio (∞-safe: 0 when no homepages).
    pub fn ratio(&self) -> f64 {
        if self.homepage_rps == 0.0 {
            0.0
        } else {
            self.portal_rps / self.homepage_rps
        }
    }
}

enum Ev {
    /// A client issues a request (client id, class: 0 portal / 1 home).
    Issue(u32, u8),
    /// The scheduler should try to start work on an idle CPU.
    Drain,
    /// A request finished service (client id, class).
    Done(u32, u8),
}

struct SchedWorld {
    params: SchedulingParams,
    queue: PriorityQuotaQueue<(u32, u8)>,
    cpu: CpuPool,
    busy: usize,
    rng: SimRng,
    counts: [u64; 2],
    measuring_from: SimTime,
}

impl SchedWorld {
    fn try_start(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        while self.busy < self.params.cpus {
            let Some((client, class)) = self.queue.pop() else {
                return;
            };
            self.busy += 1;
            // Small service-time jitter keeps the classes from phase-lock.
            let jitter = self.rng.below(self.params.service_us / 10 + 1);
            let demand = SimTime::from_micros(self.params.service_us + jitter);
            let done = self.cpu.run(now, demand);
            sched.at(done, Ev::Done(client, class));
        }
    }
}

impl Model for SchedWorld {
    type Ev = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Issue(client, class) => {
                // Portal = priority 0 (quota y), homepage = priority 1
                // (quota x) — the IP-based priority policy of the paper.
                self.queue.push((client, class), Priority(class));
                self.try_start(now, sched);
            }
            Ev::Drain => self.try_start(now, sched),
            Ev::Done(client, class) => {
                self.busy -= 1;
                if now >= self.measuring_from {
                    self.counts[class as usize] += 1;
                }
                sched.after(self.params.think, Ev::Issue(client, class));
                sched.at(now, Ev::Drain);
            }
        }
    }
}

/// Run the Fig. 5 experiment for one quota setting.
pub fn run_scheduling_experiment(params: SchedulingParams) -> SchedulingOutcome {
    let mut rng = SimRng::new(params.seed);
    let mut world = SchedWorld {
        queue: PriorityQuotaQueue::new(vec![
            params.portal_quota.max(1),
            params.homepage_quota.max(1),
        ]),
        cpu: CpuPool::new(params.cpus),
        busy: 0,
        rng: rng.fork(1),
        counts: [0, 0],
        measuring_from: params.warmup,
        params,
    };
    let mut sched = Scheduler::new();
    let mut id = 0;
    for _ in 0..params.portal_clients {
        sched.at(SimTime::from_micros(rng.below(10_000)), Ev::Issue(id, 0));
        id += 1;
    }
    for _ in 0..params.homepage_clients {
        sched.at(SimTime::from_micros(rng.below(10_000)), Ev::Issue(id, 1));
        id += 1;
    }
    sched.run_until(&mut world, params.warmup + params.measure);
    let secs = params.measure.as_secs_f64();
    SchedulingOutcome {
        portal_rps: world.counts[0] as f64 / secs,
        homepage_rps: world.counts[1] as f64 / secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short(mut p: SchedulingParams) -> SchedulingParams {
        p.warmup = SimTime::from_secs(2);
        p.measure = SimTime::from_secs(20);
        p
    }

    #[test]
    fn equal_quotas_give_equal_service() {
        let out = run_scheduling_experiment(short(SchedulingParams::paper(1, 1)));
        let ratio = out.ratio();
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn throughput_ratio_tracks_quota_ratio() {
        for (x, y) in [(1u32, 2u32), (1, 5), (1, 10)] {
            let out = run_scheduling_experiment(short(SchedulingParams::paper(x, y)));
            let expect = y as f64 / x as f64;
            let ratio = out.ratio();
            // "There is a small gap between the ratio of priority levels
            // and the actual throughput ratio" — allow 25%.
            assert!(
                (ratio - expect).abs() / expect < 0.25,
                "quota {y}/{x}: ratio {ratio}, expect {expect}"
            );
        }
    }

    #[test]
    fn portal_only_run_reaches_cpu_bound_maximum() {
        let out = run_scheduling_experiment(short(SchedulingParams::portal_only()));
        assert_eq!(out.homepage_rps, 0.0);
        // 2 CPUs at ~2.5–2.75 ms per request ⇒ ~730–800 rps ceiling.
        assert!(
            out.portal_rps > 500.0,
            "portal-only throughput {}",
            out.portal_rps
        );
        // And prioritised runs never exceed the portal-only maximum.
        let shared = run_scheduling_experiment(short(SchedulingParams::paper(1, 10)));
        assert!(shared.portal_rps <= out.portal_rps * 1.05);
    }

    #[test]
    fn total_throughput_is_conserved_across_quota_settings() {
        // The scheduler redistributes service; it does not create or
        // destroy capacity.
        let a = run_scheduling_experiment(short(SchedulingParams::paper(1, 1)));
        let b = run_scheduling_experiment(short(SchedulingParams::paper(1, 10)));
        let total_a = a.portal_rps + a.homepage_rps;
        let total_b = b.portal_rps + b.homepage_rps;
        assert!(
            (total_a - total_b).abs() / total_a < 0.05,
            "{total_a} vs {total_b}"
        );
    }
}
