//! Relay/cluster trace equivalence: the differential checker.
//!
//! The paper's cluster pattern claims the relay front end is
//! *transparent*: a client talking to a [`ClusterFrontEnd`] must observe
//! exactly what it would observe talking to a backend N-Server directly
//! — including when the relay's dial logic silently retries a dead
//! backend and rotates to the next candidate. This module makes the
//! claim checkable: the same (sanitized, fault-free) schedule is driven
//! over real TCP against **two arms** — a direct backend, and a fresh
//! backend behind the relay — and the per-connection client-observable
//! traces are compared.
//!
//! * **HTTP** arms are compared byte-for-byte, and each arm is also
//!   anchored to the model's [`expected_outbound`] stream, so a
//!   divergence names the guilty arm.
//! * **FTP** arms are compared at the `(reply code, multiline?)` level —
//!   the same alphabet the conformance model checks — because `227`
//!   passive-mode replies legitimately embed different port numbers per
//!   arm. Scripted data ops run against whichever passive port each
//!   arm's own control channel announces, so `STOR`/`RETR` transfers
//!   exercise the full dual-socket flow in both arms.
//!
//! [`ReplayingProxy`] is the soundness mutant for this checker: a relay
//! whose upstream path writes every client chunk twice — the classic
//! replay bug of retry logic that re-sends a request it already
//! delivered. A duplicated `STOR` (or even a duplicated `USER`) produces
//! a reply stream the direct arm never shows, and the differential must
//! catch it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nserver_core::cluster::{Balancing, ClusterFrontEnd, RetryPolicy};
use nserver_core::fault::FaultPlan;
use nserver_core::server::ServerBuilder;
use nserver_core::transport::TcpListenerNb;
use nserver_ftp::observe::parse_pasv_port;
use nserver_ftp::{cops_ftp_options, split_replies, FtpCodec};
use nserver_http::{cops_http_options, HttpCodec};

use crate::explorer::{standard_ftp_service, standard_http_service};
use crate::ftp_model::expected_replies;
use crate::http_model::{expected_outbound, HttpFixture};
use crate::schedule::{generate, ConnScript, DataOp, DataOpKind, Proto, Schedule};

/// The outcome of one differential run.
#[derive(Debug)]
pub struct DiffReport {
    /// Human-readable per-connection divergences (empty = equivalent).
    pub divergences: Vec<String>,
    /// Relay-arm dial retries (the failover counter).
    pub dial_retries: u64,
    /// Relay-arm clients refused because no backend was dialable.
    pub backend_failures: u64,
}

impl DiffReport {
    /// Whether the two arms were client-observably equivalent.
    pub fn equivalent(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Strip a generated schedule down to its deterministic core: the
/// differential compares two *live* arms, so every source of legitimate
/// per-arm nondeterminism — injected faults, early closes, mid-transfer
/// aborts, pacing — is removed. Bytes pipelined past a close-triggering
/// request are deliberately *kept*: the server ends such a connection
/// with a lingering close (drain, FIN, read until peer FIN), so the
/// final response is a deterministic client observation in both arms —
/// exactly the delivery guarantee the differential must pin down. What
/// remains (pipelined requests, including past a close, multi-connection
/// scripts, full PASV transfers) is exactly the behaviour the relay must
/// preserve.
pub fn sanitize_for_differential(sched: &Schedule) -> Schedule {
    let mut s = sched.clone();
    s.plan = FaultPlan::new(s.plan.seed);
    for conn in &mut s.conns {
        conn.close_early = false;
        for op in &mut conn.data_ops {
            op.abort_after = None;
        }
    }
    for step in &mut s.order {
        step.pause_ms = 0;
    }
    s
}

/// Run the differential for one seed: generate, sanitize, drive both
/// arms, compare. `force_failover` puts a dead backend first in the
/// relay's rotation so the first client connection must retry-rotate.
pub fn relay_differential(proto: Proto, seed: u64, force_failover: bool) -> DiffReport {
    let sched = sanitize_for_differential(&generate(proto, seed));
    let direct = run_direct_arm(proto, &sched);
    let (relayed, dial_retries, backend_failures) = run_relay_arm(proto, &sched, force_failover);
    DiffReport {
        divergences: compare_arms(proto, &sched, &direct, &relayed),
        dial_retries,
        backend_failures,
    }
}

/// Like [`relay_differential`] but with [`ReplayingProxy`] as the front
/// end — the mutation tests assert this diverges.
pub fn replaying_relay_diverges(proto: Proto, sched: &Schedule) -> bool {
    let sched = sanitize_for_differential(sched);
    let direct = run_direct_arm(proto, &sched);
    let mutated = run_replaying_arm(proto, &sched);
    !compare_arms(proto, &sched, &direct, &mutated).is_empty()
}

fn backend_addr(label: &str) -> SocketAddr {
    label.parse().expect("listener label is an address")
}

fn run_direct_arm(proto: Proto, sched: &Schedule) -> Vec<Vec<u8>> {
    match proto {
        Proto::Http => {
            let server = ServerBuilder::new(cops_http_options(), HttpCodec::new(), {
                standard_http_service()
            })
            .expect("valid options")
            .serve(TcpListenerNb::bind("127.0.0.1:0").expect("bind backend"));
            let addr = backend_addr(server.local_label());
            let out = drive_schedule(proto, addr, sched);
            server.shutdown();
            out
        }
        Proto::Ftp => {
            let server = ServerBuilder::new(cops_ftp_options(), FtpCodec, standard_ftp_service())
                .expect("valid options")
                .serve(TcpListenerNb::bind("127.0.0.1:0").expect("bind backend"));
            let addr = backend_addr(server.local_label());
            let out = drive_schedule(proto, addr, sched);
            server.shutdown();
            out
        }
    }
}

/// A local address that refuses connections: bind, note the port, drop.
fn dead_backend_label() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind dead backend");
    let addr = l.local_addr().expect("local addr");
    drop(l);
    addr.to_string()
}

fn run_relay_arm(proto: Proto, sched: &Schedule, force_failover: bool) -> (Vec<Vec<u8>>, u64, u64) {
    // A fresh backend per arm: FTP schedules mutate server state (STOR,
    // MKD), so sharing one backend across arms would leak arm 1's
    // mutations into arm 2's listings.
    let run = |front_backends: &dyn Fn(String) -> Vec<String>| -> (Vec<Vec<u8>>, u64, u64) {
        let (label, shutdown): (String, Box<dyn FnOnce()>) = match proto {
            Proto::Http => {
                let s = ServerBuilder::new(cops_http_options(), HttpCodec::new(), {
                    standard_http_service()
                })
                .expect("valid options")
                .serve(TcpListenerNb::bind("127.0.0.1:0").expect("bind backend"));
                (s.local_label().to_string(), Box::new(move || s.shutdown()))
            }
            Proto::Ftp => {
                let s = ServerBuilder::new(cops_ftp_options(), FtpCodec, standard_ftp_service())
                    .expect("valid options")
                    .serve(TcpListenerNb::bind("127.0.0.1:0").expect("bind backend"));
                (s.local_label().to_string(), Box::new(move || s.shutdown()))
            }
        };
        let front = ClusterFrontEnd::start_with_retry(
            TcpListenerNb::bind("127.0.0.1:0").expect("bind front end"),
            front_backends(label),
            Balancing::RoundRobin,
            RetryPolicy {
                attempts: 3,
                backoff: Duration::from_millis(10),
            },
        )
        .expect("start front end");
        let addr = backend_addr(front.local_label());
        let out = drive_schedule(proto, addr, sched);
        let retries = front.stats().dial_retries.load(Ordering::Relaxed);
        let failures = front.stats().backend_failures.load(Ordering::Relaxed);
        front.shutdown();
        shutdown();
        (out, retries, failures)
    };
    if force_failover {
        let dead = dead_backend_label();
        run(&move |live| vec![dead.clone(), live])
    } else {
        run(&|live| vec![live])
    }
}

fn run_replaying_arm(proto: Proto, sched: &Schedule) -> Vec<Vec<u8>> {
    let (label, shutdown): (String, Box<dyn FnOnce()>) = match proto {
        Proto::Http => {
            let s = ServerBuilder::new(
                cops_http_options(),
                HttpCodec::new(),
                standard_http_service(),
            )
            .expect("valid options")
            .serve(TcpListenerNb::bind("127.0.0.1:0").expect("bind backend"));
            (s.local_label().to_string(), Box::new(move || s.shutdown()))
        }
        Proto::Ftp => {
            let s = ServerBuilder::new(cops_ftp_options(), FtpCodec, standard_ftp_service())
                .expect("valid options")
                .serve(TcpListenerNb::bind("127.0.0.1:0").expect("bind backend"));
            (s.local_label().to_string(), Box::new(move || s.shutdown()))
        }
    };
    let proxy = ReplayingProxy::start(backend_addr(&label));
    let out = drive_schedule(proto, proxy.addr(), sched);
    proxy.shutdown();
    shutdown();
    out
}

/// What "the reply stream is complete" means while driving one
/// connection.
enum ReplyTarget {
    /// At least this many outbound bytes (HTTP).
    Bytes(usize),
    /// At least this many complete reply blocks (FTP).
    Blocks(usize),
}

/// Drive every connection of the schedule against `addr`, sequentially.
/// Connections in a sanitized schedule are independent (disjoint STOR
/// paths, no cross-connection state the model doesn't replicate), so
/// sequential driving keeps both arms deterministic. Returns each
/// connection's received byte stream.
fn drive_schedule(proto: Proto, addr: SocketAddr, sched: &Schedule) -> Vec<Vec<u8>> {
    sched
        .conns
        .iter()
        .map(|conn| {
            let target = match proto {
                Proto::Http => ReplyTarget::Bytes(
                    expected_outbound(&HttpFixture::standard(), &conn.bytes())
                        .0
                        .len(),
                ),
                Proto::Ftp => ReplyTarget::Blocks(expected_replies(&conn.bytes()).len()),
            };
            drive_conn(addr, conn, &target)
        })
        .collect()
}

/// Drive one connection: send the whole script, then read replies while
/// serving each `227` announcement with the connection's next scripted
/// data op. Reads continue for a short grace window after the target is
/// met, so surplus bytes (the signature of a replaying relay) are
/// captured rather than ignored.
fn drive_conn(addr: SocketAddr, conn: &ConnScript, target: &ReplyTarget) -> Vec<u8> {
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_secs(2)) else {
        return Vec::new();
    };
    let _ = stream.set_read_timeout(Some(Duration::from_millis(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_nodelay(true);
    for seg in &conn.segments {
        if stream.write_all(seg).is_err() {
            break;
        }
    }
    let mut received = Vec::new();
    let mut served = 0usize;
    let deadline = Instant::now() + Duration::from_secs(8);
    let mut target_met_at: Option<Instant> = None;
    let mut buf = [0u8; 4096];
    loop {
        if !conn.data_ops.is_empty() {
            let ports: Vec<u16> = split_replies(&received)
                .complete
                .iter()
                .filter(|b| b.code == 227)
                .filter_map(|b| parse_pasv_port(&b.text))
                .collect();
            while served < ports.len() {
                if let Some(op) = conn.data_ops.get(served) {
                    run_clean_data_op(ports[served], op);
                }
                served += 1;
            }
        }
        let met = match target {
            ReplyTarget::Bytes(n) => received.len() >= *n,
            ReplyTarget::Blocks(n) => split_replies(&received).complete.len() >= *n,
        };
        match (met, target_met_at) {
            (true, None) => target_met_at = Some(Instant::now()),
            // Grace drain: give a buggy arm time to append surplus bytes.
            (true, Some(t)) if t.elapsed() > Duration::from_millis(60) => break,
            _ => {}
        }
        if Instant::now() > deadline {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => received.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    received
}

/// Serve one sanitized (abort-free) data op against a passive port.
fn run_clean_data_op(port: u16, op: &DataOp) {
    let addr = SocketAddr::from(([127, 0, 0, 1], port));
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_secs(2)) else {
        return;
    };
    match op.kind {
        DataOpKind::Write => {
            let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
            let _ = stream.write_all(&op.payload);
        }
        DataOpKind::Read => {
            let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
            let deadline = Instant::now() + Duration::from_secs(4);
            let mut buf = [0u8; 4096];
            loop {
                match stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        if Instant::now() > deadline {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        }
    }
}

/// Compare the two arms connection by connection, in the alphabet the
/// protocol's model checks.
fn compare_arms(
    proto: Proto,
    sched: &Schedule,
    direct: &[Vec<u8>],
    relayed: &[Vec<u8>],
) -> Vec<String> {
    let mut divergences = Vec::new();
    for (ci, conn) in sched.conns.iter().enumerate() {
        let d = direct.get(ci).map(Vec::as_slice).unwrap_or(&[]);
        let r = relayed.get(ci).map(Vec::as_slice).unwrap_or(&[]);
        match proto {
            Proto::Http => {
                let (expected, _) = expected_outbound(&HttpFixture::standard(), &conn.bytes());
                if d != expected.as_slice() {
                    divergences.push(format!(
                        "conn {ci}: direct arm broke the model anchor \
                         ({} bytes observed, {} expected)",
                        d.len(),
                        expected.len()
                    ));
                }
                if r != d {
                    let at = r
                        .iter()
                        .zip(d)
                        .position(|(a, b)| a != b)
                        .unwrap_or(d.len().min(r.len()));
                    divergences.push(format!(
                        "conn {ci}: relay arm diverges from direct at byte {at} \
                         (direct {} bytes, relayed {} bytes)",
                        d.len(),
                        r.len()
                    ));
                }
            }
            Proto::Ftp => {
                let codes = |bytes: &[u8]| -> Vec<(u16, bool)> {
                    split_replies(bytes)
                        .complete
                        .iter()
                        .map(|b| (b.code, b.multiline))
                        .collect()
                };
                let dc = codes(d);
                let rc = codes(r);
                if dc != rc {
                    divergences.push(format!(
                        "conn {ci}: reply streams diverge: direct {dc:?} vs relayed {rc:?}"
                    ));
                }
            }
        }
    }
    divergences
}

/// The replay-bug relay: a TCP front end whose upstream pump writes
/// every client chunk to the backend **twice**. Downstream is copied
/// verbatim — the bug is only visible through the backend's reaction to
/// the duplicated commands/requests.
pub struct ReplayingProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ReplayingProxy {
    /// Start proxying `127.0.0.1:0` → `backend`.
    pub fn start(backend: SocketAddr) -> ReplayingProxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        listener.set_nonblocking(true).expect("nonblocking proxy");
        let addr = listener.local_addr().expect("proxy addr");
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("conformance-replaying-proxy".into())
            .spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                while !stop_flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let stop = Arc::clone(&stop_flag);
                            conns.push(std::thread::spawn(move || {
                                proxy_conn(client, backend, &stop)
                            }));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                for c in conns {
                    let _ = c.join();
                }
            })
            .expect("spawn proxy");
        ReplayingProxy {
            addr,
            stop,
            thread: Some(thread),
        }
    }

    /// The proxy's listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join every relay thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn proxy_conn(client: TcpStream, backend: SocketAddr, stop: &Arc<AtomicBool>) {
    let Ok(upstream) = TcpStream::connect_timeout(&backend, Duration::from_secs(2)) else {
        return;
    };
    let (Ok(client_rx), Ok(upstream_rx)) = (client.try_clone(), upstream.try_clone()) else {
        return;
    };
    let up_stop = Arc::clone(stop);
    let up = std::thread::spawn(move || pump(client_rx, upstream, &up_stop, true));
    pump(upstream_rx, client, stop, false);
    let _ = up.join();
}

/// Copy `from` → `to` until EOF, error, or stop. `duplicate` is the
/// injected replay bug: every chunk is written twice.
fn pump(mut from: TcpStream, mut to: TcpStream, stop: &AtomicBool, duplicate: bool) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(20)));
    let _ = to.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) => {
                let _ = to.shutdown(std::net::Shutdown::Write);
                return;
            }
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    return;
                }
                if duplicate && to.write_all(&buf[..n]).is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Step;

    #[test]
    fn sanitize_removes_every_nondeterminism_source() {
        let mut s = generate(Proto::Ftp, 25);
        s.plan.reset_per_mille = 500;
        s.conns[0].close_early = true;
        if let Some(op) = s.conns[0].data_ops.first_mut() {
            op.abort_after = Some(3);
        }
        s.order.push(Step {
            conn: 0,
            pause_ms: 80,
        });
        s.conns[0].segments.push(Vec::new());
        let clean = sanitize_for_differential(&s);
        assert_eq!(clean.plan.reset_per_mille, 0);
        assert!(clean.conns.iter().all(|c| !c.close_early));
        assert!(clean
            .conns
            .iter()
            .all(|c| c.data_ops.iter().all(|o| o.abort_after.is_none())));
        assert!(clean.order.iter().all(|st| st.pause_ms == 0));
    }

    #[test]
    fn sanitize_preserves_pipelining_past_a_close() {
        // HTTP: the second request closes, the third is pipelined past
        // it. The server's lingering close makes the second response a
        // deterministic client observation, so the script survives
        // byte-identical — the differential must exercise this tail.
        let mut s = generate(Proto::Http, 1);
        s.conns.truncate(1);
        s.conns[0].segments = vec![
            b"GET /index.html HTTP/1.1\r\nHost: c\r\n\r\n\
              GET /x.txt HTTP/1.1\r\nHost: c\r\nConnection: close\r\n\r\n"
                .to_vec(),
            b"GET /index.html HTTP/1.1\r\nHost: c\r\n\r\n".to_vec(),
        ];
        let clean = sanitize_for_differential(&s);
        assert_eq!(clean.conns[0].segments.len(), 2);
        assert_eq!(clean.conns[0].bytes(), s.conns[0].bytes());

        // FTP: commands pipelined past QUIT are likewise preserved.
        let mut s = generate(Proto::Ftp, 1);
        s.conns.truncate(1);
        s.conns[0].segments = vec![b"USER anonymous\r\nPASS guest\r\nQUIT\r\nNOOP\r\n".to_vec()];
        s.conns[0].data_ops.clear();
        let clean = sanitize_for_differential(&s);
        assert_eq!(clean.conns[0].bytes(), s.conns[0].bytes());

        // A script that never closes is (still) left byte-identical.
        let mut s = generate(Proto::Http, 1);
        s.conns.truncate(1);
        s.conns[0].segments = vec![b"GET /index.html HTTP/1.1\r\nHost: c\r\n\r\n".to_vec()];
        let clean = sanitize_for_differential(&s);
        assert_eq!(clean.conns[0].bytes(), s.conns[0].bytes());
    }

    #[test]
    fn replaying_proxy_duplicates_upstream_only() {
        // Echo backend: writes back exactly what it reads.
        let backend = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let backend_addr = backend.local_addr().expect("addr");
        let echo = std::thread::spawn(move || {
            let (mut s, _) = backend.accept().expect("accept");
            let mut buf = [0u8; 64];
            let mut echoed = 0;
            while echoed < 10 {
                match s.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => {
                        echoed += n;
                        s.write_all(&buf[..n]).expect("echo");
                    }
                    Err(_) => break,
                }
            }
        });
        let proxy = ReplayingProxy::start(backend_addr);
        let mut c = TcpStream::connect(proxy.addr()).expect("connect proxy");
        c.write_all(b"hello").expect("send");
        c.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut buf = [0u8; 64];
        while got.len() < 10 && Instant::now() < deadline {
            match c.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(_) => {}
            }
        }
        assert_eq!(got, b"hellohello", "upstream chunk must land twice");
        drop(c);
        proxy.shutdown();
        let _ = echo.join();
    }
}
