//! # nserver-cache
//!
//! File cache substrate for the N-Server pattern template (template option
//! **O6** in the paper). Network servers frequently serve the same disk
//! files over and over; the N-Server can be configured to generate code that
//! transparently caches file contents in memory. The paper ships five
//! replacement policies — **LRU**, **LFU**, **LRU-MIN**, **LRU-Threshold**
//! and **Hyper-G** — plus a *Custom* hook for user-defined policies. This
//! crate implements all six.
//!
//! The cache is byte-capacity bounded (files have wildly different sizes, so
//! entry-count bounds are meaningless for a web cache) and keeps hit/miss
//! statistics that feed the performance-profiling option (**O11**).
//!
//! ```
//! use nserver_cache::{FileCache, PolicyKind};
//!
//! let mut cache = FileCache::new(1024, PolicyKind::Lru);
//! cache.insert("a.html".to_string(), vec![0u8; 400].into());
//! cache.insert("b.html".to_string(), vec![0u8; 400].into());
//! assert!(cache.get(&"a.html".to_string()).is_some());
//! // Inserting a third 400-byte file evicts the least recently used one.
//! cache.insert("c.html".to_string(), vec![0u8; 400].into());
//! assert!(cache.get(&"b.html".to_string()).is_none());
//! assert!(cache.used_bytes() <= 1024);
//! ```

pub mod cache;
pub mod policy;

mod hyper_g;
mod lfu;
mod lru;
mod lru_min;
mod lru_threshold;

pub use cache::{CacheStats, FileCache, SharedFileCache, DEFAULT_SHARDS};
pub use hyper_g::HyperG;
pub use lfu::Lfu;
pub use lru::Lru;
pub use lru_min::LruMin;
pub use lru_threshold::LruThreshold;
pub use policy::{CustomPolicy, EntryId, EntryMeta, PolicyKind, ReplacementPolicy};
