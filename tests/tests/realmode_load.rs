//! Real-mode load test: the SpecWeb99 workload driver (real sockets,
//! real threads) against a live COPS-HTTP instance — a miniature of the
//! paper's first experiment running on the actual framework instead of
//! the simulator.

use std::time::Duration;

use nserver_cache::{FileCache, PolicyKind, SharedFileCache};
use nserver_core::server::ServerBuilder;
use nserver_core::transport::TcpListenerNb;
use nserver_http::{cops_http_options, HttpCodec, MemStore, StaticFileService};
use nserver_netsim::jain_index;
use nserver_specweb::driver::{run, DriverConfig};
use nserver_specweb::{ClientConfig, FileSet};

#[test]
fn specweb_driver_loads_real_cops_http() {
    let fileset = FileSet::with_dirs(2);
    let mut store = MemStore::new();
    for spec in fileset.files() {
        store.insert(spec.path(), fileset.synth_content(spec));
    }
    let cache = SharedFileCache::new(FileCache::new(8 << 20, PolicyKind::Lru));
    let server = ServerBuilder::new(
        cops_http_options(),
        HttpCodec::new(),
        StaticFileService::new(store, Some(cache.clone())),
    )
    .unwrap()
    .serve(TcpListenerNb::bind("127.0.0.1:0").unwrap());

    let report = run(
        &fileset,
        &DriverConfig {
            addr: server.local_label().to_string(),
            clients: 8,
            duration: Duration::from_secs(2),
            client: ClientConfig {
                requests_per_connection: 5,
                think_time_ms: 5,
            },
            seed: 7,
        },
    );

    assert_eq!(report.errors, 0, "no failed requests");
    let total = report.total_responses();
    assert!(total >= 8 * 10, "only {total} responses in 2 s");
    assert!(report.body_bytes > 0);

    // The event-driven server serves all clients fairly.
    let per: Vec<f64> = report.per_client.iter().map(|&c| c as f64).collect();
    let fairness = jain_index(&per);
    assert!(fairness > 0.9, "fairness {fairness}: {per:?}");

    // Server-side accounting agrees with the driver's view.
    let stats = server.stats();
    assert!(stats.responses_sent >= total);
    assert!(cache.stats().hits > 0, "Zipf workload must produce hits");
    server.shutdown();
}
