//! FTP reply codes and formatting (RFC 959 subset).

/// Format a single-line reply: `NNN text\r\n`.
pub fn line(code: u16, text: &str) -> String {
    format!("{code} {text}\r\n")
}

/// 220 service ready.
pub fn service_ready(server_name: &str) -> String {
    line(220, &format!("{server_name} ready"))
}

/// 221 goodbye.
pub fn goodbye() -> String {
    line(221, "Goodbye")
}

/// 230 user logged in.
pub fn logged_in(user: &str) -> String {
    line(230, &format!("User {user} logged in"))
}

/// 331 need password.
pub fn need_password(user: &str) -> String {
    line(331, &format!("Password required for {user}"))
}

/// 530 not logged in / login failed.
pub fn not_logged_in(why: &str) -> String {
    line(530, why)
}

/// 215 system type.
pub fn system_type() -> String {
    line(215, "UNIX Type: L8")
}

/// 257 current directory.
pub fn cwd_is(path: &str) -> String {
    line(257, &format!("\"{path}\" is the current directory"))
}

/// 250 action completed.
pub fn ok_action(what: &str) -> String {
    line(250, what)
}

/// 200 command okay.
pub fn ok_command(what: &str) -> String {
    line(200, what)
}

/// 227 entering passive mode for `addr:port`.
pub fn passive_mode(ip: [u8; 4], port: u16) -> String {
    line(
        227,
        &format!(
            "Entering Passive Mode ({},{},{},{},{},{})",
            ip[0],
            ip[1],
            ip[2],
            ip[3],
            port >> 8,
            port & 0xff
        ),
    )
}

/// 150 opening data connection.
pub fn opening_data(what: &str) -> String {
    line(150, &format!("Opening data connection for {what}"))
}

/// 226 transfer complete.
pub fn transfer_complete() -> String {
    line(226, "Transfer complete")
}

/// 425 can't open data connection.
pub fn data_failed() -> String {
    line(425, "Can't open data connection")
}

/// 550 file unavailable.
pub fn file_unavailable(path: &str) -> String {
    line(550, &format!("{path}: No such file or directory"))
}

/// 211 multi-line system status (RFC 959 §4.2 format: `211-` opens,
/// each body line is indented, a bare `211 End` closes).
pub fn status_lines(title: &str, body: &[String]) -> String {
    let mut out = format!("211-{title}\r\n");
    for l in body {
        out.push_str(&format!(" {l}\r\n"));
    }
    out.push_str("211 End\r\n");
    out
}

/// 500 syntax error.
pub fn syntax_error(cmd: &str) -> String {
    line(500, &format!("Syntax error: {cmd}"))
}

/// 502 not implemented.
pub fn not_implemented(cmd: &str) -> String {
    line(502, &format!("{cmd} not implemented"))
}

/// 503 bad sequence.
pub fn bad_sequence(why: &str) -> String {
    line(503, why)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_crlf_terminated_with_code() {
        let l = line(220, "hi");
        assert_eq!(l, "220 hi\r\n");
        assert!(service_ready("srv").starts_with("220 "));
        assert!(goodbye().starts_with("221 "));
    }

    #[test]
    fn passive_mode_encodes_port() {
        let l = passive_mode([127, 0, 0, 1], 0x1234);
        assert!(l.contains("(127,0,0,1,18,52)"), "{l}");
    }

    #[test]
    fn status_reply_is_multiline_211() {
        let s = status_lines("COPS-FTP status", &["a 1".into(), "b 2".into()]);
        assert!(s.starts_with("211-COPS-FTP status\r\n"));
        assert!(s.contains(" a 1\r\n"));
        assert!(s.ends_with("211 End\r\n"));
    }

    #[test]
    fn reply_codes_match_rfc959() {
        assert!(need_password("u").starts_with("331 "));
        assert!(logged_in("u").starts_with("230 "));
        assert!(not_logged_in("x").starts_with("530 "));
        assert!(opening_data("f").starts_with("150 "));
        assert!(transfer_complete().starts_with("226 "));
        assert!(file_unavailable("/x").starts_with("550 "));
        assert!(data_failed().starts_with("425 "));
    }
}
