//! Data-plane conformance sweeps: schedules whose PASV transfers run
//! over real TCP data sockets, checked byte-exactly against the model's
//! replica VFS — including STOR write-back visibility and the
//! completion-after-data-close ordering rule.

use conformance::{explore, generate, run, seed_range, Proto};

#[test]
fn ftp_data_plane_sweep_band_one() {
    let seeds = seed_range(9000, 9150);
    let runs = seeds.len();
    let summary = explore(Proto::Ftp, seeds);
    assert_eq!(summary.runs, runs);
    assert!(
        summary.distinct_schedules * 100 >= runs * 95,
        "schedule space too collapsed: {} distinct of {}",
        summary.distinct_schedules,
        runs
    );
}

#[test]
fn ftp_data_plane_sweep_band_two() {
    let seeds = seed_range(9150, 9300);
    let runs = seeds.len();
    let summary = explore(Proto::Ftp, seeds);
    assert_eq!(summary.runs, runs);
}

/// The sweeps above only prove *absence of violations*; this test proves
/// the data plane is actually exercised — real data connections are
/// accepted, tapped, and joined to their control connections — so a
/// silently-dead pump cannot fake a green sweep.
#[test]
fn data_schedules_record_joined_data_traces() {
    let mut scheduled_ops = 0usize;
    let mut data_traces = 0usize;
    let mut joined = 0usize;
    for seed in 9300..9400 {
        let sched = generate(Proto::Ftp, seed);
        let ops: usize = sched.conns.iter().map(|c| c.data_ops.len()).sum();
        if ops == 0 {
            continue;
        }
        scheduled_ops += ops;
        let report = run(&sched);
        assert!(
            report.violations.is_empty(),
            "seed {seed}: {:?}",
            report.violations
        );
        for t in &report.traces {
            if t.is_data() {
                data_traces += 1;
                let p = t.parent.expect("data traces carry their parent");
                assert!(p.transfer_ordinal >= 1, "ordinals are 1-based");
                if report
                    .traces
                    .iter()
                    .any(|c| c.parent.is_none() && c.accept_index == p.control_accept_index)
                {
                    joined += 1;
                }
            }
        }
    }
    assert!(
        scheduled_ops >= 50,
        "band too thin: only {scheduled_ops} scheduled data ops"
    );
    // Not every scripted op can land a trace: dangling PASVs are never
    // accepted, statically-failing RETRs drop the listener without
    // accepting, pre-login PASVs die at the 530 gate, and faulted or
    // early-closed connections may never reach their transfer. A quarter
    // of the scheduled ops producing real accepted-and-tapped data
    // connections is far beyond what a dead pump could fake.
    assert!(
        data_traces >= scheduled_ops / 4,
        "pump starvation: {data_traces} data traces for {scheduled_ops} scheduled ops"
    );
    assert_eq!(
        joined, data_traces,
        "every data trace must join a recorded control connection"
    );
}
