//! Time server — the paper's example of a "trivial application" the
//! N-Server generates, using the **Fig. 2 structural variation**: no
//! encoding or decoding (template option O3 = No), so the pipeline is
//! Read → Handle → Send and the codec hook disappears entirely.
//!
//! Any bytes received on a connection are answered with the current time
//! (like RFC 867 daytime, but query-triggered so it works over one
//! persistent connection).
//!
//! Run: `cargo run -p nserver-examples --bin time_server`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use nserver_core::prelude::*;

/// Handle Request over raw bytes (no codec — O3 = No).
struct TimeService;

impl Service<RawCodec> for TimeService {
    fn handle(&self, _ctx: &ConnCtx, _req: Vec<u8>) -> Action<Vec<u8>> {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default();
        Action::Reply(
            format!("unix-time {}.{:09}\n", now.as_secs(), now.subsec_nanos()).into_bytes(),
        )
    }
}

fn main() {
    let options = ServerOptions {
        // Fig. 2: no Decode/Encode stages are generated.
        encode_decode: false,
        // A trivial server doesn't need a worker pool either: run the
        // handler inline on the dispatcher (classic single-threaded
        // Reactor, O2 = No).
        separate_handler_pool: false,
        thread_allocation: ThreadAllocation::Static { threads: 1 },
        ..ServerOptions::default()
    };
    let server = ServerBuilder::new(options, RawCodec, TimeService)
        .expect("valid options")
        .serve(TcpListenerNb::bind("127.0.0.1:0").expect("bind"));
    let addr = server.local_label().to_string();
    println!("time server (O3=No, O2=No) listening on {addr}");

    let mut client = TcpStream::connect(&addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    for i in 0..3 {
        client.write_all(b"?").unwrap();
        let mut buf = [0u8; 128];
        let n = client.read(&mut buf).unwrap();
        let line = String::from_utf8_lossy(&buf[..n]);
        print!("query {i}: {line}");
        assert!(line.starts_with("unix-time "));
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
    println!("time server OK");
}
