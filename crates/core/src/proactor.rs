//! Proactor emulation: a helper thread pool for blocking operations.
//!
//! Event-driven concurrency requires non-blocking operations, but — as the
//! paper notes for Java's missing non-blocking file I/O — the OS rarely
//! provides them for everything. The N-Server therefore "emulates the
//! existence of non-blocking events": a blocking operation is shipped to a
//! helper pool; on completion, a Completion Event carrying an Asynchronous
//! Completion Token re-enters the framework (the Proactor + ACT patterns,
//! references \[10\] and \[11\]).
//!
//! The pool itself is untyped — it runs boxed closures. The pipeline layer
//! pairs it with a typed completion channel.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of helper threads executing blocking jobs.
pub struct HelperPool {
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    submitted: Arc<AtomicU64>,
    completed: Arc<AtomicU64>,
    shutting_down: Arc<AtomicBool>,
}

impl HelperPool {
    /// Spawn `threads` helpers (≥ 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = unbounded::<Job>();
        let completed = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = rx.clone();
            let completed = Arc::clone(&completed);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("nserver-helper-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn helper thread"),
            );
        }
        Self {
            tx: Some(tx),
            handles,
            submitted: Arc::new(AtomicU64::new(0)),
            completed,
            shutting_down: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Submit a blocking job. Jobs submitted after shutdown are dropped.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        if self.shutting_down.load(Ordering::Relaxed) {
            return;
        }
        if let Some(tx) = &self.tx {
            self.submitted.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(Box::new(job));
        }
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Jobs finished so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Jobs accepted but not yet finished.
    pub fn in_flight(&self) -> u64 {
        self.submitted().saturating_sub(self.completed())
    }

    /// Helper thread count.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Finish queued jobs and join the helpers.
    pub fn shutdown(mut self) {
        self.shutting_down.store(true, Ordering::Relaxed);
        self.tx.take(); // close the channel; helpers drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for HelperPool {
    fn drop(&mut self) {
        self.shutting_down.store(true, Ordering::Relaxed);
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_complete() {
        let pool = HelperPool::new(2);
        let (tx, rx) = unbounded();
        for i in 0..10 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i).unwrap());
        }
        let mut got: Vec<i32> = (0..10)
            .map(|_| rx.recv_timeout(Duration::from_secs(2)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(pool.submitted(), 10);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_jobs() {
        let pool = HelperPool::new(1);
        let (tx, rx) = unbounded();
        for i in 0..50 {
            let tx = tx.clone();
            pool.submit(move || {
                std::thread::sleep(Duration::from_micros(100));
                tx.send(i).unwrap();
            });
        }
        pool.shutdown(); // must block until all 50 ran
        assert_eq!(rx.try_iter().count(), 50);
    }

    #[test]
    fn in_flight_accounting() {
        let pool = HelperPool::new(1);
        let (started_tx, started_rx) = unbounded::<()>();
        let (block_tx, block_rx) = unbounded::<()>();
        pool.submit(move || {
            started_tx.send(()).unwrap();
            let _ = block_rx.recv_timeout(Duration::from_secs(5));
        });
        // Deterministic handshake: the job itself tells us it is running.
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("job started");
        assert_eq!(pool.in_flight(), 1);
        block_tx.send(()).unwrap();
        while pool.in_flight() != 0 {
            std::thread::yield_now();
        }
        assert_eq!(pool.completed(), 1);
    }

    #[test]
    fn zero_thread_request_still_gets_one() {
        let pool = HelperPool::new(0);
        assert_eq!(pool.threads(), 1);
        pool.shutdown();
    }

    #[test]
    fn drop_joins_helpers() {
        let (tx, rx) = unbounded();
        {
            let pool = HelperPool::new(2);
            for _ in 0..5 {
                let tx = tx.clone();
                pool.submit(move || tx.send(()).unwrap());
            }
            // Dropped here; drop must join after draining.
        }
        assert_eq!(rx.try_iter().count(), 5);
    }
}
