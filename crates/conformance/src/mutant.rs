//! Deliberately broken service wrappers — the harness's own soundness
//! check.
//!
//! A conformance harness that never fires is indistinguishable from one
//! that checks nothing. The mutation tests inject a known legality bug
//! into the real service through these wrappers and assert the models
//! catch it, shrink it, and emit a replayable counterexample. Each
//! mutation is chosen to be *observable in the trace alphabet the models
//! check*: response bytes for HTTP, reply codes — and, for the
//! data-plane mutants, transfer payload bytes and completion ordering —
//! for FTP.

use std::io;
use std::sync::Arc;
use std::time::Duration;

use nserver_core::pipeline::{Action, ConnCtx, Service};
use nserver_core::tap::TraceLog;
use nserver_core::transport::{
    Interest, Listener, PollEvent, Poller, ReadOutcome, StreamIo, Waker,
};
use nserver_ftp::legacy::vfs::Vfs;
use nserver_ftp::{FtpCodec, FtpRequest, FtpService};
use nserver_http::{HttpCodec, Request, Response, Status};

use crate::explorer::FtpDataTapTarget;
use crate::ftp_model::FtpFixture;

/// Which HTTP legality bug to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpMutation {
    /// 404s are rewritten into fabricated 200s — the model's fixture
    /// lookup disagrees on both the status line and the body bytes.
    MissBecomesOk,
    /// The service claims `Connection: keep-alive` even when the
    /// exchange decided to close — the header bytes diverge, and so does
    /// everything the model refuses to expect after a close.
    DropConnectionClose,
}

/// An HTTP service with `mutation` injected into every response path,
/// including the deferred (cache-miss) ones.
pub struct MutantHttp<S> {
    inner: S,
    mutation: HttpMutation,
}

impl<S> MutantHttp<S> {
    pub fn new(inner: S, mutation: HttpMutation) -> Self {
        Self { inner, mutation }
    }
}

fn mutate_http(m: HttpMutation, resp: Response) -> Response {
    match m {
        HttpMutation::MissBecomesOk => {
            if resp.status != Status::NotFound {
                return resp;
            }
            let mut fake = Response::ok(
                Arc::new(b"<html>phantom page</html>".to_vec()),
                "text/html",
                resp.version,
            )
            .with_keep_alive(resp.keep_alive);
            if resp.head_only {
                fake = fake.head();
            }
            fake
        }
        HttpMutation::DropConnectionClose => resp.with_keep_alive(true),
    }
}

fn map_action<R: Send + 'static>(
    action: Action<R>,
    mutate: impl Fn(R) -> R + Send + 'static,
) -> Action<R> {
    match action {
        Action::Reply(r) => Action::Reply(mutate(r)),
        Action::ReplyClose(r) => Action::ReplyClose(mutate(r)),
        Action::Defer(job) => Action::Defer(Box::new(move || mutate(job()))),
        Action::DeferClose(job) => Action::DeferClose(Box::new(move || mutate(job()))),
        passthrough @ (Action::NoReply | Action::Close) => passthrough,
    }
}

impl<S: Service<HttpCodec>> Service<HttpCodec> for MutantHttp<S> {
    fn handle(&self, ctx: &ConnCtx, req: Request) -> Action<Response> {
        let m = self.mutation;
        map_action(self.inner.handle(ctx, req), move |r| mutate_http(m, r))
    }

    fn on_open(&self, ctx: &ConnCtx) -> Option<Response> {
        self.inner.on_open(ctx)
    }

    fn on_close(&self, ctx: &ConnCtx) {
        self.inner.on_close(ctx);
    }
}

/// Which FTP legality bug to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtpMutation {
    /// Every `530 Not logged in` becomes `230 Logged in` — an
    /// authentication bypass visible as a reply-code mismatch.
    LoginAlwaysSucceeds,
}

/// The real FTP service with `mutation` injected into every reply path.
pub struct MutantFtp {
    inner: FtpService,
    mutation: FtpMutation,
}

impl MutantFtp {
    pub fn new(inner: FtpService, mutation: FtpMutation) -> Self {
        Self { inner, mutation }
    }
}

fn mutate_ftp(m: FtpMutation, reply: String) -> String {
    match m {
        FtpMutation::LoginAlwaysSucceeds => {
            if let Some(rest) = reply.strip_prefix("530") {
                format!("230{rest}")
            } else {
                reply
            }
        }
    }
}

impl Service<FtpCodec> for MutantFtp {
    fn handle(&self, ctx: &ConnCtx, req: FtpRequest) -> Action<String> {
        let m = self.mutation;
        map_action(self.inner.handle(ctx, req), move |r| mutate_ftp(m, r))
    }

    fn on_open(&self, ctx: &ConnCtx) -> Option<String> {
        self.inner
            .on_open(ctx)
            .map(|r| mutate_ftp(self.mutation, r))
    }

    fn on_close(&self, ctx: &ConnCtx) {
        self.inner.on_close(ctx);
    }
}

impl FtpDataTapTarget for MutantFtp {
    fn attach_data_tap(&self, log: TraceLog) -> bool {
        self.inner.attach_data_tap(log);
        true
    }
}

/// The payload-corruption mutant: a real `FtpService` whose
/// `/pub/hello.txt` is silently truncated relative to the fixture the
/// model replicates. Every control reply is legal — the bug is only
/// observable in the data plane, where a `RETR` download's bytes
/// diverge from the model's byte-exact expected payload.
pub fn truncated_retr_service() -> FtpService {
    let vfs = Arc::new(Vfs::new());
    vfs.mkdir("/pub");
    vfs.write("/pub/hello.txt", b"hello".to_vec());
    FtpService::new(vfs, FtpFixture::users())
}

/// The completion-ordering mutant: transfers acknowledge `150` + `226`
/// *immediately*, while the actual data transfer keeps running on a
/// background thread — the completion reply reaches the control channel
/// before the data socket closes. Caught by the model's global-sequence
/// premature-completion check (or as a missing data trace when the
/// orphaned transfer never lands).
pub struct PrematureFtp {
    inner: FtpService,
}

impl PrematureFtp {
    pub fn new(inner: FtpService) -> Self {
        Self { inner }
    }
}

fn premature_map(action: Action<String>) -> Action<String> {
    match action {
        Action::Defer(job) => {
            std::thread::spawn(move || {
                // Let the eager reply win the race, then run the real
                // transfer so the data-plane client is still served.
                std::thread::sleep(Duration::from_millis(50));
                let _ = job();
            });
            Action::Reply("150 Opening data connection.\r\n226 Transfer complete.\r\n".into())
        }
        other => other,
    }
}

impl Service<FtpCodec> for PrematureFtp {
    fn handle(&self, ctx: &ConnCtx, req: FtpRequest) -> Action<String> {
        premature_map(self.inner.handle(ctx, req))
    }

    fn on_open(&self, ctx: &ConnCtx) -> Option<String> {
        self.inner.on_open(ctx)
    }

    fn on_close(&self, ctx: &ConnCtx) {
        self.inner.on_close(ctx);
    }
}

impl FtpDataTapTarget for PrematureFtp {
    fn attach_data_tap(&self, log: TraceLog) -> bool {
        self.inner.attach_data_tap(log);
        true
    }
}

/// The transport-level lingering-close mutant: every server-initiated
/// half-close (`shutdown_write`, the first step of a lingering close) is
/// rewritten into an immediate full close — the pre-lingering-close bug.
/// A server that hard-closes while pipelined request bytes sit unread in
/// its receive queue resets the connection, and the reset discards the
/// final response out of the client's receive queue. The server's own
/// trace stays perfect (the outbox is drained before any close), so this
/// mutant is observable only client-side, as an `rst-discarded-tail`
/// violation.
pub struct LingerlessListener<L> {
    inner: L,
}

impl<L> LingerlessListener<L> {
    pub fn new(inner: L) -> Self {
        Self { inner }
    }
}

/// Stream wrapper for [`LingerlessListener`]: delegates everything
/// except `shutdown_write`, which becomes a hard close.
pub struct LingerlessStream<S> {
    inner: S,
}

impl<S: StreamIo> StreamIo for LingerlessStream<S> {
    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<ReadOutcome> {
        self.inner.try_read(buf)
    }

    fn try_write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.inner.try_write(data)
    }

    fn peer_label(&self) -> String {
        self.inner.peer_label()
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }

    fn shutdown_write(&mut self) {
        // The bug under test: no FIN-first half-close, no linger — the
        // socket is torn down with whatever the peer pipelined unread.
        self.inner.shutdown();
    }
}

/// Poller wrapper for [`LingerlessListener`]: pure delegation.
pub struct LingerlessPoller<P> {
    inner: P,
}

impl<P: Poller> Poller for LingerlessPoller<P> {
    type Stream = LingerlessStream<P::Stream>;

    fn register(
        &mut self,
        token: u64,
        stream: &Self::Stream,
        interest: Interest,
    ) -> io::Result<()> {
        self.inner.register(token, &stream.inner, interest)
    }

    fn reregister(
        &mut self,
        token: u64,
        stream: &Self::Stream,
        interest: Interest,
    ) -> io::Result<()> {
        self.inner.reregister(token, &stream.inner, interest)
    }

    fn deregister(&mut self, token: u64, stream: &Self::Stream) -> io::Result<()> {
        self.inner.deregister(token, &stream.inner)
    }

    fn wait(&mut self, events: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.wait(events, timeout)
    }

    fn waker(&self) -> Waker {
        self.inner.waker()
    }
}

impl<L: Listener> Listener for LingerlessListener<L> {
    type Stream = LingerlessStream<L::Stream>;
    type Poller = LingerlessPoller<L::Poller>;

    fn try_accept(&mut self) -> io::Result<Option<Self::Stream>> {
        Ok(self
            .inner
            .try_accept()?
            .map(|s| LingerlessStream { inner: s }))
    }

    fn local_label(&self) -> String {
        self.inner.local_label()
    }

    fn new_poller() -> io::Result<Self::Poller> {
        Ok(LingerlessPoller {
            inner: L::new_poller()?,
        })
    }

    fn register_listener(&self, poller: &mut Self::Poller) -> io::Result<()> {
        self.inner.register_listener(&mut poller.inner)
    }

    fn deregister_listener(&self, poller: &mut Self::Poller) -> io::Result<()> {
        self.inner.deregister_listener(&mut poller.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nserver_http::Version;

    #[test]
    fn miss_becomes_ok_preserves_framing_decisions() {
        let resp = Response::error(Status::NotFound, Version::Http11)
            .with_keep_alive(false)
            .head();
        let mutated = mutate_http(HttpMutation::MissBecomesOk, resp);
        assert_eq!(mutated.status, Status::Ok);
        assert!(!mutated.keep_alive, "close decision must survive");
        assert!(mutated.head_only, "HEAD suppression must survive");
        let ok = Response::ok(Arc::new(vec![]), "text/plain", Version::Http11);
        assert_eq!(
            mutate_http(HttpMutation::MissBecomesOk, ok).status,
            Status::Ok,
            "non-404s pass through"
        );
    }

    #[test]
    fn drop_connection_close_lies_in_the_header() {
        let resp = Response::error(Status::Forbidden, Version::Http11).with_keep_alive(false);
        assert!(mutate_http(HttpMutation::DropConnectionClose, resp).keep_alive);
    }

    #[test]
    fn premature_map_replies_before_the_deferred_job_runs() {
        let ran = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        let job = Box::new(move || {
            flag.store(true, std::sync::atomic::Ordering::SeqCst);
            "226 Transfer complete.\r\n".to_string()
        });
        match premature_map(Action::Defer(job)) {
            Action::Reply(r) => {
                assert!(r.starts_with("150 "), "eager completion reply: {r}");
                assert!(r.contains("\r\n226 "), "both blocks in one write");
            }
            _ => panic!("Defer must become an immediate Reply"),
        }
        // The real job still runs (on the background thread).
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !ran.load(std::sync::atomic::Ordering::SeqCst) {
            assert!(std::time::Instant::now() < deadline, "job never ran");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn truncated_service_disagrees_with_the_fixture() {
        let svc = truncated_retr_service();
        drop(svc); // constructible; the divergence itself is proven
                   // end-to-end by tests/mutation.rs
        let fixture = FtpFixture::vfs();
        assert_eq!(&fixture.read("/pub/hello.txt").unwrap()[..], b"hello ftp");
    }

    #[test]
    fn lingerless_shutdown_write_is_a_hard_close() {
        use nserver_core::transport::mem;
        let (a, mut client) = mem::pair("srv", "cli");
        let mut srv = LingerlessStream { inner: a };
        client.try_write(b"GET /tail HTTP/1.1\r\n\r\n").unwrap();
        srv.try_write(b"HTTP/1.1 200 OK\r\n\r\n").unwrap();
        // The mutant turns the lingering close's FIN into a full close;
        // the unread pipelined request makes that an RST, which discards
        // the response out of the client's receive queue.
        srv.shutdown_write();
        let mut buf = [0u8; 64];
        assert_eq!(
            client.try_read(&mut buf).unwrap(),
            ReadOutcome::Closed,
            "RST must discard the undelivered response tail"
        );
    }

    #[test]
    fn login_bypass_rewrites_only_530() {
        let m = FtpMutation::LoginAlwaysSucceeds;
        assert_eq!(
            mutate_ftp(m, "530 Not logged in.\r\n".into()),
            "230 Not logged in.\r\n"
        );
        assert_eq!(mutate_ftp(m, "221 Bye.\r\n".into()), "221 Bye.\r\n");
    }
}
