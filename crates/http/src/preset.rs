//! The COPS-HTTP columns of the paper's Table 1, as option presets.
//!
//! Base configuration (throughput/fairness experiments): one dispatcher,
//! separate pool, encode/decode, **asynchronous** completions, **static**
//! thread allocation, **LRU file cache (20 MB)**, no idle shutdown, no
//! scheduling, no overload control, production mode, no profiling, no
//! logging. The second experiment enables O8; the third enables O9 with
//! watermarks 20/5.

use nserver_cache::PolicyKind;
use nserver_core::options::{
    CompletionMode, DispatcherThreads, EventScheduling, FileCacheOption, Mode, OverloadControl,
    ServerOptions, StageDeadlines, ThreadAllocation,
};

/// Cache capacity the paper configures: "The file cache of COPS-HTTP is
/// limited to 20 MB".
pub const COPS_HTTP_CACHE_BYTES: u64 = 20 * 1024 * 1024;

/// Table 1's COPS-HTTP column (first experiment).
pub fn cops_http_options() -> ServerOptions {
    ServerOptions {
        dispatcher_threads: DispatcherThreads::Single,
        separate_handler_pool: true,
        encode_decode: true,
        completion_mode: CompletionMode::Asynchronous,
        thread_allocation: ThreadAllocation::Static { threads: 4 },
        file_cache: FileCacheOption::Yes {
            policy: PolicyKind::Lru,
            capacity_bytes: COPS_HTTP_CACHE_BYTES,
        },
        idle_shutdown_ms: None,
        event_scheduling: EventScheduling::No,
        overload_control: OverloadControl::No,
        mode: Mode::Production,
        profiling: false,
        logging: false,
        stage_deadlines: StageDeadlines::NONE,
    }
}

/// Second experiment: event scheduling on (differentiated service). The
/// quota pair is the experiment's `x/y` ratio — `portal_quota` is the
/// high-priority (level 0) quota, `homepage_quota` level 1. The cache is
/// disabled, as in the paper ("the file caching capability is disabled to
/// make the workload heavier").
pub fn cops_http_scheduling_options(homepage_quota: u32, portal_quota: u32) -> ServerOptions {
    ServerOptions {
        event_scheduling: EventScheduling::Yes {
            quotas: vec![portal_quota, homepage_quota],
        },
        file_cache: FileCacheOption::No,
        ..cops_http_options()
    }
}

/// Third experiment: automatic overload control with the paper's
/// watermarks ("The high watermark and low watermark for the Reactive
/// Event Processor queue length are set to 20 and 5 respectively").
pub fn cops_http_overload_options() -> ServerOptions {
    ServerOptions {
        overload_control: OverloadControl::Watermark { high: 20, low: 5 },
        ..cops_http_options()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_preset_matches_table1_column() {
        let o = cops_http_options();
        o.validate().unwrap();
        let rows = o.describe();
        let value = |prefix: &str| {
            rows.iter()
                .find(|(name, _)| name.starts_with(prefix))
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(value("O1"), "1");
        assert_eq!(value("O2"), "Yes");
        assert_eq!(value("O3"), "Yes");
        assert_eq!(value("O4"), "Asynchronous");
        assert_eq!(value("O5"), "Static");
        assert_eq!(value("O6"), "Yes: LRU");
        assert_eq!(value("O7"), "No");
        assert_eq!(value("O8"), "No");
        assert_eq!(value("O9"), "No");
        assert_eq!(value("O10"), "Production");
        assert_eq!(value("O11"), "No");
        assert_eq!(value("O12"), "No");
    }

    #[test]
    fn scheduling_preset_flips_o8_and_disables_cache() {
        let o = cops_http_scheduling_options(1, 10);
        o.validate().unwrap();
        match &o.event_scheduling {
            EventScheduling::Yes { quotas } => assert_eq!(quotas, &vec![10, 1]),
            _ => panic!("O8 should be on"),
        }
        assert_eq!(o.file_cache, FileCacheOption::No);
    }

    #[test]
    fn overload_preset_uses_paper_watermarks() {
        let o = cops_http_overload_options();
        o.validate().unwrap();
        assert_eq!(
            o.overload_control,
            OverloadControl::Watermark { high: 20, low: 5 }
        );
    }

    #[test]
    fn cache_capacity_is_20mb() {
        assert_eq!(COPS_HTTP_CACHE_BYTES, 20_971_520);
    }
}
