//! Ablation for option O6: operation cost and achieved hit rate of the
//! five cache replacement policies on a Zipf-popular trace.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nserver_cache::{FileCache, PolicyKind};
use nserver_netsim::SimRng;
use nserver_specweb::Zipf;

fn trace(n: usize) -> Vec<(u64, usize)> {
    let zipf = Zipf::new(500, 1.0);
    let mut rng = SimRng::new(42);
    (0..n)
        .map(|_| {
            let key = zipf.sample_with(rng.next_f64()) as u64;
            let size = 256 + (key % 16) as usize * 512;
            (key, size)
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let ops = trace(10_000);
    let mut g = c.benchmark_group("cache_policies");
    for kind in PolicyKind::all() {
        g.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut cache: FileCache<u64> = FileCache::new(512 * 1024, kind);
                for &(key, size) in &ops {
                    if cache.get(&key).is_none() {
                        cache.insert(key, Arc::new(vec![0u8; size]));
                    }
                }
                black_box(cache.stats().hit_rate())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
