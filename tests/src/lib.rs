//! Integration-test support crate.
