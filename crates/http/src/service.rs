//! The Handle Request hook for COPS-HTTP: static file serving through the
//! transparent file cache.
//!
//! The flow mirrors the paper's generated server: a cache hit replies
//! immediately from memory; a miss issues an (emulated) non-blocking file
//! read via `Action::Defer`, which the framework routes to the Proactor
//! helper pool under O4 = Asynchronous. The cache itself is the O6
//! machinery from `nserver-cache`, with LRU enforced for COPS-HTTP.

use std::sync::Arc;

use nserver_cache::SharedFileCache;
use nserver_core::pipeline::{Action, ConnCtx, Service};

use crate::codec::HttpCodec;
use crate::types::{mime_for, Method, Request, Response, Status};

/// Where file bytes come from on a cache miss.
pub trait ContentStore: Send + Sync + 'static {
    /// Load a file's bytes by URL path, or `None` if it does not exist.
    fn load(&self, path: &str) -> Option<Arc<Vec<u8>>>;
}

/// A directory-backed store (the production backend).
pub struct DiskStore {
    root: std::path::PathBuf,
}

impl DiskStore {
    /// Serve files under `root`.
    pub fn new(root: impl Into<std::path::PathBuf>) -> Self {
        Self { root: root.into() }
    }
}

impl ContentStore for DiskStore {
    fn load(&self, path: &str) -> Option<Arc<Vec<u8>>> {
        let rel = path.trim_start_matches('/');
        let full = self.root.join(rel);
        std::fs::read(full).ok().map(Arc::new)
    }
}

/// An in-memory store (tests and benchmarks).
#[derive(Default)]
pub struct MemStore {
    files: std::collections::HashMap<String, Arc<Vec<u8>>>,
}

impl MemStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a file.
    pub fn insert(&mut self, path: impl Into<String>, data: Vec<u8>) {
        self.files.insert(path.into(), Arc::new(data));
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

impl ContentStore for MemStore {
    fn load(&self, path: &str) -> Option<Arc<Vec<u8>>> {
        // Emulate disk latency? No — the Proactor pool provides the
        // blocking context; tests keep this instantaneous.
        self.files.get(path).cloned()
    }
}

/// The COPS-HTTP application service: static files with optional cache.
pub struct StaticFileService<St: ContentStore> {
    store: Arc<St>,
    cache: Option<SharedFileCache<String>>,
    /// Artificial per-miss disk latency (emulates slow disk in tests).
    miss_latency_ms: u64,
    /// Coalesce concurrent misses for one path into a single store load
    /// (single flight). On by default; benchmarks disable it to measure
    /// the thundering-herd baseline.
    coalesce_misses: bool,
}

impl<St: ContentStore> StaticFileService<St> {
    /// Serve from `store`, optionally through a cache (template option O6).
    pub fn new(store: St, cache: Option<SharedFileCache<String>>) -> Self {
        Self {
            store: Arc::new(store),
            cache,
            miss_latency_ms: 0,
            coalesce_misses: true,
        }
    }

    /// Add artificial latency to cache misses (testing aid).
    pub fn with_miss_latency_ms(mut self, ms: u64) -> Self {
        self.miss_latency_ms = ms;
        self
    }

    /// Disable single-flight miss coalescing: every concurrent miss does
    /// its own store load (the pre-coalescing behavior, kept for
    /// benchmark comparison).
    pub fn without_miss_coalescing(mut self) -> Self {
        self.coalesce_misses = false;
        self
    }

    /// The cache handle, if caching is enabled.
    pub fn cache(&self) -> Option<&SharedFileCache<String>> {
        self.cache.as_ref()
    }

    /// Validate and normalize a request target into a served path.
    ///
    /// Percent-escapes are decoded *before* any check, so `%2e%2e%2f`
    /// cannot smuggle a traversal past a textual `..` scan. Rejected:
    /// malformed escapes, embedded NUL, non-`/`-rooted targets, and any
    /// path *segment* equal to `.` or `..` — but only whole segments, so
    /// legitimate names like `/a..b.txt` are served.
    fn sanitize(target: &str) -> Option<String> {
        // Strip a query string before decoding: a `?` inside the path
        // would otherwise need escaping anyway.
        let raw = target.split('?').next().unwrap_or(target);
        let path = percent_decode(raw)?;
        if path.contains('\0') {
            return None;
        }
        if !path.starts_with('/') {
            return None;
        }
        if path.split('/').any(|seg| seg == ".." || seg == ".") {
            return None;
        }
        Some(path)
    }
}

/// Decode `%XX` escapes; `None` on malformed or non-UTF-8 sequences.
fn percent_decode(s: &str) -> Option<String> {
    if !s.contains('%') {
        return Some(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hi = hex_val(*bytes.get(i + 1)?)?;
            let lo = hex_val(*bytes.get(i + 2)?)?;
            out.push(hi << 4 | lo);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

impl<St: ContentStore> Service<HttpCodec> for StaticFileService<St> {
    fn handle(&self, _ctx: &ConnCtx, req: Request) -> Action<Response> {
        let keep_alive = req.keep_alive();
        let head = req_is_head(&req);
        let version = req.version;
        let respond = move |resp: Response| {
            let resp = resp.with_keep_alive(keep_alive);
            let resp = if head { resp.head() } else { resp };
            if keep_alive {
                Action::Reply(resp)
            } else {
                Action::ReplyClose(resp)
            }
        };

        let path = match Self::sanitize(&req.target) {
            Some(p) => p,
            None => return respond(Response::error(Status::Forbidden, version)),
        };

        // Cache hit: reply without any blocking operation.
        if let Some(cache) = &self.cache {
            if let Some(data) = cache.get(&path) {
                return respond(Response::ok(data, mime_for(&path), req.version));
            }
        }

        // Cache miss (or no cache): the file read is a blocking operation —
        // defer it so the event loop never blocks (Proactor emulation).
        let store = Arc::clone(&self.store);
        let cache = self.cache.clone();
        let coalesce = self.coalesce_misses;
        let miss_latency = self.miss_latency_ms;
        let path2 = path.clone();
        let job = move || {
            let fetch = || {
                if miss_latency > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(miss_latency));
                }
                store.load(&path2)
            };
            // Single flight: when a thundering herd misses the same path,
            // the first helper thread does the disk read; the rest wait
            // on it and share the resulting `Arc`.
            let data = match &cache {
                Some(cache) if coalesce => cache.get_or_load(path2.clone(), fetch),
                Some(cache) => {
                    let data = fetch();
                    if let Some(data) = &data {
                        cache.insert(path2.clone(), Arc::clone(data));
                    }
                    data
                }
                None => fetch(),
            };
            let resp = match data {
                Some(data) => Response::ok(data, mime_for(&path2), version).with_keep_alive(true),
                // The 404 must honor HEAD too: promising a Content-Length
                // and then sending the error body desynchronizes a
                // pipelining client's framing.
                None => Response::error(Status::NotFound, version),
            };
            if head {
                resp.head()
            } else {
                resp
            }
        };
        // Keep-alive decision applies to deferred replies too.
        if keep_alive {
            Action::Defer(Box::new(move || job().with_keep_alive(true)))
        } else {
            Action::DeferClose(Box::new(move || job().with_keep_alive(false)))
        }
    }
}

fn req_is_head(req: &Request) -> bool {
    req.method == Method::Head
}

/// Adapt the O6 file cache into a diagnostics cache-stats provider, for
/// [`DiagHub::set_cache_provider`](nserver_core::diag::DiagHub): its
/// hit/miss/eviction/rejection counters, single-flight coalesced waits,
/// and byte occupancy appear in `/server-status` and every snapshot.
pub fn cache_stats_provider(
    cache: SharedFileCache<String>,
) -> nserver_core::diag::CacheStatsProvider {
    Arc::new(move || {
        let s = cache.stats();
        nserver_core::metrics::CacheSample {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            rejected: s.rejected,
            coalesced_waits: cache.coalesced_waits(),
            used_bytes: cache.used_bytes(),
            capacity_bytes: cache.capacity_bytes(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Headers, Version};
    use nserver_cache::{FileCache, PolicyKind};
    use nserver_core::event::Priority;

    fn ctx() -> ConnCtx {
        ConnCtx {
            id: 1,
            peer: "test".into(),
            priority: Priority::HIGHEST,
        }
    }

    fn get(target: &str) -> Request {
        Request {
            method: Method::Get,
            target: target.into(),
            version: Version::Http11,
            headers: Headers::new(),
        }
    }

    fn store() -> MemStore {
        let mut s = MemStore::new();
        s.insert("/index.html", b"<html>home</html>".to_vec());
        s.insert("/big.bin", vec![7u8; 4096]);
        s
    }

    fn run_action(action: Action<Response>) -> (Response, bool) {
        match action {
            Action::Reply(r) => (r, false),
            Action::ReplyClose(r) => (r, true),
            Action::Defer(job) => (job(), false),
            Action::DeferClose(job) => (job(), true),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn serves_file_via_deferred_read_then_cache_hit() {
        // The sharded handle is the production configuration; aggregate
        // stats must look exactly like the single-lock cache's.
        let cache =
            SharedFileCache::sharded(1 << 20, PolicyKind::Lru, nserver_cache::DEFAULT_SHARDS);
        let svc = StaticFileService::new(store(), Some(cache.clone()));
        // First access: miss -> Defer.
        let action = svc.handle(&ctx(), get("/index.html"));
        assert!(matches!(action, Action::Defer(_)));
        let (resp, _) = run_action(action);
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(&**resp.body, b"<html>home</html>");
        // Second access: hit -> immediate Reply.
        let action = svc.handle(&ctx(), get("/index.html"));
        assert!(matches!(action, Action::Reply(_)));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn missing_file_is_404() {
        let svc = StaticFileService::new(store(), None);
        let (resp, _) = run_action(svc.handle(&ctx(), get("/nope.html")));
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn path_traversal_is_forbidden() {
        let svc = StaticFileService::new(store(), None);
        let (resp, _) = run_action(svc.handle(&ctx(), get("/../etc/passwd")));
        assert_eq!(resp.status, Status::Forbidden);
    }

    #[test]
    fn encoded_traversal_is_forbidden() {
        // Regression: the traversal check used to run on the raw target,
        // so percent-encoded dots and slashes sailed through to the store.
        let svc = StaticFileService::new(store(), None);
        for target in [
            "/%2e%2e/etc/passwd",
            "/%2E%2E/etc/passwd",
            "/a/%2e%2e/%2e%2e/etc/passwd",
            "/..%2fetc%2fpasswd",
            "/%2e%2e%2fetc%2fpasswd",
        ] {
            let (resp, _) = run_action(svc.handle(&ctx(), get(target)));
            assert_eq!(resp.status, Status::Forbidden, "accepted {target}");
        }
    }

    #[test]
    fn malformed_escapes_and_nul_are_forbidden() {
        let svc = StaticFileService::new(store(), None);
        for target in ["/%zz.html", "/%2", "/file%00.html", "/%ff%fe"] {
            let (resp, _) = run_action(svc.handle(&ctx(), get(target)));
            assert_eq!(resp.status, Status::Forbidden, "accepted {target}");
        }
    }

    #[test]
    fn dotted_filenames_are_served_not_forbidden() {
        // Regression: the substring `..` check 403'd any name containing
        // two dots; only whole `..` segments are traversal.
        let mut s = MemStore::new();
        s.insert("/a..b.txt", b"dots are fine".to_vec());
        let svc = StaticFileService::new(s, None);
        let (resp, _) = run_action(svc.handle(&ctx(), get("/a..b.txt")));
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(&**resp.body, b"dots are fine");
    }

    #[test]
    fn encoded_benign_names_decode_before_lookup() {
        let mut s = MemStore::new();
        s.insert("/hello world.txt", b"spaced".to_vec());
        let svc = StaticFileService::new(s, None);
        let (resp, _) = run_action(svc.handle(&ctx(), get("/hello%20world.txt")));
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(&**resp.body, b"spaced");
    }

    /// A store that counts every load (single-flight observability).
    struct CountingStore {
        inner: MemStore,
        loads: std::sync::atomic::AtomicUsize,
    }

    impl ContentStore for Arc<CountingStore> {
        fn load(&self, path: &str) -> Option<Arc<Vec<u8>>> {
            self.loads.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.inner.load(path)
        }
    }

    #[test]
    fn concurrent_misses_issue_exactly_one_store_load() {
        use std::sync::Barrier;
        use std::thread;

        let counting = Arc::new(CountingStore {
            inner: store(),
            loads: std::sync::atomic::AtomicUsize::new(0),
        });
        let cache =
            SharedFileCache::sharded(1 << 20, PolicyKind::Lru, nserver_cache::DEFAULT_SHARDS);
        let svc = Arc::new(
            StaticFileService::new(Arc::clone(&counting), Some(cache)).with_miss_latency_ms(20),
        );
        // All 8 workers observe the miss before any deferred job runs —
        // the thundering-herd shape the dispatcher produces.
        let jobs: Vec<_> = (0..8)
            .map(|_| match svc.handle(&ctx(), get("/big.bin")) {
                Action::Defer(job) => job,
                other => panic!("expected Defer, got {other:?}"),
            })
            .collect();
        let barrier = Arc::new(Barrier::new(jobs.len()));
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|job| {
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait();
                    job()
                })
            })
            .collect();
        let responses: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            counting.loads.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "8 racing misses must coalesce into one store load"
        );
        for resp in &responses {
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(resp.body.len(), 4096);
            assert!(
                Arc::ptr_eq(&resp.body, &responses[0].body),
                "the herd shares one body allocation"
            );
        }
    }

    #[test]
    fn without_coalescing_every_miss_loads() {
        let counting = Arc::new(CountingStore {
            inner: store(),
            loads: std::sync::atomic::AtomicUsize::new(0),
        });
        let cache =
            SharedFileCache::sharded(1 << 20, PolicyKind::Lru, nserver_cache::DEFAULT_SHARDS);
        let svc =
            StaticFileService::new(Arc::clone(&counting), Some(cache)).without_miss_coalescing();
        let jobs: Vec<_> = (0..4)
            .map(|_| match svc.handle(&ctx(), get("/big.bin")) {
                Action::Defer(job) => job,
                other => panic!("expected Defer, got {other:?}"),
            })
            .collect();
        for job in jobs {
            job();
        }
        assert_eq!(
            counting.loads.load(std::sync::atomic::Ordering::SeqCst),
            4,
            "the opt-out path preserves one load per miss"
        );
    }

    #[test]
    fn query_strings_are_stripped() {
        let svc = StaticFileService::new(store(), None);
        let (resp, _) = run_action(svc.handle(&ctx(), get("/index.html?v=2")));
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn connection_close_requests_reply_close() {
        let svc = StaticFileService::new(store(), None);
        let mut headers = Headers::new();
        headers.push("Connection", "close");
        let req = Request {
            method: Method::Get,
            target: "/index.html".into(),
            version: Version::Http11,
            headers,
        };
        let action = svc.handle(&ctx(), req);
        let (resp, closed) = run_action(action);
        assert!(closed);
        assert!(!resp.keep_alive);
    }

    #[test]
    fn head_requests_mark_head_only() {
        let svc = StaticFileService::new(store(), None);
        let req = Request {
            method: Method::Head,
            target: "/index.html".into(),
            version: Version::Http11,
            headers: Headers::new(),
        };
        let (resp, _) = run_action(svc.handle(&ctx(), req));
        assert!(resp.head_only);
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn head_for_missing_file_is_404_without_body() {
        // Regression: the deferred-miss path applied `.head()` only to the
        // 200 arm, so `HEAD /missing` answered 404 with the error body —
        // desynchronizing any pipelined request behind it.
        let svc = StaticFileService::new(store(), None);
        let req = Request {
            method: Method::Head,
            target: "/nope.html".into(),
            version: Version::Http11,
            headers: Headers::new(),
        };
        let (resp, _) = run_action(svc.handle(&ctx(), req));
        assert_eq!(resp.status, Status::NotFound);
        assert!(resp.head_only, "HEAD 404 must not carry a body");
    }

    #[test]
    fn mime_type_follows_extension() {
        let svc = StaticFileService::new(store(), None);
        let (resp, _) = run_action(svc.handle(&ctx(), get("/index.html")));
        assert_eq!(resp.headers.get("content-type"), Some("text/html"));
        let (resp, _) = run_action(svc.handle(&ctx(), get("/big.bin")));
        assert_eq!(
            resp.headers.get("content-type"),
            Some("application/octet-stream")
        );
    }

    #[test]
    fn disk_store_reads_real_files() {
        let dir = std::env::temp_dir().join(format!("nserver-http-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("f.txt"), b"disk bytes").unwrap();
        let store = DiskStore::new(&dir);
        assert_eq!(&**store.load("/f.txt").unwrap(), b"disk bytes");
        assert!(store.load("/missing").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_stats_provider_reports_live_counters() {
        let cache =
            SharedFileCache::sharded(1 << 20, PolicyKind::Lru, nserver_cache::DEFAULT_SHARDS);
        let svc = StaticFileService::new(store(), Some(cache.clone()));
        let provider = cache_stats_provider(cache);
        let (_, _) = run_action(svc.handle(&ctx(), get("/index.html"))); // miss
        let (_, _) = run_action(svc.handle(&ctx(), get("/index.html"))); // hit
        let sample = provider();
        assert_eq!(sample.hits, 1);
        assert!(sample.misses >= 1);
        assert!(sample.used_bytes > 0);
        assert_eq!(sample.capacity_bytes, 1 << 20);
    }

    #[test]
    fn cache_capacity_limits_residency() {
        let cache = SharedFileCache::new(FileCache::new(4096, PolicyKind::Lru));
        let svc = StaticFileService::new(store(), Some(cache.clone()));
        let (_, _) = run_action(svc.handle(&ctx(), get("/big.bin"))); // 4096 bytes fills it
        let (_, _) = run_action(svc.handle(&ctx(), get("/index.html")));
        assert!(cache.used_bytes() <= 4096);
    }
}
