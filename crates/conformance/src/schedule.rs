//! Adversarial run descriptions: seeded generation, a text wire format
//! for counterexample artifacts, and interleaving enumeration.
//!
//! A [`Schedule`] is everything needed to reproduce one exploration run
//! bit-for-bit: the fault plan, each client's byte script split into
//! segments, and the global delivery order. Generation is a pure function
//! of `(proto, seed)` via [`nserver_netsim::SimRng`], so CI failures
//! replay anywhere from the seed alone, and shrunken counterexamples
//! serialize to a format stable enough to check into `corpus/`.

use nserver_core::fault::FaultPlan;
use nserver_netsim::SimRng;

/// Which protocol stack a schedule drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// COPS-HTTP: static file service over the HTTP/1.1 subset.
    Http,
    /// COPS-FTP: the control-channel command state machine.
    Ftp,
}

impl Proto {
    fn name(self) -> &'static str {
        match self {
            Proto::Http => "http",
            Proto::Ftp => "ftp",
        }
    }
}

/// How the driver services one data (PASV) connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataOpKind {
    /// Connect and drain to EOF (LIST / RETR downloads).
    Read,
    /// Connect, send the payload, close (STOR uploads).
    Write,
}

impl DataOpKind {
    fn name(self) -> &'static str {
        match self {
            DataOpKind::Read => "read",
            DataOpKind::Write => "write",
        }
    }
}

/// One planned data-connection operation. The driver consumes these in
/// order, one per `227 Entering Passive Mode` reply it observes on the
/// owning control connection, and opens a real TCP connection to the
/// announced port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataOp {
    /// What the client does on the data socket.
    pub kind: DataOpKind,
    /// Upload payload (`Write` only; empty for `Read`).
    pub payload: Vec<u8>,
    /// Abort the data connection (abrupt close mid-stream, with bytes
    /// still in flight) after transferring at most this many bytes.
    /// `None` runs the transfer to completion.
    pub abort_after: Option<usize>,
}

/// One client connection's script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnScript {
    /// Byte segments, delivered one per scheduled step, in order.
    pub segments: Vec<Vec<u8>>,
    /// Abruptly close the connection right after the last segment, without
    /// waiting for responses — the early-close/pipelining hazard.
    pub close_early: bool,
    /// Planned data-connection operations, consumed one per observed 227
    /// reply. Every PASV the generator emits gets exactly one op (even
    /// transfers expected to fail before accepting, where the op's socket
    /// just sees a reset).
    pub data_ops: Vec<DataOp>,
}

impl ConnScript {
    /// All script bytes, concatenated.
    pub fn bytes(&self) -> Vec<u8> {
        self.segments.concat()
    }

    /// True when some planned data op aborts its socket mid-transfer —
    /// the conn's data-plane outcomes are then nondeterministic and the
    /// checker must tolerate 425s and truncated payloads.
    pub fn has_abort(&self) -> bool {
        self.data_ops.iter().any(|d| d.abort_after.is_some())
    }
}

/// One delivery step in the global interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Which connection's next segment to deliver.
    pub conn: usize,
    /// Milliseconds to sleep after delivering it.
    pub pause_ms: u64,
}

/// A complete, replayable exploration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Protocol under test.
    pub proto: Proto,
    /// Generation seed (0 for hand-written corpus schedules).
    pub seed: u64,
    /// Transport fault plan applied server-side.
    pub plan: FaultPlan,
    /// Per-connection scripts; index = connect order.
    pub conns: Vec<ConnScript>,
    /// Interleaved delivery order; each conn appears exactly
    /// `segments.len()` times.
    pub order: Vec<Step>,
}

/// Generate the schedule for `(proto, seed)`.
pub fn generate(proto: Proto, seed: u64) -> Schedule {
    match proto {
        Proto::Http => generate_http(seed),
        Proto::Ftp => generate_ftp(seed),
    }
}

/// Draw a fault plan. Roughly a third of seeds are fault-free so the
/// strict (byte-equal) arm of the models stays exercised.
fn gen_plan(rng: &mut SimRng) -> FaultPlan {
    let mut plan = FaultPlan::new(rng.next_u64());
    if rng.chance(0.65) {
        plan.reset_per_mille = [0, 120, 250][rng.below(3) as usize];
        plan.storm_per_mille = [0, 120][rng.below(2) as usize];
        plan.short_io_per_mille = [0, 150][rng.below(2) as usize];
        plan.corrupt_per_mille = [0, 100][rng.below(2) as usize];
        plan.stall_per_mille = [0, 80][rng.below(2) as usize];
        if rng.chance(0.2) {
            plan.accept_fail_every = rng.range(2, 5) as u32;
        }
    }
    plan
}

/// Split `bytes` into 1–4 non-empty segments at seeded cut points.
fn split_segments(rng: &mut SimRng, bytes: Vec<u8>) -> Vec<Vec<u8>> {
    if bytes.len() < 2 {
        return vec![bytes];
    }
    let nsegs = rng.range(1, 4.min(bytes.len() as u64)) as usize;
    let mut cuts = std::collections::BTreeSet::new();
    while cuts.len() < nsegs - 1 {
        cuts.insert(rng.range(1, bytes.len() as u64 - 1) as usize);
    }
    let mut segs = Vec::with_capacity(nsegs);
    let mut prev = 0;
    for cut in cuts.into_iter().chain(std::iter::once(bytes.len())) {
        segs.push(bytes[prev..cut].to_vec());
        prev = cut;
    }
    segs
}

/// Interleave the connections' segments into a global order, preserving
/// each connection's own segment order.
fn gen_order(rng: &mut SimRng, conns: &[ConnScript]) -> Vec<Step> {
    let mut remaining: Vec<usize> = conns.iter().map(|c| c.segments.len()).collect();
    let mut total: usize = remaining.iter().sum();
    let mut order = Vec::with_capacity(total);
    while total > 0 {
        let mut pick = rng.below(total as u64) as usize;
        let conn = remaining
            .iter()
            .position(|&r| {
                if pick < r {
                    true
                } else {
                    pick -= r;
                    false
                }
            })
            .expect("non-empty remaining");
        remaining[conn] -= 1;
        total -= 1;
        order.push(Step {
            conn,
            pause_ms: rng.below(3),
        });
    }
    order
}

fn generate_http(seed: u64) -> Schedule {
    let mut rng = SimRng::new(seed ^ 0x4854_5450); // "HTTP"
    let plan = gen_plan(&mut rng);
    let nconns = rng.range(1, 4) as usize;
    let mut conns = Vec::with_capacity(nconns);
    for _ in 0..nconns {
        let nreqs = rng.range(1, 4);
        let mut bytes = Vec::new();
        for r in 0..nreqs {
            let method = if rng.chance(0.25) { "HEAD" } else { "GET" };
            let target = [
                "/index.html",
                "/big.bin",
                "/missing.html",
                "/hello%20world.txt",
                "/%2e%2e/secret",
                "/index.html?q=1",
                "/%zz",
            ][rng.below(7) as usize];
            let http10 = rng.chance(0.15);
            let version = if http10 { "HTTP/1.0" } else { "HTTP/1.1" };
            let last = r + 1 == nreqs;
            // Mid-stream requests stay keep-alive most of the time so
            // pipelines actually form; a late `Connection: close` (or a
            // bare 1.0 request) tests that the server stops serving the
            // rest of the pipeline.
            let connection = if http10 {
                if !last && rng.chance(0.8) {
                    Some("keep-alive")
                } else {
                    None
                }
            } else if rng.chance(if last { 0.4 } else { 0.1 }) {
                Some("close")
            } else {
                None
            };
            bytes.extend_from_slice(
                format!("{method} {target} {version}\r\nHost: conformance\r\n").as_bytes(),
            );
            if let Some(c) = connection {
                bytes.extend_from_slice(format!("Connection: {c}\r\n").as_bytes());
            }
            bytes.extend_from_slice(b"\r\n");
        }
        let segments = split_segments(&mut rng, bytes);
        conns.push(ConnScript {
            segments,
            close_early: rng.chance(0.2),
            data_ops: Vec::new(),
        });
    }
    let order = gen_order(&mut rng, &conns);
    Schedule {
        proto: Proto::Http,
        seed,
        plan,
        conns,
        order,
    }
}

/// Draw a seeded STOR payload (small, byte-diverse).
fn gen_payload(rng: &mut SimRng) -> Vec<u8> {
    let len = rng.range(1, 600) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Maybe abort this data op mid-transfer (~15% of ops).
fn gen_abort(rng: &mut SimRng) -> Option<usize> {
    rng.chance(0.15).then(|| rng.below(64) as usize)
}

fn generate_ftp(seed: u64) -> Schedule {
    let mut rng = SimRng::new(seed ^ 0x46_5450); // "FTP"
    let plan = gen_plan(&mut rng);
    let nconns = rng.range(1, 3) as usize;
    let mut conns = Vec::with_capacity(nconns);
    for ci in 0..nconns {
        let ncmds = rng.range(2, 8);
        let mut lines: Vec<String> = Vec::new();
        let mut data_ops: Vec<DataOp> = Vec::new();
        // Most connections log in up front: transfers only run on a
        // logged-in session, and without this bias almost every scripted
        // PASV dies pre-login at the 530 gate, leaving the data plane
        // unexercised. The uniform tail below still covers failed and
        // repeated logins.
        if rng.chance(0.7) {
            if rng.chance(0.5) {
                lines.push("USER anonymous".to_string());
                lines.push("PASS guest".to_string());
            } else {
                lines.push("USER alice".to_string());
                lines.push("PASS secret".to_string());
            }
        }
        for j in 0..ncmds {
            // Paths are absolute or the two safe relatives; MKD/STOR
            // targets are unique per (schedule, connection) and /pub is
            // never mutated, so the model's replica VFS cannot diverge
            // from the shared one via cross-connection mutation. Every
            // generated PASV is paired with exactly one data op; bare
            // LIST/RETR (no PASV) keep the 503 path exercised.
            match rng.below(28) {
                0 => lines.push("USER alice".to_string()),
                1 => lines.push("USER anonymous".to_string()),
                2 => lines.push("USER nobody".to_string()),
                3 => lines.push("PASS secret".to_string()),
                4 => lines.push("PASS guest".to_string()),
                5 => lines.push("PASS wrong".to_string()),
                6 => lines.push("PWD".to_string()),
                7 => lines.push("SYST".to_string()),
                8 => lines.push("NOOP".to_string()),
                9 => lines.push("TYPE I".to_string()),
                10 => lines.push("TYPE A".to_string()),
                11 => lines.push("CWD /pub".to_string()),
                12 => lines.push("CWD pub".to_string()),
                13 => lines.push("CWD ..".to_string()),
                14 => lines.push("CWD /nope".to_string()),
                15 => lines.push("SIZE /pub/hello.txt".to_string()),
                16 => lines.push("STAT".to_string()),
                17 => lines.push("STAT /pub".to_string()),
                18 => lines.push(format!("MKD /m{ci}k{j}")),
                // `/pub` (not bare LIST): a dangling PASV from a prior
                // command can turn this into a real transfer, and `/` is
                // mutated cross-connection while `/pub` never is.
                19 => lines.push("LIST /pub".to_string()),
                20 => lines.push("RETR /pub/hello.txt".to_string()),
                21 => lines.push("XYZZY".to_string()),
                22 => {
                    lines.push("PASV".to_string());
                    lines.push("LIST /pub".to_string());
                    data_ops.push(DataOp {
                        kind: DataOpKind::Read,
                        payload: Vec::new(),
                        abort_after: gen_abort(&mut rng),
                    });
                }
                23 => {
                    lines.push("PASV".to_string());
                    lines.push("RETR /pub/hello.txt".to_string());
                    data_ops.push(DataOp {
                        kind: DataOpKind::Read,
                        payload: Vec::new(),
                        abort_after: gen_abort(&mut rng),
                    });
                }
                24 => {
                    // Statically-missing file: 550 without accepting the
                    // data socket; the op's connection just sees a reset.
                    lines.push("PASV".to_string());
                    lines.push("RETR /nope".to_string());
                    data_ops.push(DataOp {
                        kind: DataOpKind::Read,
                        payload: Vec::new(),
                        abort_after: None,
                    });
                }
                25 => {
                    lines.push("PASV".to_string());
                    lines.push(format!("STOR /u{ci}k{j}"));
                    data_ops.push(DataOp {
                        kind: DataOpKind::Write,
                        payload: gen_payload(&mut rng),
                        abort_after: gen_abort(&mut rng),
                    });
                }
                26 => {
                    // Write-back visibility: upload then immediately read
                    // the same path back on a fresh data connection.
                    lines.push("PASV".to_string());
                    lines.push(format!("STOR /u{ci}k{j}"));
                    data_ops.push(DataOp {
                        kind: DataOpKind::Write,
                        payload: gen_payload(&mut rng),
                        abort_after: None,
                    });
                    lines.push("PASV".to_string());
                    lines.push(format!("RETR /u{ci}k{j}"));
                    data_ops.push(DataOp {
                        kind: DataOpKind::Read,
                        payload: Vec::new(),
                        abort_after: None,
                    });
                }
                _ => {
                    // Dangling PASV: the listener is held until the next
                    // transfer, QUIT, or connection teardown.
                    lines.push("PASV".to_string());
                    data_ops.push(DataOp {
                        kind: DataOpKind::Read,
                        payload: Vec::new(),
                        abort_after: None,
                    });
                }
            }
        }
        if rng.chance(0.4) {
            lines.push("QUIT".to_string());
        }
        let mut bytes = Vec::new();
        for l in &lines {
            bytes.extend_from_slice(l.as_bytes());
            bytes.extend_from_slice(b"\r\n");
        }
        let segments = split_segments(&mut rng, bytes);
        conns.push(ConnScript {
            segments,
            close_early: rng.chance(0.2),
            data_ops,
        });
    }
    let order = gen_order(&mut rng, &conns);
    Schedule {
        proto: Proto::Ftp,
        seed,
        plan,
        conns,
        order,
    }
}

/// A stall-heavy variant of [`generate`] for the simulated-time explorer:
/// the same script shapes, but with long inter-segment pauses and a
/// stall-biased fault plan, so wall-clock delivery time is dominated by
/// sleeping — exactly what the virtual clock eliminates.
pub fn generate_stall_heavy(proto: Proto, seed: u64) -> Schedule {
    let mut sched = generate(proto, seed);
    let mut rng = SimRng::new(seed ^ 0x5354_414c); // "STAL"
    sched.plan.stall_per_mille = sched.plan.stall_per_mille.max(300);
    for step in &mut sched.order {
        step.pause_ms = rng.range(40, 120);
    }
    sched
}

fn hex_encode(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| e.to_string()))
        .collect()
}

impl Schedule {
    /// Render as the line-based counterexample format.
    pub fn serialize(&self) -> String {
        let mut out = String::from("conformance-schedule v1\n");
        out.push_str(&format!("proto {}\n", self.proto.name()));
        out.push_str(&format!("seed {}\n", self.seed));
        let p = &self.plan;
        out.push_str(&format!(
            "plan {} {} {} {} {} {} {} {}\n",
            p.seed,
            p.reset_per_mille,
            p.storm_per_mille,
            p.short_io_per_mille,
            p.corrupt_per_mille,
            p.stall_per_mille,
            p.accept_fail_every,
            p.faulty_first,
        ));
        for c in &self.conns {
            out.push_str(&format!("conn close_early={}\n", u8::from(c.close_early)));
            for s in &c.segments {
                out.push_str(&format!("seg {}\n", hex_encode(s)));
            }
            for d in &c.data_ops {
                let abort = d
                    .abort_after
                    .map_or_else(|| "-".to_string(), |n| n.to_string());
                let payload = if d.payload.is_empty() {
                    "-".to_string()
                } else {
                    hex_encode(&d.payload)
                };
                out.push_str(&format!("data {} {} {}\n", d.kind.name(), abort, payload));
            }
        }
        for s in &self.order {
            out.push_str(&format!("step {} {}\n", s.conn, s.pause_ms));
        }
        out
    }

    /// Parse the format produced by [`Schedule::serialize`].
    pub fn parse(text: &str) -> Result<Schedule, String> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        if lines.next() != Some("conformance-schedule v1") {
            return Err("missing 'conformance-schedule v1' header".into());
        }
        let mut proto = None;
        let mut seed = 0u64;
        let mut plan = FaultPlan::default();
        let mut conns: Vec<ConnScript> = Vec::new();
        let mut order = Vec::new();
        for line in lines {
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "proto" => {
                    proto = Some(match rest {
                        "http" => Proto::Http,
                        "ftp" => Proto::Ftp,
                        other => return Err(format!("unknown proto {other:?}")),
                    })
                }
                "seed" => seed = rest.parse().map_err(|e| format!("seed: {e}"))?,
                "plan" => {
                    let f: Vec<u64> = rest
                        .split_whitespace()
                        .map(|t| t.parse().map_err(|e| format!("plan field: {e}")))
                        .collect::<Result<_, _>>()?;
                    if f.len() != 8 {
                        return Err(format!("plan needs 8 fields, got {}", f.len()));
                    }
                    plan = FaultPlan {
                        seed: f[0],
                        reset_per_mille: f[1] as u16,
                        storm_per_mille: f[2] as u16,
                        short_io_per_mille: f[3] as u16,
                        corrupt_per_mille: f[4] as u16,
                        stall_per_mille: f[5] as u16,
                        accept_fail_every: f[6] as u32,
                        faulty_first: f[7] as u32,
                    };
                }
                "conn" => {
                    let close_early = rest
                        .strip_prefix("close_early=")
                        .ok_or("conn line needs close_early=")?
                        == "1";
                    conns.push(ConnScript {
                        segments: Vec::new(),
                        close_early,
                        data_ops: Vec::new(),
                    });
                }
                "seg" => conns
                    .last_mut()
                    .ok_or("seg before any conn line")?
                    .segments
                    .push(hex_decode(rest)?),
                "data" => {
                    let f: Vec<&str> = rest.split_whitespace().collect();
                    if f.len() != 3 {
                        return Err(format!("data needs 3 fields, got {}", f.len()));
                    }
                    let kind = match f[0] {
                        "read" => DataOpKind::Read,
                        "write" => DataOpKind::Write,
                        other => return Err(format!("unknown data op kind {other:?}")),
                    };
                    let abort_after = match f[1] {
                        "-" => None,
                        n => Some(n.parse().map_err(|e| format!("data abort: {e}"))?),
                    };
                    let payload = match f[2] {
                        "-" => Vec::new(),
                        hex => hex_decode(hex)?,
                    };
                    conns
                        .last_mut()
                        .ok_or("data before any conn line")?
                        .data_ops
                        .push(DataOp {
                            kind,
                            payload,
                            abort_after,
                        });
                }
                "step" => {
                    let (c, p) = rest.split_once(' ').ok_or("step needs two fields")?;
                    order.push(Step {
                        conn: c.parse().map_err(|e| format!("step conn: {e}"))?,
                        pause_ms: p.parse().map_err(|e| format!("step pause: {e}"))?,
                    });
                }
                other => return Err(format!("unknown line key {other:?}")),
            }
        }
        let proto = proto.ok_or("missing proto line")?;
        let sched = Schedule {
            proto,
            seed,
            plan,
            conns,
            order,
        };
        sched.check_consistency()?;
        Ok(sched)
    }

    /// Structural sanity: every conn has segments, every step indexes a
    /// conn, and each conn is stepped exactly `segments.len()` times.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut counts = vec![0usize; self.conns.len()];
        for s in &self.order {
            *counts.get_mut(s.conn).ok_or_else(|| {
                format!("step references conn {} of {}", s.conn, self.conns.len())
            })? += 1;
        }
        for (i, (c, n)) in self.conns.iter().zip(&counts).enumerate() {
            if c.segments.is_empty() {
                return Err(format!("conn {i} has no segments"));
            }
            if c.segments.len() != *n {
                return Err(format!(
                    "conn {i} has {} segments but {} steps",
                    c.segments.len(),
                    n
                ));
            }
        }
        Ok(())
    }

    /// FNV-1a 64 over the serialized form: the distinct-schedule counter.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.serialize().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// The same schedule with a different interleaving.
    pub fn with_order(&self, order: Vec<Step>) -> Schedule {
        let mut s = self.clone();
        s.order = order;
        s
    }
}

/// Every interleaving of `seg_counts` (segments per connection) that
/// preserves each connection's own order, with zero pauses. The count is
/// the multinomial coefficient — keep inputs tiny (it is meant for the
/// exhaustive small-case exploration tests).
pub fn enumerate_orders(seg_counts: &[usize]) -> Vec<Vec<Step>> {
    let mut out = Vec::new();
    let mut remaining = seg_counts.to_vec();
    let mut prefix = Vec::new();
    fn rec(remaining: &mut [usize], prefix: &mut Vec<Step>, out: &mut Vec<Vec<Step>>) {
        if remaining.iter().all(|&r| r == 0) {
            out.push(prefix.clone());
            return;
        }
        for c in 0..remaining.len() {
            if remaining[c] > 0 {
                remaining[c] -= 1;
                prefix.push(Step {
                    conn: c,
                    pause_ms: 0,
                });
                rec(remaining, prefix, out);
                prefix.pop();
                remaining[c] += 1;
            }
        }
    }
    rec(&mut remaining, &mut prefix, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for proto in [Proto::Http, Proto::Ftp] {
            let a = generate(proto, 7);
            let b = generate(proto, 7);
            assert_eq!(a, b);
            assert_ne!(a, generate(proto, 8));
        }
    }

    #[test]
    fn generated_schedules_are_consistent() {
        for proto in [Proto::Http, Proto::Ftp] {
            for seed in 0..50 {
                let s = generate(proto, seed);
                s.check_consistency()
                    .unwrap_or_else(|e| panic!("{proto:?} seed {seed}: {e}"));
                assert!(!s.conns.is_empty());
            }
        }
    }

    #[test]
    fn serialize_parse_round_trips() {
        for proto in [Proto::Http, Proto::Ftp] {
            for seed in 0..20 {
                let s = generate(proto, seed);
                let back = Schedule::parse(&s.serialize()).expect("parse back");
                assert_eq!(s, back, "{proto:?} seed {seed}");
                assert_eq!(s.fingerprint(), back.fingerprint());
            }
        }
    }

    #[test]
    fn fingerprints_are_distinct_across_seeds() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..100 {
            assert!(seen.insert(generate(Proto::Http, seed).fingerprint()));
            assert!(seen.insert(generate(Proto::Ftp, seed).fingerprint()));
        }
    }

    #[test]
    fn ftp_scripts_stay_under_the_codec_line_budget() {
        for seed in 0..100 {
            for c in generate(Proto::Ftp, seed).conns {
                assert!(c.bytes().len() < 4096, "seed {seed} script too long");
            }
        }
    }

    #[test]
    fn ftp_data_ops_pair_one_to_one_with_pasv_lines() {
        let mut with_ops = 0;
        for seed in 0..100 {
            let s = generate(Proto::Ftp, seed);
            for c in &s.conns {
                let script = String::from_utf8_lossy(&c.bytes()).into_owned();
                assert_eq!(
                    script.matches("PASV\r\n").count(),
                    c.data_ops.len(),
                    "seed {seed}"
                );
            }
            if s.conns.iter().any(|c| !c.data_ops.is_empty()) {
                with_ops += 1;
            }
        }
        // Transfers occur in a healthy fraction of generated schedules.
        assert!(
            with_ops >= 50,
            "only {with_ops}/100 schedules have data ops"
        );
    }

    #[test]
    fn data_ops_serialize_and_parse_back() {
        let mut s = generate(Proto::Ftp, 0);
        s.conns[0].data_ops = vec![
            DataOp {
                kind: DataOpKind::Read,
                payload: Vec::new(),
                abort_after: None,
            },
            DataOp {
                kind: DataOpKind::Write,
                payload: vec![0, 255, 7],
                abort_after: Some(2),
            },
        ];
        let text = s.serialize();
        assert!(text.contains("data read - -"), "{text}");
        assert!(text.contains("data write 2 00ff07"), "{text}");
        let back = Schedule::parse(&text).unwrap();
        assert_eq!(s, back);
        // Pre-data-plane corpus files (no `data` lines) still parse.
        let legacy: String =
            text.lines()
                .filter(|l| !l.starts_with("data "))
                .fold(String::new(), |mut acc, l| {
                    acc.push_str(l);
                    acc.push('\n');
                    acc
                });
        let old = Schedule::parse(&legacy).unwrap();
        assert!(old.conns.iter().all(|c| c.data_ops.is_empty()));
    }

    #[test]
    fn stall_heavy_schedules_pause_long_and_stay_replayable() {
        for proto in [Proto::Http, Proto::Ftp] {
            let s = generate_stall_heavy(proto, 3);
            assert_eq!(s, generate_stall_heavy(proto, 3));
            assert!(s.plan.stall_per_mille >= 300);
            assert!(s.order.iter().all(|st| st.pause_ms >= 40));
            assert_eq!(Schedule::parse(&s.serialize()).unwrap(), s);
        }
    }

    #[test]
    fn enumerate_orders_is_the_multinomial() {
        assert_eq!(enumerate_orders(&[2, 1]).len(), 3);
        assert_eq!(enumerate_orders(&[2, 2]).len(), 6);
        assert_eq!(enumerate_orders(&[1, 1, 1]).len(), 6);
        for order in enumerate_orders(&[2, 2]) {
            assert_eq!(order.len(), 4);
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Schedule::parse("nonsense").is_err());
        assert!(Schedule::parse("conformance-schedule v1\nproto http\nseg 00\n").is_err());
        let missing_step = "conformance-schedule v1\nproto http\nseed 1\n\
                            plan 1 0 0 0 0 0 0 0\nconn close_early=0\nseg 41\n";
        assert!(
            Schedule::parse(missing_step).is_err(),
            "step count mismatch"
        );
    }
}
