//! Ablation for option O2: request round-trip latency through a live
//! framework instance with handlers inline on the dispatcher (classic
//! Reactor) vs handed to the Event Processor pool — plus the O1
//! demultiplexing ablation: how fast a parked dispatcher notices new
//! work under the old scan-and-sleep loop vs a poller waker.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion};
use nserver_core::options::{ServerOptions, ThreadAllocation};
use nserver_core::pipeline::{Action, Codec, ConnCtx, ProtocolError, Service};
use nserver_core::server::ServerBuilder;
use nserver_core::transport::{mem, Poller, ReadOutcome, StreamIo};

struct LineCodec;

impl Codec for LineCodec {
    type Request = String;
    type Response = String;

    fn decode(&self, buf: &mut BytesMut) -> Result<Option<String>, ProtocolError> {
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                let line = buf.split_to(i + 1);
                Ok(Some(String::from_utf8_lossy(&line[..i]).into_owned()))
            }
            None => Ok(None),
        }
    }

    fn encode(&self, r: &String, out: &mut BytesMut) -> Result<(), ProtocolError> {
        out.extend_from_slice(r.as_bytes());
        out.extend_from_slice(b"\n");
        Ok(())
    }
}

struct Echo;

impl Service<LineCodec> for Echo {
    fn handle(&self, _ctx: &ConnCtx, req: String) -> Action<String> {
        Action::Reply(req)
    }
}

fn round_trip(stream: &mut mem::MemStream) {
    stream.try_write(b"ping\n").unwrap();
    let mut buf = [0u8; 64];
    let mut got = 0;
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        match stream.try_read(&mut buf[got..]).unwrap() {
            ReadOutcome::Data(n) => {
                got += n;
                if buf[..got].contains(&b'\n') {
                    return;
                }
            }
            ReadOutcome::WouldBlock => std::hint::spin_loop(),
            ReadOutcome::Closed => panic!("closed"),
        }
    }
    panic!("timed out");
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("reactor_dispatch");
    g.sample_size(20);

    // O2 = No: inline handlers.
    {
        let (listener, connector) = mem::listener("inline");
        let opts = ServerOptions {
            separate_handler_pool: false,
            thread_allocation: ThreadAllocation::Static { threads: 1 },
            ..ServerOptions::default()
        };
        let server = ServerBuilder::new(opts, LineCodec, Echo)
            .unwrap()
            .serve(listener);
        let mut stream = connector.connect();
        round_trip(&mut stream); // warm up
        g.bench_function("inline_round_trip", |b| b.iter(|| round_trip(&mut stream)));
        server.shutdown();
    }

    // O2 = Yes: Event Processor pool.
    {
        let (listener, connector) = mem::listener("pool");
        let opts = ServerOptions {
            separate_handler_pool: true,
            thread_allocation: ThreadAllocation::Static { threads: 2 },
            ..ServerOptions::default()
        };
        let server = ServerBuilder::new(opts, LineCodec, Echo)
            .unwrap()
            .serve(listener);
        let mut stream = connector.connect();
        round_trip(&mut stream);
        g.bench_function("pooled_round_trip", |b| b.iter(|| round_trip(&mut stream)));
        server.shutdown();
    }

    g.finish();
}

/// O1 ablation: latency from "work arrives" to "the idle dispatch thread
/// notices". The scan-and-sleep baseline reproduces the loop this PR
/// removed (sleep 200 µs between scans); the poller side blocks in
/// `MemPoller::wait` and is pulled out by its waker.
fn bench_idle_wake(c: &mut Criterion) {
    let mut g = c.benchmark_group("idle_wake_latency");
    g.sample_size(30);

    // Baseline: flag checked every 200 µs, exactly like the old loop.
    {
        let flag = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let (ack_tx, ack_rx) = std::sync::mpsc::channel::<()>();
        let h = {
            let flag = Arc::clone(&flag);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if flag.swap(false, Ordering::Relaxed) {
                        ack_tx.send(()).unwrap();
                    } else {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            })
        };
        g.bench_function("sleep_poll_200us", |b| {
            b.iter(|| {
                flag.store(true, Ordering::Relaxed);
                ack_rx.recv().unwrap();
            })
        });
        stop.store(true, Ordering::Relaxed);
        flag.store(true, Ordering::Relaxed);
        let _ = h.join();
    }

    // Demultiplexed: thread parked in the poller, woken by the waker.
    {
        let mut poller = mem::MemPoller::new();
        let waker = poller.waker();
        let stop = Arc::new(AtomicBool::new(false));
        let (ack_tx, ack_rx) = std::sync::mpsc::channel::<()>();
        let h = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut events = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    poller.wait(&mut events, None).unwrap();
                    ack_tx.send(()).unwrap();
                }
            })
        };
        g.bench_function("poller_waker", |b| {
            b.iter(|| {
                waker.wake();
                ack_rx.recv().unwrap();
            })
        });
        stop.store(true, Ordering::Relaxed);
        waker.wake();
        let _ = h.join();
    }

    g.finish();
}

criterion_group!(benches, bench_dispatch, bench_idle_wake);
criterion_main!(benches);
