//! The paper's central claim, made checkable: servers generated under
//! different template option columns (O1–O12) have the *same observable
//! protocol behaviour*. Every variant here runs the same schedules through
//! the same byte-exact model — scheduling, pooling, caching and overload
//! options may change performance, never legality.

use conformance::{generate, run_http_with_options, standard_http_service, Proto};
use nserver_cache::PolicyKind;
use nserver_core::options::{
    CompletionMode, DispatcherThreads, EventScheduling, FileCacheOption, Mode, OverloadControl,
    ServerOptions, StageDeadlines, ThreadAllocation,
};
use nserver_http::cops_http_options;

fn variants() -> Vec<(&'static str, ServerOptions)> {
    let base = cops_http_options();
    vec![
        ("cops-http-baseline", base.clone()),
        (
            "o1-multi-dispatcher",
            ServerOptions {
                dispatcher_threads: DispatcherThreads::Multi(2),
                ..base.clone()
            },
        ),
        (
            "o4-synchronous-completions",
            ServerOptions {
                completion_mode: CompletionMode::Synchronous,
                ..base.clone()
            },
        ),
        (
            "o5-dynamic-pool",
            ServerOptions {
                thread_allocation: ThreadAllocation::Dynamic {
                    min: 1,
                    max: 4,
                    idle_keepalive_ms: 50,
                },
                ..base.clone()
            },
        ),
        (
            "o6-no-cache",
            ServerOptions {
                file_cache: FileCacheOption::No,
                ..base.clone()
            },
        ),
        (
            "o6-lfu-cache",
            ServerOptions {
                file_cache: FileCacheOption::Yes {
                    policy: PolicyKind::Lfu,
                    capacity_bytes: 1 << 20,
                },
                ..base.clone()
            },
        ),
        (
            "o8-event-scheduling",
            ServerOptions {
                event_scheduling: EventScheduling::Yes { quotas: vec![2, 1] },
                ..base.clone()
            },
        ),
        (
            "o9-max-connections",
            ServerOptions {
                // Above the generator's connection count: admission control
                // present but never rejecting, so the model still applies.
                overload_control: OverloadControl::MaxConnections { limit: 64 },
                ..base.clone()
            },
        ),
        (
            "o9-watermark",
            ServerOptions {
                overload_control: OverloadControl::Watermark { high: 16, low: 4 },
                ..base.clone()
            },
        ),
        (
            "o10-debug-mode",
            ServerOptions {
                mode: Mode::Debug,
                ..base.clone()
            },
        ),
        (
            "o7-stage-deadlines",
            ServerOptions {
                // Generous enough that no in-test connection expires.
                stage_deadlines: StageDeadlines {
                    header_read_ms: Some(60_000),
                    write_drain_ms: Some(60_000),
                },
                idle_shutdown_ms: Some(60_000),
                ..base
            },
        ),
    ]
}

#[test]
fn every_options_variant_conforms_to_the_same_model() {
    let seeds: &[u64] = &[3, 11, 17];
    for (name, opts) in variants() {
        opts.validate()
            .unwrap_or_else(|e| panic!("variant {name} is invalid: {e:?}"));
        for &seed in seeds {
            let sched = generate(Proto::Http, seed);
            let report = run_http_with_options(&sched, standard_http_service(), opts.clone());
            assert!(
                report.violations.is_empty(),
                "variant {name}, seed {seed}: {}",
                report
                    .violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
            );
        }
    }
}
