//! Regenerate the committed expansion under `generated/`.
//!
//! The repo tracks one expanded framework (`generated/cops-http`) so the
//! generative path's output is reviewable in diffs. After changing the
//! template, run:
//!
//! ```text
//! cargo run -p nserver-codegen --bin expand
//! ```
//!
//! Flags:
//!
//! * `--out DIR` — write somewhere else (default `generated/cops-http`
//!   relative to the repo root);
//! * `--debug` — generate with O10 = Debug;
//! * `--profiling` — generate with O11 = Yes.

use std::path::PathBuf;

use nserver_cache::PolicyKind;
use nserver_core::options::{
    CompletionMode, FileCacheOption, Mode, ServerOptions, ThreadAllocation,
};

use nserver_codegen::template::generate;

/// The COPS-HTTP configuration the committed expansion uses (the paper's
/// Table 1 COPS-HTTP column).
fn cops_http_options(debug: bool, profiling: bool) -> ServerOptions {
    ServerOptions {
        completion_mode: CompletionMode::Asynchronous,
        thread_allocation: ThreadAllocation::Static { threads: 4 },
        file_cache: FileCacheOption::Yes {
            policy: PolicyKind::Lru,
            capacity_bytes: 20 << 20,
        },
        mode: if debug { Mode::Debug } else { Mode::Production },
        profiling,
        ..ServerOptions::default()
    }
}

fn main() {
    let mut out: Option<PathBuf> = None;
    let mut debug = false;
    let mut profiling = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(args.next().expect("--out needs a path"))),
            "--debug" => debug = true,
            "--profiling" => profiling = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    // The generated manifest's path dependencies are relative to the crate
    // it lands in; the committed location sits two levels below the repo
    // root, so it keeps a relative path. A custom --out gets an absolute
    // one so the crate builds from anywhere.
    let (out, core_path) = match out {
        Some(dir) => {
            let crates = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..");
            (
                dir,
                crates
                    .canonicalize()
                    .expect("crates dir")
                    .display()
                    .to_string(),
            )
        }
        None => (
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../generated/cops-http"),
            "../../crates".to_string(),
        ),
    };
    let fw = generate(
        "cops-http-generated",
        &cops_http_options(debug, profiling),
        &core_path,
    );
    fw.write_to(&out).expect("write generated crate");
    let stats = fw.generated_stats();
    println!(
        "wrote {} files to {} (classes={} methods={} ncss={})",
        fw.files.len(),
        out.display(),
        stats.classes,
        stats.methods,
        stats.ncss,
    );
}
