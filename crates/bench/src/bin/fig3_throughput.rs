//! Fig. 3 — throughput of COPS-HTTP vs Apache, 1…1024 clients (log x).
//!
//! Expected shape (paper): Apache slightly ahead under light load
//! (< 32 clients); COPS-HTTP ahead from 32 to 256; both saturate on the
//! network above 256; Apache slightly ahead again at 1024 — at the cost
//! of the fairness collapse Fig. 4 shows.
//!
//! `--quick` shortens the simulated warmup/measurement windows.

use nserver_baselines::world::CopsParams;
use nserver_baselines::{ApacheParams, ExperimentParams, ServerKind, World};
use nserver_bench::{quick_mode, render_table, write_csv, CLIENT_LADDER};
use nserver_netsim::SimTime;

fn run(clients: usize, kind: ServerKind, quick: bool) -> f64 {
    let mut p = ExperimentParams::figure3(clients, kind);
    if quick {
        p.warmup = SimTime::from_secs(5);
        p.measure = SimTime::from_secs(30);
    }
    World::new(p).run().throughput_rps
}

fn main() {
    let quick = quick_mode();
    println!("FIG. 3 — THROUGHPUT, COPS-HTTP vs APACHE (responses/second)");
    println!(
        "simulated testbed: 4-CPU server, ~115 Mbit/s shared network, SpecWeb99-like\n\
         file set (204.8 MB), 5 requests/connection, 20 ms think time{}\n",
        if quick { " [--quick windows]" } else { "" }
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &clients in &CLIENT_LADDER {
        let apache = run(clients, ServerKind::Apache(ApacheParams::default()), quick);
        let cops = run(clients, ServerKind::Cops(CopsParams::default()), quick);
        let winner = if (apache - cops).abs() / apache.max(cops) < 0.005 {
            "~tie"
        } else if cops > apache {
            "COPS-HTTP"
        } else {
            "Apache"
        };
        rows.push(vec![
            clients.to_string(),
            format!("{apache:.1}"),
            format!("{cops:.1}"),
            winner.to_string(),
        ]);
        csv.push(format!("{clients},{apache:.2},{cops:.2}"));
        eprintln!("  ran {clients} clients: apache {apache:.1} vs cops {cops:.1}");
    }
    println!(
        "{}",
        render_table(&["clients", "Apache rps", "COPS-HTTP rps", "leader"], &rows)
    );
    println!(
        "Paper shape: Apache ahead <32 clients; COPS ahead 32–256; both\n\
         saturate >256 (network-bound); Apache slightly ahead at 1024."
    );
    write_csv("fig3_throughput.csv", "clients,apache_rps,cops_rps", &csv);
}
