//! Fig. 6 — response time with and without automatic overload control
//! (option O9), 1…128 clients.
//!
//! The workload is made CPU-bound by burning 50 ms per request during
//! decoding (the paper's sleep); watermarks on the reactive event-
//! processor queue are high = 20, low = 5. Expected shape (paper): with
//! overload control the average response time is significantly lower,
//! without degrading throughput; the combined time (which includes the
//! wait to establish a connection) is higher than the response time
//! alone, since postponed clients wait at the gate.

use nserver_baselines::{ExperimentParams, World};
use nserver_bench::{quick_mode, render_table, write_csv, FIG6_LADDER};
use nserver_netsim::SimTime;

struct Row {
    resp: f64,
    combined: f64,
    rps: f64,
}

fn run(clients: usize, control: bool, quick: bool) -> Row {
    let mut p = ExperimentParams::figure6(clients, control);
    if quick {
        p.warmup = SimTime::from_secs(5);
        p.measure = SimTime::from_secs(30);
    }
    let out = World::new(p).run();
    Row {
        resp: out.mean_response_ms,
        combined: out.mean_combined_ms,
        rps: out.throughput_rps,
    }
}

fn main() {
    let quick = quick_mode();
    println!("FIG. 6 — RESPONSE TIME WITH/WITHOUT AUTOMATIC OVERLOAD CONTROL");
    println!(
        "CPU-bound workload (50 ms decode burn per request), 2-CPU host,\n\
         watermarks high=20 / low=5 on the reactive event-processor queue\n"
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &clients in &FIG6_LADDER {
        let off = run(clients, false, quick);
        let on = run(clients, true, quick);
        rows.push(vec![
            clients.to_string(),
            format!("{:.0}", off.resp),
            format!("{:.0}", off.combined),
            format!("{:.0}", on.resp),
            format!("{:.0}", on.combined),
            format!("{:.1}", off.rps),
            format!("{:.1}", on.rps),
        ]);
        csv.push(format!(
            "{clients},{:.1},{:.1},{:.1},{:.1},{:.2},{:.2}",
            off.resp, off.combined, on.resp, on.combined, off.rps, on.rps
        ));
        eprintln!("  ran {clients} clients");
    }
    println!(
        "{}",
        render_table(
            &[
                "clients",
                "resp ms (no ctl)",
                "combined ms (no ctl)",
                "resp ms (ctl)",
                "combined ms (ctl)",
                "rps (no ctl)",
                "rps (ctl)",
            ],
            &rows,
        )
    );
    println!(
        "Paper shape: overload control keeps the response time of established\n\
         connections low and flat while throughput is not degraded; the\n\
         combined time absorbs the connection-establishment wait instead."
    );
    write_csv(
        "fig6_overload.csv",
        "clients,resp_noctl_ms,combined_noctl_ms,resp_ctl_ms,combined_ctl_ms,rps_noctl,rps_ctl",
        &csv,
    );
}
