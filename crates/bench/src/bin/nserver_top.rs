//! `nserver-top`: a terminal dashboard over a running server's
//! observability surface.
//!
//! Scrapes the HTTP exposition endpoints — `/server-status` (Prometheus
//! text) and `/debug/snapshot?latest` (flight-recorder JSON) — and
//! renders a one-screen summary: request counters, per-stage latency
//! quantiles, queue depth and wait, worker gauges, cache hit ratio,
//! overload state, and watchdog trigger counts.
//!
//! Usage:
//!
//! ```text
//! nserver_top <host:port> [--once] [--interval-ms N]
//! ```
//!
//! `--once` prints a single frame and exits (scripts, CI smoke tests);
//! otherwise the screen refreshes every `--interval-ms` (default 1000).

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One HTTP/1.1 GET over a fresh connection; returns the body.
fn http_get(addr: &str, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .ok()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).ok()?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text.split_once("\r\n\r\n")?;
    if !head.starts_with("HTTP/1.1 200") && !head.starts_with("HTTP/1.0 200") {
        return None;
    }
    Some(body.to_string())
}

/// Parse Prometheus text format into `name{labels} -> value`. Comment
/// lines are skipped; the full sample name (with label set) is the key.
fn parse_prometheus(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, value)) = line.rsplit_once(' ') {
            if let Ok(v) = value.parse::<f64>() {
                out.insert(name.to_string(), v);
            }
        }
    }
    out
}

fn metric(samples: &BTreeMap<String, f64>, key: &str) -> f64 {
    samples.get(key).copied().unwrap_or(0.0)
}

/// Pull `"key":<number>` out of snapshot JSON without a JSON parser
/// (top-level keys in the snapshot are unique).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn render(addr: &str, status: &str, snapshot: Option<&str>) -> String {
    let s = parse_prometheus(status);
    let mut out = String::new();
    let q = |stage: &str, quantile: &str| {
        metric(
            &s,
            &format!(
                "nserver_stage_latency_quantile_us{{stage=\"{stage}\",quantile=\"{quantile}\"}}"
            ),
        )
    };
    out.push_str(&format!("nserver-top — {addr}\n\n"));
    out.push_str(&format!(
        "conns  accepted {:>10}  closed {:>10}  proto-errors {:>6}\n",
        metric(&s, "nserver_connections_accepted"),
        metric(&s, "nserver_connections_closed"),
        metric(&s, "nserver_protocol_errors"),
    ));
    out.push_str(&format!(
        "events dispatched {:>8}  blocking-ops {:>6}  handler-panics {:>4}\n",
        metric(&s, "nserver_events_dispatched"),
        metric(&s, "nserver_blocking_operations"),
        metric(&s, "nserver_handler_panics"),
    ));
    out.push_str("\nstage      p50_us    p99_us\n");
    for stage in ["decode", "handle", "encode"] {
        out.push_str(&format!(
            "{stage:<8} {:>8} {:>9}\n",
            q(stage, "0.5"),
            q(stage, "0.99")
        ));
    }
    out.push_str(&format!(
        "\nqueue  depth {:>6}  high-water {:>6}  wait-p99 {:>8}us\n",
        metric(&s, "nserver_queue_depth"),
        metric(&s, "nserver_queue_depth_high_water"),
        metric(&s, "nserver_queue_wait_quantile_us{quantile=\"0.99\"}"),
    ));
    out.push_str(&format!(
        "workers running {:>4}  idle {:>4}\n",
        metric(&s, "nserver_workers_running"),
        metric(&s, "nserver_workers_idle"),
    ));
    let hits = metric(&s, "nserver_cache_hits");
    let misses = metric(&s, "nserver_cache_misses");
    if hits + misses > 0.0 {
        out.push_str(&format!(
            "cache  hit-ratio {:>5.1}%  used {:>10}B  coalesced {:>6}\n",
            100.0 * hits / (hits + misses),
            metric(&s, "nserver_cache_used_bytes"),
            metric(&s, "nserver_cache_coalesced_waits"),
        ));
    }
    out.push_str(&format!(
        "overload paused {}  pauses {}  resumes {}\n",
        metric(&s, "nserver_overload_paused"),
        metric(&s, "nserver_overload_pauses"),
        metric(&s, "nserver_overload_resumes"),
    ));
    out.push_str(&format!(
        "watchdog triggers {}  snapshots {}  trace-drops {}\n",
        metric(&s, "nserver_watchdog_triggers"),
        metric(&s, "nserver_diag_snapshots"),
        metric(&s, "nserver_trace_dropped_spans"),
    ));
    match snapshot {
        Some(json) if json != "null" => {
            out.push_str(&format!(
                "\nlast snapshot: seq={} at_us={}",
                json_number(json, "seq").unwrap_or(0.0),
                json_number(json, "at_us").unwrap_or(0.0),
            ));
            if let Some(at) = json.find("\"reason\":\"") {
                let rest = &json[at + 10..];
                if let Some(end) = rest.find('"') {
                    out.push_str(&format!(" reason={}", &rest[..end]));
                }
            }
            out.push('\n');
        }
        _ => out.push_str("\nlast snapshot: none\n"),
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = match args.iter().find(|a| !a.starts_with("--")) {
        Some(a) => a.clone(),
        None => {
            eprintln!("usage: nserver_top <host:port> [--once] [--interval-ms N]");
            std::process::exit(2);
        }
    };
    let once = args.iter().any(|a| a == "--once");
    let interval = args
        .iter()
        .position(|a| a == "--interval-ms")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1000);

    loop {
        let status = match http_get(&addr, "/server-status") {
            Some(body) => body,
            None => {
                eprintln!("nserver_top: cannot scrape {addr}/server-status");
                std::process::exit(1);
            }
        };
        let snapshot = http_get(&addr, "/debug/snapshot?latest");
        let frame = render(&addr, &status, snapshot.as_deref());
        if once {
            print!("{frame}");
            return;
        }
        // Clear screen + home, then draw the frame.
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_millis(interval));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_lines_parse_with_labels() {
        let text = "# HELP x y\n# TYPE x counter\nx 3\n\
                    nserver_stage_latency_quantile_us{stage=\"handle\",quantile=\"0.99\"} 250\n";
        let s = parse_prometheus(text);
        assert_eq!(metric(&s, "x"), 3.0);
        assert_eq!(
            metric(
                &s,
                "nserver_stage_latency_quantile_us{stage=\"handle\",quantile=\"0.99\"}"
            ),
            250.0
        );
    }

    #[test]
    fn json_numbers_extract() {
        let json = "{\"seq\":4,\"reason\":\"worker_stuck\",\"at_us\":123456}";
        assert_eq!(json_number(json, "seq"), Some(4.0));
        assert_eq!(json_number(json, "at_us"), Some(123456.0));
        assert_eq!(json_number(json, "missing"), None);
    }

    #[test]
    fn render_survives_empty_exposition() {
        let frame = render("127.0.0.1:0", "", None);
        assert!(frame.contains("nserver-top"));
        assert!(frame.contains("last snapshot: none"));
    }
}
