//! Transport abstraction: non-blocking listeners and streams.
//!
//! The paper's framework relies on Java NIO for non-blocking socket I/O.
//! The Rust analogue here is `std::net` sockets switched to non-blocking
//! mode; the Reactor polls them for readiness. The same traits have an
//! in-memory implementation ([`mem`]) used by tests and benchmarks, so the
//! entire framework can be exercised deterministically without touching
//! the network stack.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// Result of a non-blocking read attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// `n` bytes were read into the buffer.
    Data(usize),
    /// No data available right now.
    WouldBlock,
    /// The peer closed its end.
    Closed,
}

/// A non-blocking byte stream.
pub trait StreamIo: Send + 'static {
    /// Attempt to read into `buf` without blocking.
    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<ReadOutcome>;
    /// Attempt to write from `data` without blocking; returns bytes
    /// written (0 means "would block").
    fn try_write(&mut self, data: &[u8]) -> io::Result<usize>;
    /// Human-readable peer identity (IP:port for TCP).
    fn peer_label(&self) -> String;
    /// Close the stream (idempotent).
    fn shutdown(&mut self);
}

/// A non-blocking connection acceptor.
pub trait Listener: Send + 'static {
    /// The stream type produced.
    type Stream: StreamIo;
    /// Accept one pending connection if available.
    fn try_accept(&mut self) -> io::Result<Option<Self::Stream>>;
    /// Human-readable local address.
    fn local_label(&self) -> String;
}

// ---------------------------------------------------------------------------
// TCP implementation
// ---------------------------------------------------------------------------

/// Non-blocking TCP listener.
pub struct TcpListenerNb {
    inner: TcpListener,
    label: String,
}

impl TcpListenerNb {
    /// Bind and switch to non-blocking mode. Binding port 0 picks a free
    /// port; see [`TcpListenerNb::local_label`] for the result.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let inner = TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        let label = inner
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into());
        Ok(Self { inner, label })
    }
}

impl Listener for TcpListenerNb {
    type Stream = TcpStreamNb;

    fn try_accept(&mut self) -> io::Result<Option<TcpStreamNb>> {
        match self.inner.accept() {
            Ok((stream, peer)) => {
                stream.set_nonblocking(true)?;
                let _ = stream.set_nodelay(true);
                Ok(Some(TcpStreamNb {
                    inner: stream,
                    peer: peer.to_string(),
                    open: true,
                }))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn local_label(&self) -> String {
        self.label.clone()
    }
}

/// Non-blocking TCP stream.
pub struct TcpStreamNb {
    inner: TcpStream,
    peer: String,
    open: bool,
}

impl TcpStreamNb {
    /// Client-side connect (used by the Connector half of the
    /// Acceptor-Connector pattern and by tests).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let inner = TcpStream::connect(addr)?;
        inner.set_nonblocking(true)?;
        let _ = inner.set_nodelay(true);
        let peer = inner
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into());
        Ok(Self {
            inner,
            peer,
            open: true,
        })
    }
}

impl StreamIo for TcpStreamNb {
    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<ReadOutcome> {
        if !self.open {
            return Ok(ReadOutcome::Closed);
        }
        match self.inner.read(buf) {
            Ok(0) => Ok(ReadOutcome::Closed),
            Ok(n) => Ok(ReadOutcome::Data(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(ReadOutcome::WouldBlock),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(ReadOutcome::WouldBlock),
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => Ok(ReadOutcome::Closed),
            Err(e) => Err(e),
        }
    }

    fn try_write(&mut self, data: &[u8]) -> io::Result<usize> {
        if !self.open {
            // Surfacing an error (rather than 0 = "would block") lets the
            // dispatcher reap a connection whose peer vanished while
            // response bytes were still queued.
            return Err(io::Error::new(io::ErrorKind::NotConnected, "closed"));
        }
        match self.inner.write(data) {
            Ok(n) => Ok(n),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(0),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) if e.kind() == io::ErrorKind::BrokenPipe => {
                self.open = false;
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    fn peer_label(&self) -> String {
        self.peer.clone()
    }

    fn shutdown(&mut self) {
        if self.open {
            let _ = self.inner.shutdown(std::net::Shutdown::Both);
            self.open = false;
        }
    }
}

// ---------------------------------------------------------------------------
// In-memory implementation
// ---------------------------------------------------------------------------

/// In-memory loopback transport for deterministic tests.
pub mod mem {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::VecDeque;
    use std::sync::Arc;

    #[derive(Default)]
    struct Pipe {
        buf: VecDeque<u8>,
        closed: bool,
    }

    /// One end of an in-memory full-duplex connection.
    pub struct MemStream {
        read: Arc<Mutex<Pipe>>,
        write: Arc<Mutex<Pipe>>,
        label: String,
    }

    /// Create a connected pair: `(a, b)` where bytes written to `a` are
    /// read from `b` and vice versa.
    pub fn pair(label_a: &str, label_b: &str) -> (MemStream, MemStream) {
        let ab = Arc::new(Mutex::new(Pipe::default()));
        let ba = Arc::new(Mutex::new(Pipe::default()));
        (
            MemStream {
                read: Arc::clone(&ba),
                write: Arc::clone(&ab),
                label: label_a.to_string(),
            },
            MemStream {
                read: ab,
                write: ba,
                label: label_b.to_string(),
            },
        )
    }

    impl StreamIo for MemStream {
        fn try_read(&mut self, buf: &mut [u8]) -> io::Result<ReadOutcome> {
            let mut pipe = self.read.lock();
            if pipe.buf.is_empty() {
                return if pipe.closed {
                    Ok(ReadOutcome::Closed)
                } else {
                    Ok(ReadOutcome::WouldBlock)
                };
            }
            let mut n = 0;
            while n < buf.len() {
                match pipe.buf.pop_front() {
                    Some(b) => {
                        buf[n] = b;
                        n += 1;
                    }
                    None => break,
                }
            }
            Ok(ReadOutcome::Data(n))
        }

        fn try_write(&mut self, data: &[u8]) -> io::Result<usize> {
            let mut pipe = self.write.lock();
            if pipe.closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "peer closed",
                ));
            }
            pipe.buf.extend(data.iter().copied());
            Ok(data.len())
        }

        fn peer_label(&self) -> String {
            self.label.clone()
        }

        fn shutdown(&mut self) {
            self.read.lock().closed = true;
            self.write.lock().closed = true;
        }
    }

    /// An in-memory listener fed by a [`MemConnector`].
    pub struct MemListener {
        incoming: Arc<Mutex<VecDeque<MemStream>>>,
        label: String,
    }

    /// The client-side handle that creates connections to a
    /// [`MemListener`].
    #[derive(Clone)]
    pub struct MemConnector {
        incoming: Arc<Mutex<VecDeque<MemStream>>>,
        counter: Arc<Mutex<u64>>,
    }

    /// Create a listener and its connector.
    pub fn listener(label: &str) -> (MemListener, MemConnector) {
        let incoming = Arc::new(Mutex::new(VecDeque::new()));
        (
            MemListener {
                incoming: Arc::clone(&incoming),
                label: label.to_string(),
            },
            MemConnector {
                incoming,
                counter: Arc::new(Mutex::new(0)),
            },
        )
    }

    impl MemConnector {
        /// Establish a connection; returns the client-side stream.
        pub fn connect(&self) -> MemStream {
            let mut counter = self.counter.lock();
            *counter += 1;
            let id = *counter;
            let (client, server) =
                pair(&format!("client-{id}"), &format!("peer-{id}"));
            self.incoming.lock().push_back(server);
            client
        }
    }

    impl Listener for MemListener {
        type Stream = MemStream;

        fn try_accept(&mut self) -> io::Result<Option<MemStream>> {
            Ok(self.incoming.lock().pop_front())
        }

        fn local_label(&self) -> String {
            self.label.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_pair_round_trips() {
        let (mut a, mut b) = mem::pair("a", "b");
        assert_eq!(a.try_write(b"hello").unwrap(), 5);
        let mut buf = [0u8; 16];
        assert_eq!(b.try_read(&mut buf).unwrap(), ReadOutcome::Data(5));
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(b.try_read(&mut buf).unwrap(), ReadOutcome::WouldBlock);
        // Reverse direction.
        b.try_write(b"yo").unwrap();
        assert_eq!(a.try_read(&mut buf).unwrap(), ReadOutcome::Data(2));
    }

    #[test]
    fn mem_close_is_observed_after_drain() {
        let (mut a, mut b) = mem::pair("a", "b");
        a.try_write(b"x").unwrap();
        a.shutdown();
        let mut buf = [0u8; 4];
        assert_eq!(b.try_read(&mut buf).unwrap(), ReadOutcome::Data(1));
        assert_eq!(b.try_read(&mut buf).unwrap(), ReadOutcome::Closed);
        // Writing to a closed pipe reports an error so the reactor can
        // reap the connection.
        assert!(b.try_write(b"y").is_err());
    }

    #[test]
    fn mem_listener_delivers_connections_fifo() {
        let (mut l, c) = mem::listener("srv");
        assert!(l.try_accept().unwrap().is_none());
        let _c1 = c.connect();
        let _c2 = c.connect();
        let s1 = l.try_accept().unwrap().unwrap();
        let s2 = l.try_accept().unwrap().unwrap();
        assert_eq!(s1.peer_label(), "peer-1");
        assert_eq!(s2.peer_label(), "peer-2");
        assert_eq!(l.local_label(), "srv");
    }

    #[test]
    fn mem_connected_pair_talks_through_listener() {
        let (mut l, c) = mem::listener("srv");
        let mut client = c.connect();
        let mut server = l.try_accept().unwrap().unwrap();
        client.try_write(b"ping").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(server.try_read(&mut buf).unwrap(), ReadOutcome::Data(4));
        server.try_write(b"pong").unwrap();
        assert_eq!(client.try_read(&mut buf).unwrap(), ReadOutcome::Data(4));
        assert_eq!(&buf[..4], b"pong");
    }

    #[test]
    fn tcp_listener_binds_and_accepts_nonblocking() {
        let mut l = TcpListenerNb::bind("127.0.0.1:0").unwrap();
        assert!(l.try_accept().unwrap().is_none(), "no pending connection");
        let addr = l.local_label();
        let mut client = TcpStreamNb::connect(&addr).unwrap();
        // Accept may need a beat for the kernel to hand over the socket.
        let mut server = None;
        for _ in 0..100 {
            if let Some(s) = l.try_accept().unwrap() {
                server = Some(s);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let mut server = server.expect("accepted");
        assert_eq!(client.try_write(b"abc").unwrap(), 3);
        let mut buf = [0u8; 8];
        let mut got = 0;
        for _ in 0..100 {
            match server.try_read(&mut buf[got..]).unwrap() {
                ReadOutcome::Data(n) => {
                    got += n;
                    if got >= 3 {
                        break;
                    }
                }
                ReadOutcome::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(1))
                }
                ReadOutcome::Closed => panic!("unexpected close"),
            }
        }
        assert_eq!(&buf[..3], b"abc");
        client.shutdown();
        // Eventually observe the close.
        let mut closed = false;
        for _ in 0..100 {
            match server.try_read(&mut buf).unwrap() {
                ReadOutcome::Closed => {
                    closed = true;
                    break;
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        }
        assert!(closed);
    }
}
