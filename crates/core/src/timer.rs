//! A hashed timer wheel driving time-based framework behaviour — most
//! importantly the termination of long-idle connections (option O7):
//! "Long-idle connections may consume unnecessary resources and degrade
//! the performance of network server applications."
//!
//! The wheel is deliberately framework-internal: timers are polled from
//! the dispatcher loop (single consumer), so no locking is needed.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// A scheduled timer returning a user key `K` when it fires.
#[derive(Debug)]
struct TimerEntry<K> {
    deadline: Instant,
    key: K,
}

/// Hashed timer wheel with fixed-width slots.
#[derive(Debug)]
pub struct TimerWheel<K> {
    slots: Vec<VecDeque<TimerEntry<K>>>,
    slot_width: Duration,
    /// Start of the slot `cursor` currently points at.
    slot_start: Instant,
    cursor: usize,
    len: usize,
}

impl<K> TimerWheel<K> {
    /// Create a wheel of `slots` buckets, each `slot_width` wide. The wheel
    /// spans `slots × slot_width`; longer timeouts are parked in the slot
    /// they hash to and re-checked on expiry (standard hashed-wheel
    /// behaviour).
    pub fn new(slots: usize, slot_width: Duration, now: Instant) -> Self {
        assert!(slots >= 2, "wheel needs at least two slots");
        assert!(slot_width > Duration::ZERO);
        Self {
            slots: (0..slots).map(|_| VecDeque::new()).collect(),
            slot_width,
            slot_start: now,
            cursor: 0,
            len: 0,
        }
    }

    /// Scheduled timer count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no timers are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `key` to fire `after` the given `now`.
    pub fn schedule(&mut self, now: Instant, after: Duration, key: K) {
        let deadline = now + after;
        let ticks = (after.as_nanos() / self.slot_width.as_nanos().max(1)) as usize;
        let slot = (self.cursor + ticks.min(self.slots.len() * 8)) % self.slots.len();
        self.slots[slot].push_back(TimerEntry { deadline, key });
        self.len += 1;
    }

    /// Advance the wheel to `now`, collecting every fired key.
    pub fn poll(&mut self, now: Instant) -> Vec<K> {
        let mut fired = Vec::new();
        // Advance slot by slot until the wheel catches up with `now`.
        loop {
            self.collect_expired(now, &mut fired);
            let slot_end = self.slot_start + self.slot_width;
            if slot_end <= now {
                self.slot_start = slot_end;
                self.cursor = (self.cursor + 1) % self.slots.len();
            } else {
                break;
            }
        }
        fired
    }

    fn collect_expired(&mut self, now: Instant, fired: &mut Vec<K>) {
        let slot = &mut self.slots[self.cursor];
        let mut remaining = VecDeque::new();
        while let Some(e) = slot.pop_front() {
            if e.deadline <= now {
                fired.push(e.key);
                self.len -= 1;
            } else {
                remaining.push_back(e);
            }
        }
        *slot = remaining;
    }
}

/// Per-connection idle tracking for O7: records last activity and reports
/// which connections exceeded the idle limit on each sweep.
#[derive(Debug)]
pub struct IdleTracker {
    limit: Duration,
    last_activity: std::collections::HashMap<u64, Instant>,
}

impl IdleTracker {
    /// Track idleness against the given limit.
    pub fn new(limit: Duration) -> Self {
        Self {
            limit,
            last_activity: std::collections::HashMap::new(),
        }
    }

    /// Record activity (connect, read or write) on a connection.
    pub fn touch(&mut self, conn: u64, now: Instant) {
        self.last_activity.insert(conn, now);
    }

    /// Stop tracking a closed connection.
    pub fn forget(&mut self, conn: u64) {
        self.last_activity.remove(&conn);
    }

    /// Connections idle longer than the limit as of `now`. The returned
    /// connections are forgotten (the caller closes them).
    pub fn sweep(&mut self, now: Instant) -> Vec<u64> {
        let limit = self.limit;
        let expired: Vec<u64> = self
            .last_activity
            .iter()
            .filter(|(_, &t)| now.duration_since(t) > limit)
            .map(|(&c, _)| c)
            .collect();
        for c in &expired {
            self.last_activity.remove(c);
        }
        expired
    }

    /// The earliest instant at which some tracked connection becomes
    /// idle-expired, or `None` when nothing is tracked. The dispatcher
    /// uses this as its poll timeout so it sleeps exactly until the next
    /// sweep is due instead of waking on a fixed cadence.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.last_activity
            .values()
            .min()
            .map(|&t| t + self.limit)
    }

    /// Number of tracked connections.
    pub fn len(&self) -> usize {
        self.last_activity.len()
    }

    /// True when no connections are tracked.
    pub fn is_empty(&self) -> bool {
        self.last_activity.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_fires_after_deadline() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(8, Duration::from_millis(10), t0);
        w.schedule(t0, Duration::from_millis(25), "a");
        assert!(w.poll(t0 + Duration::from_millis(10)).is_empty());
        assert!(w.poll(t0 + Duration::from_millis(24)).is_empty());
        assert_eq!(w.poll(t0 + Duration::from_millis(30)), vec!["a"]);
        assert!(w.is_empty());
    }

    #[test]
    fn multiple_timers_fire_once_each() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(4, Duration::from_millis(5), t0);
        for i in 0..10u32 {
            w.schedule(t0, Duration::from_millis(i as u64 * 3), i);
        }
        assert_eq!(w.len(), 10);
        let mut all = Vec::new();
        for step in 1..=10 {
            all.extend(w.poll(t0 + Duration::from_millis(step * 4)));
        }
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        assert!(w.poll(t0 + Duration::from_secs(1)).is_empty());
    }

    #[test]
    fn long_timeouts_survive_wheel_wraparound() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(4, Duration::from_millis(1), t0);
        // 20 ms timeout on a 4 ms wheel: wraps five times.
        w.schedule(t0, Duration::from_millis(20), "late");
        assert!(w.poll(t0 + Duration::from_millis(10)).is_empty());
        assert_eq!(w.poll(t0 + Duration::from_millis(21)), vec!["late"]);
    }

    #[test]
    fn zero_delay_fires_immediately() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(4, Duration::from_millis(10), t0);
        w.schedule(t0, Duration::ZERO, 1);
        assert_eq!(w.poll(t0), vec![1]);
    }

    #[test]
    fn idle_tracker_sweeps_only_expired() {
        let t0 = Instant::now();
        let mut it = IdleTracker::new(Duration::from_millis(100));
        it.touch(1, t0);
        it.touch(2, t0 + Duration::from_millis(80));
        let expired = it.sweep(t0 + Duration::from_millis(150));
        assert_eq!(expired, vec![1]);
        assert_eq!(it.len(), 1);
        // Touching resets idleness.
        it.touch(2, t0 + Duration::from_millis(160));
        assert!(it.sweep(t0 + Duration::from_millis(200)).is_empty());
        assert!(!it.is_empty());
    }

    #[test]
    fn idle_tracker_next_deadline_is_earliest_expiry() {
        let t0 = Instant::now();
        let mut it = IdleTracker::new(Duration::from_millis(100));
        assert!(it.next_deadline().is_none());
        it.touch(1, t0 + Duration::from_millis(50));
        it.touch(2, t0);
        assert_eq!(it.next_deadline(), Some(t0 + Duration::from_millis(100)));
        it.forget(2);
        assert_eq!(it.next_deadline(), Some(t0 + Duration::from_millis(150)));
    }

    #[test]
    fn idle_tracker_forget() {
        let t0 = Instant::now();
        let mut it = IdleTracker::new(Duration::from_millis(10));
        it.touch(1, t0);
        it.forget(1);
        assert!(it.sweep(t0 + Duration::from_secs(1)).is_empty());
    }
}
