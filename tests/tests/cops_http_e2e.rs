//! End-to-end COPS-HTTP: the real framework (reactor + event processor +
//! Proactor helpers) serving a SpecWeb99-style file set over loopback
//! TCP to concurrent clients issuing persistent-connection request
//! bursts — the paper's workload, miniaturised.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use nserver_cache::{FileCache, PolicyKind, SharedFileCache};
use nserver_core::options::OverloadControl;
use nserver_core::server::ServerBuilder;
use nserver_core::transport::TcpListenerNb;
use nserver_http::{cops_http_options, HttpCodec, MemStore, StaticFileService};
use nserver_specweb::FileSet;

fn build_site(dirs: u32) -> (FileSet, MemStore) {
    let fileset = FileSet::with_dirs(dirs);
    let mut store = MemStore::new();
    for spec in fileset.files() {
        store.insert(spec.path(), fileset.synth_content(spec));
    }
    (fileset, store)
}

/// One HTTP exchange on an open connection; returns (status, body).
fn fetch(client: &mut TcpStream, path: &str, close: bool) -> (u16, Vec<u8>) {
    let conn = if close { "Connection: close\r\n" } else { "" };
    let req = format!("GET {path} HTTP/1.1\r\nHost: t\r\n{conn}\r\n");
    client.write_all(req.as_bytes()).unwrap();
    let mut acc: Vec<u8> = Vec::new();
    let mut buf = [0u8; 8192];
    let (mut status, mut body_start, mut body_len) = (0u16, 0usize, usize::MAX);
    loop {
        if body_len != usize::MAX && acc.len() >= body_start + body_len {
            break;
        }
        let n = client.read(&mut buf).unwrap();
        if n == 0 {
            break;
        }
        acc.extend_from_slice(&buf[..n]);
        if body_len == usize::MAX {
            if let Some(pos) = acc.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&acc[..pos]).to_string();
                status = head.split(' ').nth(1).unwrap().parse().unwrap();
                body_len = head
                    .lines()
                    .find(|l| l.to_ascii_lowercase().starts_with("content-length"))
                    .and_then(|l| l.split(':').nth(1))
                    .and_then(|v| v.trim().parse().ok())
                    .unwrap_or(0);
                body_start = pos + 4;
            }
        }
    }
    (status, acc[body_start.min(acc.len())..].to_vec())
}

#[test]
fn serves_specweb_fileset_with_correct_bytes() {
    let (fileset, store) = build_site(1);
    let cache = SharedFileCache::new(FileCache::new(1 << 20, PolicyKind::Lru));
    let server = ServerBuilder::new(
        cops_http_options(),
        HttpCodec::new(),
        StaticFileService::new(store, Some(cache.clone())),
    )
    .unwrap()
    .serve(TcpListenerNb::bind("127.0.0.1:0").unwrap());
    let addr = server.local_label().to_string();

    let mut client = TcpStream::connect(&addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Class 0/1 files: check exact content round-trips.
    for spec in fileset.files().iter().filter(|f| f.class.0 <= 1).take(12) {
        let (status, body) = fetch(&mut client, &spec.path(), false);
        assert_eq!(status, 200, "{}", spec.path());
        assert_eq!(body, fileset.synth_content(spec), "{}", spec.path());
    }
    // Repeat visits hit the cache.
    let warm = fileset.files()[1].path();
    let _ = fetch(&mut client, &warm, false);
    let hits_before = cache.stats().hits;
    let _ = fetch(&mut client, &warm, false);
    assert!(cache.stats().hits > hits_before);
    server.shutdown();
}

#[test]
fn persistent_connections_run_five_request_bursts() {
    let (fileset, store) = build_site(1);
    let server = ServerBuilder::new(
        cops_http_options(),
        HttpCodec::new(),
        StaticFileService::new(store, None),
    )
    .unwrap()
    .serve(TcpListenerNb::bind("127.0.0.1:0").unwrap());
    let addr = server.local_label().to_string();

    // Paper client model: connect, 5 requests, terminate — 4 clients in
    // parallel, 3 connections each.
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let addr = addr.clone();
        let paths: Vec<String> = fileset
            .files()
            .iter()
            .filter(|f| f.class.0 <= 1)
            .map(|f| f.path())
            .collect();
        handles.push(std::thread::spawn(move || {
            for _conn in 0..3 {
                let mut client = TcpStream::connect(&addr).unwrap();
                client
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .unwrap();
                for r in 0..5usize {
                    let path = &paths[(t as usize * 5 + r) % paths.len()];
                    let close = r == 4;
                    let (status, _) = fetch(&mut client, path, close);
                    assert_eq!(status, 200);
                    std::thread::sleep(Duration::from_millis(2)); // think
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.connections_accepted, 12);
    assert_eq!(stats.requests_decoded, 60);
    assert_eq!(stats.responses_sent, 60);
    server.shutdown();
}

#[test]
fn head_and_missing_and_forbidden() {
    let (_fileset, store) = build_site(1);
    let server = ServerBuilder::new(
        cops_http_options(),
        HttpCodec::new(),
        StaticFileService::new(store, None),
    )
    .unwrap()
    .serve(TcpListenerNb::bind("127.0.0.1:0").unwrap());
    let addr = server.local_label().to_string();
    let mut client = TcpStream::connect(&addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    let (status, body) = fetch(&mut client, "/missing.html", false);
    assert_eq!(status, 404);
    assert!(!body.is_empty());
    let (status, _) = fetch(&mut client, "/../secret", false);
    assert_eq!(status, 403);

    // HEAD: headers only.
    client
        .write_all(b"HEAD /dir0000/class1_1 HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut buf = [0u8; 4096];
    let mut acc = Vec::new();
    while !acc.windows(4).any(|w| w == b"\r\n\r\n") {
        let n = client.read(&mut buf).unwrap();
        assert!(n > 0);
        acc.extend_from_slice(&buf[..n]);
    }
    let text = String::from_utf8_lossy(&acc);
    assert!(text.starts_with("HTTP/1.1 200"));
    assert!(text.contains("Content-Length: 1024"));
    // No body follows: a subsequent request still works correctly.
    let (status, body) = fetch(&mut client, "/dir0000/class0_1", false);
    assert_eq!(status, 200);
    assert_eq!(body.len(), 102);
    server.shutdown();
}

#[test]
fn connection_limit_applies_to_http_server() {
    let (_fs, store) = build_site(1);
    let opts = nserver_core::options::ServerOptions {
        overload_control: OverloadControl::MaxConnections { limit: 1 },
        ..cops_http_options()
    };
    let server = ServerBuilder::new(opts, HttpCodec::new(), StaticFileService::new(store, None))
        .unwrap()
        .serve(TcpListenerNb::bind("127.0.0.1:0").unwrap());
    let addr = server.local_label().to_string();

    let mut first = TcpStream::connect(&addr).unwrap();
    first
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let (status, _) = fetch(&mut first, "/dir0000/class0_1", false);
    assert_eq!(status, 200);

    // Second client connects at TCP level (kernel backlog) but the server
    // defers accepting it while the first is open.
    let mut second = TcpStream::connect(&addr).unwrap();
    second
        .set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    second
        .write_all(b"GET /dir0000/class0_1 HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut buf = [0u8; 64];
    assert!(
        second.read(&mut buf).is_err(),
        "second connection must not be served while the first is open"
    );
    drop(first);
    // After the first disconnects, the pending connection gets served.
    let mut got = false;
    for _ in 0..100 {
        match second.read(&mut buf) {
            Ok(n) if n > 0 => {
                got = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(got, "deferred connection eventually served");
    assert!(server.stats().accepts_deferred > 0);
    server.shutdown();
}
