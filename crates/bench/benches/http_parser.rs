//! Throughput of the handwritten HTTP protocol library (the Decode and
//! Encode hook implementations of COPS-HTTP).

use std::sync::Arc;

use bytes::BytesMut;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nserver_http::{encode_response, parse_request, ParseOutcome, Response, Version};

fn bench_http(c: &mut Criterion) {
    let mut g = c.benchmark_group("http_parser");

    let simple = b"GET /dir0001/class1_5 HTTP/1.1\r\nHost: testbed\r\n\r\n";
    g.bench_function("parse_simple_get", |b| {
        b.iter(|| {
            let mut buf = BytesMut::from(&simple[..]);
            match parse_request(&mut buf) {
                ParseOutcome::Complete(req) => black_box(req),
                other => panic!("{other:?}"),
            }
        })
    });

    let mut headed = Vec::new();
    headed.extend_from_slice(b"GET /x HTTP/1.1\r\n");
    for i in 0..16 {
        headed.extend_from_slice(format!("X-Header-{i}: value-{i}\r\n").as_bytes());
    }
    headed.extend_from_slice(b"\r\n");
    g.bench_function("parse_16_headers", |b| {
        b.iter(|| {
            let mut buf = BytesMut::from(&headed[..]);
            match parse_request(&mut buf) {
                ParseOutcome::Complete(req) => black_box(req),
                other => panic!("{other:?}"),
            }
        })
    });

    let pipelined: Vec<u8> = (0..5)
        .flat_map(|i| format!("GET /f{i} HTTP/1.1\r\nHost: h\r\n\r\n").into_bytes())
        .collect();
    g.bench_function("parse_pipelined_5", |b| {
        b.iter(|| {
            let mut buf = BytesMut::from(&pipelined[..]);
            let mut n = 0;
            while let ParseOutcome::Complete(req) = parse_request(&mut buf) {
                black_box(req);
                n += 1;
            }
            assert_eq!(n, 5);
        })
    });

    let body = Arc::new(vec![0u8; 16 * 1024]);
    g.bench_function("encode_16k_response", |b| {
        b.iter(|| {
            let resp = Response::ok(Arc::clone(&body), "text/html", Version::Http11);
            let mut out = BytesMut::with_capacity(17 * 1024);
            encode_response(&resp, &mut out);
            black_box(out.len())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_http);
criterion_main!(benches);
