//! Server assembly: the runtime instantiation of the N-Server pattern
//! template.
//!
//! [`ServerBuilder`] plays the role the CO₂P₃S code generator plays in the
//! paper's generative path: given a validated [`ServerOptions`] value and
//! the application's hook objects (codec + service), it assembles exactly
//! the framework the options describe — FIFO or priority-quota event
//! queue, inline or pooled event handling, synchronous or Proactor-style
//! completions, overload gating, idle sweeps, tracing, profiling and
//! logging. (`nserver-codegen` emits this same assembly as standalone
//! source text.)

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::diag::{DiagHub, DiagSnapshot, Watchdog, WatchdogConfig, WorkerStateTable};
use crate::event::Priority;
use crate::metrics::{prometheus_text_with, LatencySnapshot, MetricsRegistry};
use crate::options::{
    CompletionMode, EventScheduling, Mode, OptionsError, OverloadControl, ServerOptions,
    ThreadAllocation,
};
use crate::overload::OverloadController;
use crate::pipeline::{Codec, Engine, Registry, Service, Work};
use crate::processor::EventProcessor;
use crate::profiling::{ServerStats, StatsSnapshot};
use crate::queue::{BlockingQueue, FifoQueue};
use crate::reactor::{DispatchNotifier, Dispatcher, PriorityPolicy, SubmitMode};
use crate::scheduler::PriorityQuotaQueue;
use crate::trace::{AccessLogger, DebugTracer};
use crate::transport::{Listener, Poller};

/// Builder for a configured N-Server instance.
pub struct ServerBuilder<C: Codec, S: Service<C>> {
    options: ServerOptions,
    codec: Arc<C>,
    service: Arc<S>,
    priority_policy: PriorityPolicy,
    logger: Option<AccessLogger>,
    helper_threads: usize,
    stats: Option<Arc<ServerStats>>,
    metrics: Option<Arc<MetricsRegistry>>,
    diag: Option<DiagHub>,
    watchdog: Option<WatchdogConfig>,
}

impl<C: Codec, S: Service<C>> ServerBuilder<C, S> {
    /// Validate the options and begin assembly.
    pub fn new(options: ServerOptions, codec: C, service: S) -> Result<Self, OptionsError> {
        options.validate()?;
        Ok(Self {
            options,
            codec: Arc::new(codec),
            service: Arc::new(service),
            priority_policy: Arc::new(|_| Priority::HIGHEST),
            logger: None,
            helper_threads: 4,
            stats: None,
            metrics: None,
            diag: None,
            watchdog: None,
        })
    }

    /// Inject a pre-made counter registry so application code created
    /// before `serve` (a `/server-status` route, an FTP `STAT` handler)
    /// can share the running server's counters. Defaults to a fresh
    /// registry.
    pub fn stats(mut self, stats: Arc<ServerStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Inject a pre-made latency-metrics registry (same sharing purpose
    /// as [`stats`](Self::stats)). Defaults to an enabled registry when
    /// O11 = Yes, a disabled (no-op) one otherwise.
    pub fn metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Set the accept-time priority policy (O8): map a peer label to a
    /// priority level. The Fig. 5 experiment keys this on client IP.
    pub fn priority_policy(
        mut self,
        policy: impl Fn(&str) -> Priority + Send + Sync + 'static,
    ) -> Self {
        self.priority_policy = Arc::new(policy);
        self
    }

    /// Set the access-log sink (effective only with O12 = Yes).
    pub fn logger(mut self, logger: AccessLogger) -> Self {
        self.logger = Some(logger);
        self
    }

    /// Size of the Proactor helper pool (O4 = Asynchronous only).
    pub fn helper_threads(mut self, n: usize) -> Self {
        self.helper_threads = n.max(1);
        self
    }

    /// Inject a pre-made diagnostics hub so application code created
    /// before `serve` (a `/debug/snapshot` route, an FTP `SITE DUMP`
    /// handler) can share the running server's flight recorder. `serve`
    /// wires the tracer, worker table, queue gauges and overload
    /// controller into it. Defaults to a fresh hub, reachable through
    /// [`ServerHandle::diag`]. When a hub is injected and no explicit
    /// stats/metrics registries are, the hub's registries become the
    /// server's.
    pub fn diag(mut self, hub: DiagHub) -> Self {
        self.diag = Some(hub);
        self
    }

    /// Spawn a watchdog thread over the diagnostics hub with this
    /// configuration. When `queue_saturation` is left `None` and O12
    /// watermark overload control is configured, the high watermark is
    /// used as the saturation threshold.
    pub fn watchdog(mut self, cfg: WatchdogConfig) -> Self {
        self.watchdog = Some(cfg);
        self
    }

    /// Start serving on the given listener. Returns a handle owning the
    /// framework threads.
    pub fn serve<L: Listener>(self, listener: L) -> ServerHandle<C, S> {
        let opts = &self.options;
        let local_label = listener.local_label();

        // --- Crosscut: O10 (tracer), O11/O12 (stats, logger). ---
        let tracer = match opts.mode {
            Mode::Debug => DebugTracer::enabled(64 * 1024),
            Mode::Production => DebugTracer::disabled(),
        };
        let stats = self
            .stats
            .clone()
            .or_else(|| self.diag.as_ref().map(|d| Arc::clone(d.stats())))
            .unwrap_or_else(ServerStats::new_shared);
        let metrics = self
            .metrics
            .clone()
            .or_else(|| self.diag.as_ref().map(|d| Arc::clone(d.metrics())))
            .unwrap_or_else(|| {
                if opts.profiling {
                    MetricsRegistry::enabled()
                } else {
                    MetricsRegistry::disabled()
                }
            });
        let logger = if opts.logging {
            self.logger.clone()
        } else {
            None
        };

        // --- Diagnostics: flight-recorder hub + worker state table. The
        // table is sized for every thread that can hold a slot: all
        // dispatchers plus the Event Processor's worst-case pool.
        let max_workers = if opts.separate_handler_pool {
            match opts.thread_allocation {
                ThreadAllocation::Static { threads } => threads.max(1),
                ThreadAllocation::Dynamic { min, max, .. } => max.max(min.max(1)),
            }
        } else {
            0
        };
        let diag = self
            .diag
            .clone()
            .unwrap_or_else(|| DiagHub::new(Arc::clone(&stats), Arc::clone(&metrics)));

        // --- Crosscut: O4 (Proactor helpers + completion channel). ---
        let (helper, completion_tx, completion_rx) = match opts.completion_mode {
            CompletionMode::Asynchronous => {
                let (tx, rx) = crossbeam::channel::unbounded();
                (
                    Some(Arc::new(crate::proactor::HelperPool::new(
                        self.helper_threads,
                    ))),
                    Some(tx),
                    Some(rx),
                )
            }
            CompletionMode::Synchronous => (None, None, None),
        };

        // --- O1: readiness demultiplexing fabric. Each dispatcher gets a
        // poller; its waker plus a flush channel form the notifier that
        // lets workers (and the Proactor, and shutdown) pull the owning
        // dispatcher out of its blocking wait.
        let n_dispatchers = opts.dispatcher_threads.count();
        let mut pollers = Vec::with_capacity(n_dispatchers);
        let mut flush_rxs = Vec::with_capacity(n_dispatchers);
        let mut notify_targets = Vec::with_capacity(n_dispatchers);
        for _ in 0..n_dispatchers {
            let poller = L::new_poller().expect("create readiness poller");
            let (flush_tx, flush_rx) = crossbeam::channel::unbounded();
            notify_targets.push((flush_tx, poller.waker()));
            pollers.push(poller);
            flush_rxs.push(flush_rx);
        }
        let notifier = DispatchNotifier::new(notify_targets);

        let worker_table = WorkerStateTable::new(n_dispatchers + max_workers + 2);
        diag.wire_tracer(tracer.clone());
        diag.wire_workers(Arc::clone(&worker_table));

        let registry: Registry = Arc::new(parking_lot::RwLock::new(Default::default()));
        let engine = Arc::new(Engine {
            codec: Arc::clone(&self.codec),
            service: Arc::clone(&self.service),
            registry: Arc::clone(&registry),
            stats: Arc::clone(&stats),
            metrics: Arc::clone(&metrics),
            tracer: tracer.clone(),
            logger,
            helper,
            completion_tx,
            notifier: notifier.clone(),
        });

        // --- Crosscut: O8 (queue discipline) and O2 (Event Processor). ---
        let processor = if opts.separate_handler_pool {
            let queue: Arc<BlockingQueue<Work<C::Response>>> = match &opts.event_scheduling {
                EventScheduling::No => BlockingQueue::new(Box::new(FifoQueue::new())),
                EventScheduling::Yes { quotas } => {
                    BlockingQueue::new(Box::new(PriorityQuotaQueue::new(quotas.clone())))
                }
            };
            // O11: stamp each item at enqueue so the dequeue side can
            // account queue-wait time (no-op while metrics are disabled).
            queue.set_wait_metrics(Arc::clone(&metrics));
            let handler = {
                let engine = Arc::clone(&engine);
                // O11: sample the queue depth as each work item is picked
                // up — the gauge's decaying high-water mark tracks bursts.
                let depth = queue.len_gauge();
                Arc::new(move |w: Work<C::Response>| {
                    engine
                        .metrics
                        .observe_queue_depth(depth.load(Ordering::Relaxed) as u64);
                    engine.handle_work(w)
                })
            };
            Some(EventProcessor::start_with_diag(
                opts.thread_allocation,
                queue,
                handler,
                Some(Arc::clone(&worker_table)),
            ))
        } else {
            None
        };
        if let Some(p) = &processor {
            let waiters_src = Arc::clone(p.queue());
            diag.wire_queue(
                p.queue().len_gauge(),
                Arc::new(move || waiters_src.waiters()),
            );
            let panics_src = Arc::clone(p);
            diag.wire_extra_panics(Arc::new(move || panics_src.handler_panics() as u64));
        }

        // --- Crosscut: O9 (overload controller). ---
        let overload = match opts.overload_control {
            OverloadControl::No => OverloadController::disabled(),
            OverloadControl::MaxConnections { limit } => {
                OverloadController::with_max_connections(limit)
            }
            OverloadControl::Watermark { high, low } => {
                let queue = processor
                    .as_ref()
                    .expect("validated: watermark requires O2=Yes")
                    .queue();
                // The gated acceptor sits in a poller wait while paused;
                // wake it the moment the queue drains to the low mark so
                // resuming does not ride on the periodic re-check alone.
                let wake = notifier.clone();
                queue.set_drain_hook(low, move || wake.wake_completion_sink());
                OverloadController::with_watermark(queue.len_gauge(), high, low)
            }
        };
        let overload = Arc::new(Mutex::new(overload));
        diag.wire_overload(Arc::clone(&overload));

        // --- Watchdog: periodic invariant checks over the wired hub. The
        // ping closure pulls dispatchers out of their poller waits so a
        // still wakeup counter can be told apart from a genuine stall.
        let watchdog = self.watchdog.clone().map(|mut cfg| {
            if cfg.queue_saturation.is_none() {
                if let OverloadControl::Watermark { high, .. } = opts.overload_control {
                    cfg.queue_saturation = Some(high);
                }
            }
            let ping = {
                let n = notifier.clone();
                Arc::new(move || n.wake_all()) as Arc<dyn Fn() + Send + Sync>
            };
            Watchdog::spawn(cfg, diag.clone(), Some(ping))
        });

        // --- O1: dispatcher threads. ---
        let stop = Arc::new(AtomicBool::new(false));
        let next_conn_id = Arc::new(AtomicU64::new(1));
        let mut inj_channels = Vec::with_capacity(n_dispatchers);
        for _ in 0..n_dispatchers {
            inj_channels.push(crossbeam::channel::unbounded());
        }
        let inj_txs: Vec<_> = inj_channels.iter().map(|(tx, _)| tx.clone()).collect();

        let submit = match &processor {
            Some(p) => SubmitMode::Pool(Arc::clone(p)),
            None => SubmitMode::Inline,
        };

        let idle_limit = opts.idle_shutdown_ms.map(Duration::from_millis);
        let stage_deadlines = opts.stage_deadlines;
        let drain = Arc::new(AtomicBool::new(false));

        let mut dispatchers = Vec::with_capacity(n_dispatchers);
        let mut listener_slot = Some(listener);
        let parts = inj_channels
            .into_iter()
            .zip(pollers.into_iter().zip(flush_rxs));
        for (index, ((_, rx), (poller, flush_rx))) in parts.enumerate() {
            let d = Dispatcher::<C, S, L> {
                index,
                engine: Arc::clone(&engine),
                listener: if index == 0 {
                    listener_slot.take()
                } else {
                    None
                },
                poller,
                inj_rx: rx,
                inj_txs: inj_txs.clone(),
                flush_rx,
                notifier: notifier.clone(),
                submit: submit.clone(),
                overload: Arc::clone(&overload),
                completion_rx: if index == 0 {
                    completion_rx.clone()
                } else {
                    None
                },
                priority_policy: Arc::clone(&self.priority_policy),
                idle_limit,
                stage_deadlines,
                stop: Arc::clone(&stop),
                drain: Arc::clone(&drain),
                next_conn_id: Arc::clone(&next_conn_id),
                worker_table: Some(Arc::clone(&worker_table)),
            };
            dispatchers.push(
                std::thread::Builder::new()
                    .name(format!("nserver-dispatcher-{index}"))
                    .spawn(move || d.run())
                    .expect("spawn dispatcher"),
            );
        }

        ServerHandle {
            engine,
            processor,
            stop,
            drain,
            notifier,
            dispatchers,
            local_label,
            options: self.options,
            diag,
            watchdog,
        }
    }
}

/// A running server: owns the dispatcher threads, the Event Processor and
/// the Proactor helpers.
pub struct ServerHandle<C: Codec, S: Service<C>> {
    engine: Arc<Engine<C, S>>,
    processor: Option<Arc<EventProcessor<Work<C::Response>>>>,
    stop: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    notifier: DispatchNotifier,
    dispatchers: Vec<JoinHandle<()>>,
    local_label: String,
    options: ServerOptions,
    diag: DiagHub,
    watchdog: Option<Watchdog>,
}

impl<C: Codec, S: Service<C>> ServerHandle<C, S> {
    /// Profiling snapshot (O11 counters are always maintained). Handler
    /// panics are the sum of two disjoint sources: panics the pipeline
    /// caught around `Service::handle`, and panics that escaped a worker
    /// entirely and were absorbed by the Event Processor loop.
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.engine.stats.snapshot();
        if let Some(p) = &self.processor {
            snap.handler_panics += p.handler_panics() as u64;
        }
        snap
    }

    /// The debug tracer (records only in O10 = Debug mode).
    pub fn tracer(&self) -> &DebugTracer {
        &self.engine.tracer
    }

    /// The latency-metrics registry (a disabled no-op when O11 = No and
    /// none was injected).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.engine.metrics)
    }

    /// Per-stage latency snapshot (empty histograms when O11 = No).
    pub fn latency(&self) -> LatencySnapshot {
        self.engine.metrics.latency_snapshot()
    }

    /// Counters + per-stage latencies in the Prometheus text exposition
    /// format (what `/server-status` and FTP `STAT` serve), extended
    /// with every optional family the diagnostics hub has wired.
    pub fn prometheus(&self) -> String {
        prometheus_text_with(&self.stats(), &self.latency(), &self.diag.extras())
    }

    /// The diagnostics hub: the flight recorder `serve` wired to this
    /// server's tracer, worker table, queue gauges and overload state.
    pub fn diag(&self) -> &DiagHub {
        &self.diag
    }

    /// Capture an on-demand diagnostic snapshot (what `/debug/snapshot`
    /// and FTP `SITE DUMP` serve).
    pub fn snapshot(&self, reason: &str) -> DiagSnapshot {
        self.diag.capture(reason)
    }

    /// Whether the watchdog (when one was configured) has ever fired.
    pub fn watchdog_fired(&self) -> bool {
        self.watchdog.as_ref().is_some_and(|w| w.has_fired())
    }

    /// Currently open connections.
    pub fn open_connections(&self) -> usize {
        self.engine.registry.read().len()
    }

    /// The address the server is listening on (e.g. `127.0.0.1:PORT`).
    pub fn local_label(&self) -> &str {
        &self.local_label
    }

    /// The options the server was generated from.
    pub fn options(&self) -> &ServerOptions {
        &self.options
    }

    /// Live Event Processor workers (0 when O2 = No).
    pub fn live_workers(&self) -> usize {
        self.processor.as_ref().map_or(0, |p| p.live_workers())
    }

    /// Graceful shutdown: stop accepting, let in-flight events finish and
    /// replies drain, then stop. Connections that have not quiesced when
    /// `deadline` expires are closed forcibly by the normal shutdown path.
    /// Returns `true` when every connection drained within the deadline.
    pub fn shutdown_graceful(self, deadline: Duration) -> bool {
        self.drain.store(true, Ordering::Relaxed);
        self.notifier.wake_all();
        let start = std::time::Instant::now();
        let mut drained = self.open_connections() == 0;
        while !drained && start.elapsed() < deadline {
            std::thread::sleep(Duration::from_millis(5));
            drained = self.open_connections() == 0;
        }
        self.shutdown();
        drained
    }

    /// Stop accepting, close every connection, drain the event queue, and
    /// join all framework threads.
    pub fn shutdown(mut self) {
        // Quiet the watchdog first so teardown (a deliberately stalled
        // world from its point of view) cannot fire spurious snapshots.
        if let Some(mut w) = self.watchdog.take() {
            w.stop();
        }
        self.stop.store(true, Ordering::Relaxed);
        // Dispatchers block in their pollers; pull each one out so it
        // sees the stop flag immediately.
        self.notifier.wake_all();
        for d in self.dispatchers.drain(..) {
            let _ = d.join();
        }
        if let Some(p) = self.processor.take() {
            p.shutdown();
        }
        // Helper pool (if any) joins when the engine drops.
    }
}
