//! # nserver-specweb
//!
//! SpecWeb99-style workload generation for the COPS-HTTP experiments.
//!
//! The paper: "The file size and access frequency distribution follows the
//! SpecWeb99 benchmark. A file set of size 204.8 MB is created using the
//! SpecWeb99 suite, with an average file size of 16 KB." And the client
//! model: "establish a connection to the Web server, issue 5 HTTP requests
//! (to simulate HTTP 1.1 persistent connections), and then terminate the
//! connection. To simulate the wide-area transfer delay, there is a
//! 20 milliseconds pause after receiving each page."
//!
//! This crate reproduces that structure: the SpecWeb99 directory layout
//! (per directory, four size classes of nine files each), the class access
//! mix (35 / 50 / 14 / 1 %), Zipf popularity across directories, and the
//! 5-requests + 20 ms-think-time client configuration.

pub mod access;
pub mod driver;
pub mod fileset;

pub use access::{AccessSampler, Zipf};
pub use driver::{DriverConfig, DriverReport};
pub use fileset::{FileClass, FileSet, FileSpec};

/// The paper's client behaviour parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Requests issued per connection (persistent-connection emulation).
    pub requests_per_connection: u32,
    /// Pause after receiving each page, in milliseconds.
    pub think_time_ms: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            requests_per_connection: 5,
            think_time_ms: 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_client_config_matches_paper() {
        let c = ClientConfig::default();
        assert_eq!(c.requests_per_connection, 5);
        assert_eq!(c.think_time_ms, 20);
    }
}
