//! Disk and OS buffer-cache models.
//!
//! The paper's COPS-HTTP experiment gives the file system "a memory buffer
//! of size 80 MB" in front of the disk, with a 204.8 MB file set — so a
//! substantial fraction of reads hit the OS buffer cache. Misses pay a seek
//! plus transfer at disk bandwidth through a single FIFO disk head.

use std::collections::{BTreeMap, HashMap};

use crate::time::SimTime;

/// An LRU byte-bounded buffer cache tracking file *identities and sizes*
/// only (the simulator never materialises file contents).
#[derive(Debug, Clone)]
pub struct BufferCache {
    capacity: u64,
    used: u64,
    tick: u64,
    by_recency: BTreeMap<u64, u64>,  // tick -> file id
    files: HashMap<u64, (u64, u64)>, // file id -> (tick, size)
    hits: u64,
    misses: u64,
}

impl BufferCache {
    /// Create a buffer cache bounded to `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            tick: 0,
            by_recency: BTreeMap::new(),
            files: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Record an access to `file` of `size` bytes. Returns `true` on a hit.
    /// A miss brings the file in, evicting LRU files as needed; files larger
    /// than the cache simply bypass it.
    pub fn access(&mut self, file: u64, size: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        if let Some((old_tick, _)) = self.files.get(&file).copied() {
            self.by_recency.remove(&old_tick);
            self.by_recency.insert(tick, file);
            self.files.insert(file, (tick, size));
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if size > self.capacity {
            return false;
        }
        while self.used + size > self.capacity {
            let (&victim_tick, &victim) = self
                .by_recency
                .iter()
                .next()
                .expect("used > 0 implies entries exist");
            self.by_recency.remove(&victim_tick);
            let (_, vsize) = self.files.remove(&victim).expect("index out of sync");
            self.used -= vsize;
        }
        self.by_recency.insert(tick, file);
        self.files.insert(file, (tick, size));
        self.used += size;
        false
    }

    /// Hit rate over the cache lifetime.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Resident file count.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when no files are resident.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

/// A single-head FIFO disk.
#[derive(Debug, Clone)]
pub struct Disk {
    free_at: SimTime,
    seek: SimTime,
    bytes_per_sec: u64,
    busy_accum_us: u64,
    reads: u64,
    stalls: u64,
}

impl Disk {
    /// A disk with the given average positioning time and transfer rate.
    pub fn new(seek: SimTime, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0);
        Self {
            free_at: SimTime::ZERO,
            seek,
            bytes_per_sec,
            busy_accum_us: 0,
            reads: 0,
            stalls: 0,
        }
    }

    /// Inject a stall: from `at` (or from whenever the current queue
    /// drains, if later) the head services nothing for `duration`. Queued
    /// and subsequently issued reads all complete behind the stall — the
    /// fault the chaos experiments use to saturate the disk queue. The
    /// stall counts as busy time: a stalled head is indistinguishable from
    /// a saturated one to the utilization probe.
    pub fn inject_stall(&mut self, at: SimTime, duration: SimTime) {
        self.free_at = self.free_at.max(at) + duration;
        self.busy_accum_us += duration.as_micros();
        self.stalls += 1;
    }

    /// Issue a read of `bytes` at `now`; returns its completion time.
    pub fn read(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.free_at.max(now);
        let service = self.seek + SimTime::from_micros(bytes * 1_000_000 / self.bytes_per_sec);
        self.free_at = start + service;
        self.busy_accum_us += service.as_micros();
        self.reads += 1;
        self.free_at
    }

    /// How long a read arriving at `now` would queue before service.
    pub fn queue_delay(&self, now: SimTime) -> SimTime {
        self.free_at.saturating_sub(now)
    }

    /// Fraction of `elapsed` spent servicing reads.
    pub fn utilization(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            0.0
        } else {
            self.busy_accum_us as f64 / elapsed.as_micros() as f64
        }
    }

    /// Reads issued so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Stalls injected so far.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_cache_hits_on_repeat_access() {
        let mut c = BufferCache::new(100);
        assert!(!c.access(1, 50));
        assert!(c.access(1, 50));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn buffer_cache_evicts_lru() {
        let mut c = BufferCache::new(100);
        c.access(1, 40);
        c.access(2, 40);
        c.access(1, 40); // refresh 1
        c.access(3, 40); // evicts 2
        assert!(c.access(1, 40));
        assert!(!c.access(2, 40)); // 2 was evicted (this re-inserts it)
        assert!(c.used_bytes() <= 100);
    }

    #[test]
    fn oversized_file_bypasses_cache() {
        let mut c = BufferCache::new(100);
        assert!(!c.access(1, 1000));
        assert!(!c.access(1, 1000));
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_invariant_under_mixed_sizes() {
        let mut c = BufferCache::new(1000);
        for i in 0..200 {
            c.access(i % 17, 100 + (i % 7) * 50);
            assert!(c.used_bytes() <= 1000);
        }
        assert!(!c.is_empty());
    }

    #[test]
    fn disk_service_time() {
        let mut d = Disk::new(SimTime::from_millis(5), 20_000_000);
        // 2 MB read: 5 ms seek + 100 ms transfer.
        let done = d.read(SimTime::ZERO, 2_000_000);
        assert_eq!(done, SimTime::from_millis(105));
    }

    #[test]
    fn disk_is_fifo() {
        let mut d = Disk::new(SimTime::from_millis(5), 20_000_000);
        let a = d.read(SimTime::ZERO, 1_000_000); // 5 + 50 = 55ms
        let b = d.read(SimTime::ZERO, 1_000_000); // queued: 110ms
        assert_eq!(a, SimTime::from_millis(55));
        assert_eq!(b, SimTime::from_millis(110));
        assert_eq!(d.queue_delay(SimTime::ZERO), SimTime::from_millis(110));
        assert_eq!(d.reads(), 2);
    }

    #[test]
    fn injected_stall_blocks_subsequent_reads() {
        let mut d = Disk::new(SimTime::from_millis(5), 20_000_000);
        d.inject_stall(SimTime::ZERO, SimTime::from_millis(100));
        // 1 MB read: queues behind the stall, then 5 + 50 ms of service.
        let done = d.read(SimTime::ZERO, 1_000_000);
        assert_eq!(done, SimTime::from_millis(155));
        assert_eq!(d.stalls(), 1);
        // A stall injected mid-queue extends the backlog, not the past.
        d.inject_stall(SimTime::from_millis(10), SimTime::from_millis(20));
        let done2 = d.read(SimTime::from_millis(10), 0);
        assert_eq!(done2, SimTime::from_millis(180));
    }

    #[test]
    fn disk_utilization() {
        let mut d = Disk::new(SimTime::from_millis(10), 1_000_000);
        d.read(SimTime::ZERO, 0); // 10ms seek only
        let u = d.utilization(SimTime::from_millis(20));
        assert!((u - 0.5).abs() < 1e-9);
    }
}
