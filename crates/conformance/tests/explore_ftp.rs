//! FTP schedule exploration: generated control-channel schedules run
//! against the real COPS-FTP pipeline, every trace checked against the
//! command-state-machine model. Three seed bands × 80 seeds = 240
//! schedules in the default run.

use conformance::{explore, seed_range, Proto};

fn explore_band(lo: u64, hi: u64) {
    let seeds = seed_range(lo, hi);
    let want = seeds.len();
    let summary = explore(Proto::Ftp, seeds);
    assert_eq!(summary.runs, want);
    assert!(
        summary.distinct_schedules * 100 >= want * 95,
        "only {} distinct schedules in {} runs",
        summary.distinct_schedules,
        want
    );
}

#[test]
fn ftp_band_a() {
    explore_band(5000, 5080);
}

#[test]
fn ftp_band_b() {
    explore_band(6000, 6080);
}

#[test]
fn ftp_band_c() {
    explore_band(7000, 7080);
}
