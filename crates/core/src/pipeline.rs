//! The request-handling pipeline (Fig. 1 and Fig. 2 of the paper) and the
//! engine that executes it.
//!
//! Every network server iterates five steps per request: **Read Request →
//! Decode Request → Handle Request → Encode Reply → Send Reply**. Read and
//! Send are "almost the same across different network server applications"
//! and belong to the framework; Decode/Handle/Encode are the application-
//! dependent hook methods a programmer supplies:
//!
//! * [`Codec`] — the Decode Request and Encode Reply hooks (omitted
//!   entirely in the O3 = No structural variation, Fig. 2, via
//!   [`RawCodec`]),
//! * [`Service`] — the Handle Request hook, returning an [`Action`].
//!
//! The [`Engine`] is the generated framework's concurrency heart: it runs
//! hooks on Event Processor workers, emulates non-blocking operations via
//! the Proactor helper pool (O4 = Asynchronous) or blocks in place (O4 =
//! Synchronous), and guarantees replies leave each connection **in request
//! order** even when blocking operations complete out of order — that is
//! what the Asynchronous Completion Token sequence numbers are for.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::BytesMut;
use crossbeam::channel::Sender;
use parking_lot::{Mutex, RwLock};

use crate::diag;
use crate::event::{CompletionToken, ConnId, EventKind, Priority};
use crate::metrics::{MetricsRegistry, Stage};
use crate::proactor::HelperPool;
use crate::profiling::ServerStats;
use crate::reactor::DispatchNotifier;
use crate::trace::{AccessLogger, DebugTracer, SpanEvent};

/// A protocol error raised by a codec; the framework closes the offending
/// connection and counts the error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

/// Per-connection decoder scratch, guarded by the same lock that
/// serializes the decode loop. Codecs that scan the inbox for a frame
/// delimiter record how far they have scanned so each newly arrived byte
/// is examined once instead of rescanning the whole buffer (the O(n²)
/// slow-loris pathology).
#[derive(Debug, Default)]
pub struct DecodeState {
    /// Prefix of the inbox already scanned without finding a frame
    /// boundary; the next scan resumes near here instead of at offset 0.
    /// Codecs must reset this when they consume bytes or fail.
    pub scanned: usize,
}

/// One contiguous piece of an encoded reply.
///
/// `Bytes` segments own their data (response heads, control replies);
/// `Shared` segments reference a cached payload through its `Arc`, so
/// queueing a response body never copies it — the dispatcher writes to
/// the socket straight from the cache's allocation.
pub enum OutSegment {
    /// Owned bytes.
    Bytes(BytesMut),
    /// Zero-copy window into shared payload bytes; `offset` is how much
    /// has already been written to the socket.
    Shared {
        /// The shared payload (typically a cached file body).
        data: Arc<Vec<u8>>,
        /// Bytes of `data` already transmitted.
        offset: usize,
    },
}

impl OutSegment {
    fn remaining(&self) -> usize {
        match self {
            OutSegment::Bytes(b) => b.len(),
            OutSegment::Shared { data, offset } => data.len() - offset,
        }
    }

    fn chunk(&self) -> &[u8] {
        match self {
            OutSegment::Bytes(b) => &b[..],
            OutSegment::Shared { data, offset } => &data[*offset..],
        }
    }

    fn advance(&mut self, n: usize) {
        match self {
            OutSegment::Bytes(b) => {
                let _ = b.split_to(n);
            }
            OutSegment::Shared { offset, .. } => *offset += n,
        }
    }
}

/// An encoded response: an ordered list of segments produced by
/// [`Codec::encode_reply`] and queued whole into the [`Outbox`] once its
/// sequence number becomes contiguous.
#[derive(Default)]
pub struct EncodedReply {
    segments: Vec<OutSegment>,
}

impl EncodedReply {
    /// Empty reply.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append owned bytes (empty buffers are dropped).
    pub fn push_bytes(&mut self, bytes: BytesMut) {
        if !bytes.is_empty() {
            self.segments.push(OutSegment::Bytes(bytes));
        }
    }

    /// Append a shared payload without copying it (empty payloads are
    /// dropped).
    pub fn push_shared(&mut self, data: Arc<Vec<u8>>) {
        if !data.is_empty() {
            self.segments.push(OutSegment::Shared { data, offset: 0 });
        }
    }

    /// Total bytes across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(OutSegment::remaining).sum()
    }

    /// Whether the reply carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

/// The per-connection transmit queue: a sequence of segments rather than
/// one flat buffer, so cached bodies are written to the socket straight
/// from their `Arc` allocation. Byte-for-byte the wire output is
/// identical to the old flat `BytesMut` outbox; only the bookkeeping
/// (chunked `front_chunk`/`advance` instead of `split_to`) differs.
#[derive(Default)]
pub struct Outbox {
    segments: VecDeque<OutSegment>,
    /// Total unsent bytes, maintained incrementally so `len` is O(1).
    len: usize,
}

impl Outbox {
    /// Empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total unsent bytes queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop everything queued (connection teardown paths).
    pub fn clear(&mut self) {
        self.segments.clear();
        self.len = 0;
    }

    /// Append raw bytes, coalescing into a trailing owned segment.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        self.len += bytes.len();
        if let Some(OutSegment::Bytes(tail)) = self.segments.back_mut() {
            tail.extend_from_slice(bytes);
        } else {
            self.segments
                .push_back(OutSegment::Bytes(BytesMut::from(bytes)));
        }
    }

    /// Queue an encoded reply's segments in order.
    pub fn push_reply(&mut self, reply: EncodedReply) {
        for seg in reply.segments {
            self.len += seg.remaining();
            self.segments.push_back(seg);
        }
    }

    /// The first unsent contiguous chunk, if any. Exhausted segments are
    /// popped by [`Outbox::advance`], so the front is always non-empty.
    pub fn front_chunk(&self) -> Option<&[u8]> {
        self.segments.front().map(OutSegment::chunk)
    }

    /// Record that `n` bytes from the front were written, popping
    /// segments as they complete.
    pub fn advance(&mut self, mut n: usize) {
        debug_assert!(n <= self.len, "advance past end of outbox");
        self.len -= n.min(self.len);
        while n > 0 {
            let Some(front) = self.segments.front_mut() else {
                return;
            };
            let take = n.min(front.remaining());
            front.advance(take);
            n -= take;
            if front.remaining() == 0 {
                self.segments.pop_front();
            }
        }
    }

    /// Copy out all unsent bytes (test and diagnostic helper — the hot
    /// path never flattens the queue).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.len);
        for seg in &self.segments {
            v.extend_from_slice(seg.chunk());
        }
        v
    }
}

/// The Decode Request / Encode Reply hook pair (template option O3).
pub trait Codec: Send + Sync + 'static {
    /// Decoded request type.
    type Request: Send + 'static;
    /// Response type produced by the service.
    type Response: Send + 'static;

    /// Try to decode one request from the front of `buf`, consuming its
    /// bytes. `Ok(None)` means "need more data".
    fn decode(&self, buf: &mut BytesMut) -> Result<Option<Self::Request>, ProtocolError>;

    /// Encode one response onto `out`.
    fn encode(&self, resp: &Self::Response, out: &mut BytesMut) -> Result<(), ProtocolError>;

    /// Like [`Codec::decode`], but with per-connection [`DecodeState`]
    /// scratch so delimiter scans can resume where the previous call
    /// stopped. The framework always decodes through this method; the
    /// default ignores the state and delegates to [`Codec::decode`].
    fn decode_with(
        &self,
        buf: &mut BytesMut,
        _state: &mut DecodeState,
    ) -> Result<Option<Self::Request>, ProtocolError> {
        self.decode(buf)
    }

    /// Encode one response as a segmented [`EncodedReply`]. The default
    /// funnels through [`Codec::encode`] into one owned segment; codecs
    /// whose responses carry a large shared payload (HTTP file bodies)
    /// override this to push the payload `Arc` as a zero-copy segment.
    fn encode_reply(
        &self,
        resp: &Self::Response,
        out: &mut EncodedReply,
    ) -> Result<(), ProtocolError> {
        let mut buf = BytesMut::new();
        self.encode(resp, &mut buf)?;
        out.push_bytes(buf);
        Ok(())
    }
}

/// The Fig. 2 structural variation (O3 = No): no decoding or encoding —
/// requests are raw byte chunks and responses are raw bytes. Used by
/// trivial servers (echo, time-of-day) where framing is the application's
/// business.
#[derive(Debug, Default, Clone, Copy)]
pub struct RawCodec;

impl Codec for RawCodec {
    type Request = Vec<u8>;
    type Response = Vec<u8>;

    fn decode(&self, buf: &mut BytesMut) -> Result<Option<Vec<u8>>, ProtocolError> {
        if buf.is_empty() {
            Ok(None)
        } else {
            let bytes = buf.split().to_vec();
            Ok(Some(bytes))
        }
    }

    fn encode(&self, resp: &Vec<u8>, out: &mut BytesMut) -> Result<(), ProtocolError> {
        out.extend_from_slice(resp);
        Ok(())
    }
}

/// What the Handle Request hook tells the framework to do.
pub enum Action<R> {
    /// Encode and send this reply.
    Reply(R),
    /// Send this reply, then close the connection.
    ReplyClose(R),
    /// The request produced no reply (e.g. a pipelined command folded into
    /// a later response).
    NoReply,
    /// Close the connection without replying.
    Close,
    /// A blocking operation (file read, database access…): the framework
    /// runs the closure off the event loop — on the Proactor helper pool
    /// under O4 = Asynchronous, or in place under O4 = Synchronous — and
    /// sends the returned reply when it completes.
    Defer(Box<dyn FnOnce() -> R + Send + 'static>),
    /// Like [`Action::Defer`], but the connection closes after the reply.
    DeferClose(Box<dyn FnOnce() -> R + Send + 'static>),
}

impl<R> fmt::Debug for Action<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Action::Reply(_) => "Reply",
            Action::ReplyClose(_) => "ReplyClose",
            Action::NoReply => "NoReply",
            Action::Close => "Close",
            Action::Defer(_) => "Defer",
            Action::DeferClose(_) => "DeferClose",
        };
        f.write_str(name)
    }
}

/// Connection context passed to every hook invocation.
#[derive(Debug, Clone)]
pub struct ConnCtx {
    /// Connection id.
    pub id: ConnId,
    /// Peer label (IP:port for TCP).
    pub peer: String,
    /// Scheduling priority assigned at accept time (option O8).
    pub priority: Priority,
}

/// The Handle Request hook (plus the optional connection-open hook for
/// protocols where the server speaks first, like FTP's `220` greeting).
pub trait Service<C: Codec>: Send + Sync + 'static {
    /// Handle one decoded request.
    fn handle(&self, ctx: &ConnCtx, req: C::Request) -> Action<C::Response>;

    /// Called when a connection is accepted; a returned response is sent
    /// immediately (server-speaks-first protocols).
    fn on_open(&self, _ctx: &ConnCtx) -> Option<C::Response> {
        None
    }

    /// Called when a connection closes (either side).
    fn on_close(&self, _ctx: &ConnCtx) {}
}

/// Per-connection state shared between the dispatcher (which owns the
/// socket) and the Event Processor workers (which run the hooks).
pub struct ConnShared {
    /// Connection id.
    pub id: ConnId,
    /// Peer label.
    pub peer: String,
    /// Scheduling priority (O8 crosscuts the Communicator Component with
    /// exactly this field, per Table 2).
    pub priority: Priority,
    /// Bytes read from the socket, awaiting decode.
    pub inbox: Mutex<BytesMut>,
    /// Encoded reply segments awaiting transmission.
    pub outbox: Mutex<Outbox>,
    /// Close once the outbox drains.
    pub closing: AtomicBool,
    /// The peer half-closed (FIN observed): no further request bytes can
    /// ever arrive. Set by the dispatcher, read by the decode loop — a
    /// partial request still in the inbox at that point can never
    /// complete, so the connection closes instead of idling until the O7
    /// sweep.
    pub peer_eof: AtomicBool,
    /// The stream failed hard (peer reset): the sink is dead. Replies
    /// completed after this point are discarded instead of queued, and the
    /// dispatcher never attempts another write — writing a response to a
    /// reset peer is a protocol-conformance violation, not just wasted
    /// work.
    pub sink_dead: AtomicBool,
    /// Serializes decoding per connection (two Readable events for the
    /// same connection must not interleave their decode loops) and holds
    /// the codec's incremental-scan scratch.
    decode_lock: Mutex<DecodeState>,
    send: Mutex<SendState>,
}

struct SendState {
    /// Next sequence number to hand to a new request.
    next_assign: u64,
    /// Next sequence number eligible for transmission.
    next_emit: u64,
    /// Out-of-order completions: seq → encoded reply (`None` = no reply).
    ready: BTreeMap<u64, Option<EncodedReply>>,
}

impl ConnShared {
    /// Fresh connection state.
    pub fn new(id: ConnId, peer: String, priority: Priority) -> Arc<Self> {
        Arc::new(Self {
            id,
            peer,
            priority,
            inbox: Mutex::new(BytesMut::new()),
            outbox: Mutex::new(Outbox::new()),
            closing: AtomicBool::new(false),
            peer_eof: AtomicBool::new(false),
            sink_dead: AtomicBool::new(false),
            decode_lock: Mutex::new(DecodeState::default()),
            send: Mutex::new(SendState {
                next_assign: 0,
                next_emit: 0,
                ready: BTreeMap::new(),
            }),
        })
    }

    /// Context snapshot for hooks.
    pub fn ctx(&self) -> ConnCtx {
        ConnCtx {
            id: self.id,
            peer: self.peer.clone(),
            priority: self.priority,
        }
    }

    /// Whether requests were accepted whose replies have not all been
    /// queued for transmission yet.
    pub fn responses_pending(&self) -> bool {
        let s = self.send.lock();
        s.next_emit < s.next_assign
    }

    fn assign_seq(&self) -> u64 {
        let mut s = self.send.lock();
        let seq = s.next_assign;
        s.next_assign += 1;
        seq
    }

    /// Record the (possibly empty) reply for `seq` and move every
    /// contiguous ready reply into the outbox — in request order.
    fn complete(&self, seq: u64, reply: Option<EncodedReply>) -> usize {
        let mut emitted = 0;
        let mut s = self.send.lock();
        // A dead sink swallows the payload but keeps the sequence moving,
        // so ordering state still drains and the connection can finalize.
        let reply = if self.sink_dead.load(Ordering::Relaxed) {
            None
        } else {
            reply
        };
        s.ready.insert(seq, reply);
        let mut out = self.outbox.lock();
        while let Some(entry) = {
            let key = s.next_emit;
            s.ready.remove(&key)
        } {
            if let Some(r) = entry {
                out.push_reply(r);
                emitted += 1;
            }
            s.next_emit += 1;
        }
        emitted
    }
}

/// The work items flowing through the Event Processor queue.
pub enum Work<R> {
    /// Request bytes arrived on a connection: run the decode/handle/encode
    /// loop.
    Process(ConnId),
    /// A blocking operation completed (Proactor path): encode and send.
    Completion(CompletionToken, R),
}

/// Shared connection registry: id → state.
pub type Registry = Arc<RwLock<HashMap<ConnId, Arc<ConnShared>>>>;

/// The framework engine: everything workers need to run the pipeline.
pub struct Engine<C: Codec, S: Service<C>> {
    /// The application's codec hooks.
    pub codec: Arc<C>,
    /// The application's service hooks.
    pub service: Arc<S>,
    /// Connection registry.
    pub registry: Registry,
    /// Profiling counters (O11; always maintained, cheaply).
    pub stats: Arc<ServerStats>,
    /// Per-stage latency histograms and gauges (O11; disabled registry =
    /// no-op fast path).
    pub metrics: Arc<MetricsRegistry>,
    /// Debug tracer (O10).
    pub tracer: DebugTracer,
    /// Access logger (O12).
    pub logger: Option<AccessLogger>,
    /// Helper pool for blocking operations (present iff O4=Asynchronous).
    pub helper: Option<Arc<HelperPool>>,
    /// Completion channel back into the dispatcher (O4=Asynchronous).
    pub completion_tx: Option<Sender<(CompletionToken, C::Response)>>,
    /// Wakes the dispatcher owning a connection when a work item changed
    /// its state (reply queued, closing requested): dispatchers block in
    /// their poller and no longer scan connections for output.
    pub notifier: DispatchNotifier,
}

impl<C: Codec, S: Service<C>> Engine<C, S> {
    /// Look up a live connection.
    pub fn conn(&self, id: ConnId) -> Option<Arc<ConnShared>> {
        self.registry.read().get(&id).cloned()
    }

    /// Execute one work item. Runs on Event Processor workers (O2 = Yes)
    /// or directly on the dispatcher thread (O2 = No) — the code is
    /// identical, only the calling thread differs.
    pub fn handle_work(&self, work: Work<C::Response>) {
        ServerStats::bump(&self.stats.events_dispatched);
        let id = match &work {
            Work::Process(id) => *id,
            Work::Completion(token, _) => token.conn,
        };
        match work {
            Work::Process(id) => self.process_conn(id),
            Work::Completion(token, resp) => self.handle_completion(token, resp),
        }
        // Diagnostics: the executing thread (pool worker or dispatcher)
        // is between events again. No-op on unattached threads.
        diag::stamp_idle();
        // Backstop wake-up: replies notify eagerly as they reach the
        // outbox (see `emit`), but closing transitions and the panic path
        // may not, so every work item still ends with one notification.
        self.notifier.notify_conn(id);
    }

    /// Complete `seq` and, when that moved reply bytes into the outbox,
    /// wake the owning dispatcher *now*. A work item can keep its worker
    /// busy long after earlier replies in the batch are ready — most
    /// acutely a synchronous `Defer` blocking in place (an FTP `PASV`
    /// reply must reach the client while the deferred transfer is still
    /// waiting to accept the data connection it announced) — so replies
    /// cannot ride on the end-of-item notification alone.
    fn emit(&self, conn: &Arc<ConnShared>, seq: u64, reply: Option<EncodedReply>) -> usize {
        let emitted = conn.complete(seq, reply);
        if emitted > 0 {
            self.notifier.notify_conn(conn.id);
        }
        emitted
    }

    fn process_conn(&self, id: ConnId) {
        let Some(conn) = self.conn(id) else {
            return; // connection already closed
        };
        let mut decode_state = conn.decode_lock.lock();
        loop {
            if conn.closing.load(Ordering::Relaxed) {
                return;
            }
            // O11: clock reads happen only with profiling on — the
            // disabled registry's fast path skips even `Instant::now`.
            let profiled = self.metrics.is_enabled();
            let decode_started = profiled.then(std::time::Instant::now);
            diag::stamp_stage(Stage::Decode, id);
            let decoded = {
                let mut inbox = conn.inbox.lock();
                self.codec.decode_with(&mut inbox, &mut decode_state)
            };
            match decoded {
                Ok(Some(req)) => {
                    ServerStats::bump(&self.stats.requests_decoded);
                    if let Some(t0) = decode_started {
                        self.metrics
                            .record_stage(Stage::Decode, t0.elapsed().as_micros() as u64);
                    }
                    let seq = conn.assign_seq();
                    let ctx = conn.ctx();
                    self.tracer.span(SpanEvent::Decode { seq }, id);
                    // Isolate application-hook panics: the request is
                    // failed and the connection closed, but the framework
                    // (and this connection's reply ordering) survives.
                    let service = &self.service;
                    let handle_started = profiled.then(std::time::Instant::now);
                    diag::stamp_stage(Stage::Handle, id);
                    let action = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        service.handle(&ctx, req)
                    }));
                    if let Some(t0) = handle_started {
                        self.metrics
                            .record_stage(Stage::Handle, t0.elapsed().as_micros() as u64);
                    }
                    match action {
                        Ok(action) => {
                            self.tracer.span(SpanEvent::Handle { seq }, id);
                            self.apply_action(&conn, seq, action);
                        }
                        Err(_) => {
                            ServerStats::bump(&self.stats.protocol_errors);
                            ServerStats::bump(&self.stats.handler_panics);
                            self.tracer.record(
                                EventKind::Readable,
                                Some(id),
                                format!("handler panic on seq={seq}"),
                            );
                            self.emit(&conn, seq, None);
                            conn.closing.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
                Ok(None) => {
                    // No complete request in the inbox. If the peer has
                    // already half-closed, whatever fragment remains can
                    // never complete — reap the connection now rather
                    // than holding it until the O7 idle sweep. (The
                    // decode lock serializes with any concurrent decode,
                    // and the dispatcher set `peer_eof` before submitting
                    // this final process pass.)
                    if conn.peer_eof.load(Ordering::Relaxed) && !conn.inbox.lock().is_empty() {
                        conn.inbox.lock().clear();
                        conn.closing.store(true, Ordering::Relaxed);
                    }
                    return;
                }
                Err(e) => {
                    ServerStats::bump(&self.stats.protocol_errors);
                    if self.tracer.is_enabled() {
                        self.tracer.record(
                            EventKind::Readable,
                            Some(id),
                            format!("decode error: {e}"),
                        );
                    }
                    conn.inbox.lock().clear();
                    *decode_state = DecodeState::default();
                    conn.closing.store(true, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    fn apply_action(&self, conn: &Arc<ConnShared>, seq: u64, action: Action<C::Response>) {
        match action {
            Action::Reply(resp) => self.finish(conn, seq, resp, false),
            Action::ReplyClose(resp) => self.finish(conn, seq, resp, true),
            Action::NoReply => {
                self.emit(conn, seq, None);
            }
            Action::Close => {
                self.emit(conn, seq, None);
                conn.closing.store(true, Ordering::Relaxed);
            }
            Action::Defer(job) => self.defer(conn, seq, job, false),
            Action::DeferClose(job) => self.defer(conn, seq, job, true),
        }
    }

    fn defer(
        &self,
        conn: &Arc<ConnShared>,
        seq: u64,
        job: Box<dyn FnOnce() -> C::Response + Send>,
        close_after: bool,
    ) {
        ServerStats::bump(&self.stats.blocking_ops);
        let token = CompletionToken { conn: conn.id, seq };
        match (&self.helper, &self.completion_tx) {
            (Some(helper), Some(tx)) => {
                // O4 = Asynchronous: run on the helper pool; the result
                // re-enters the framework as a completion event.
                if close_after {
                    conn.closing.store(true, Ordering::Relaxed);
                }
                let tx = tx.clone();
                let notifier = self.notifier.clone();
                self.tracer.span(SpanEvent::Defer { seq }, conn.id);
                helper.submit(move || {
                    let resp = job();
                    let _ = tx.send((token, resp));
                    // Dispatcher 0 drains the completion channel; pull it
                    // out of its poller wait.
                    notifier.wake_completion_sink();
                });
            }
            _ => {
                // O4 = Synchronous: block in place on this worker thread.
                let resp = job();
                self.finish(conn, seq, resp, close_after);
            }
        }
    }

    fn handle_completion(&self, token: CompletionToken, resp: C::Response) {
        let Some(conn) = self.conn(token.conn) else {
            return;
        };
        self.tracer
            .span(SpanEvent::Complete { seq: token.seq }, token.conn);
        // DeferClose already set `closing`; `finish` must not clear it.
        let close_after = conn.closing.load(Ordering::Relaxed);
        self.finish(&conn, token.seq, resp, close_after);
    }

    fn finish(&self, conn: &Arc<ConnShared>, seq: u64, resp: C::Response, close_after: bool) {
        let mut out = EncodedReply::new();
        let encode_started = self.metrics.is_enabled().then(std::time::Instant::now);
        diag::stamp_stage(Stage::Encode, conn.id);
        let encoded = self.codec.encode_reply(&resp, &mut out);
        if let Some(t0) = encode_started {
            self.metrics
                .record_stage(Stage::Encode, t0.elapsed().as_micros() as u64);
        }
        match encoded {
            Ok(()) => {
                let n = out.len();
                self.tracer.span(SpanEvent::Encode { seq }, conn.id);
                let emitted = self.emit(conn, seq, Some(out));
                ServerStats::add(&self.stats.responses_sent, emitted as u64);
                if let Some(log) = &self.logger {
                    log(&format!("{} seq={} bytes={}", conn.peer, seq, n));
                }
            }
            Err(e) => {
                ServerStats::bump(&self.stats.protocol_errors);
                if self.tracer.is_enabled() {
                    self.tracer.record(
                        EventKind::Readable,
                        Some(conn.id),
                        format!("encode error: {e}"),
                    );
                }
                self.emit(conn, seq, None);
                conn.closing.store(true, Ordering::Relaxed);
            }
        }
        if close_after {
            conn.closing.store(true, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MemoryLogger;
    use std::collections::HashMap;

    /// Line-delimited codec for tests: requests and responses are lines.
    struct LineCodec;

    impl Codec for LineCodec {
        type Request = String;
        type Response = String;

        fn decode(&self, buf: &mut BytesMut) -> Result<Option<String>, ProtocolError> {
            if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                let line = buf.split_to(pos + 1);
                let s = std::str::from_utf8(&line[..pos])
                    .map_err(|_| ProtocolError("not utf8".into()))?;
                if s == "BAD" {
                    return Err(ProtocolError("bad request".into()));
                }
                Ok(Some(s.to_string()))
            } else {
                Ok(None)
            }
        }

        fn encode(&self, resp: &String, out: &mut BytesMut) -> Result<(), ProtocolError> {
            out.extend_from_slice(resp.as_bytes());
            out.extend_from_slice(b"\n");
            Ok(())
        }
    }

    /// Echo service with special commands.
    struct EchoService;

    impl Service<LineCodec> for EchoService {
        fn handle(&self, _ctx: &ConnCtx, req: String) -> Action<String> {
            match req.as_str() {
                "quit" => Action::ReplyClose("bye".into()),
                "silent" => Action::NoReply,
                "drop" => Action::Close,
                "slow" => Action::Defer(Box::new(|| "slept".to_string())),
                other => Action::Reply(format!("echo:{other}")),
            }
        }
    }

    fn engine(sync: bool) -> (Engine<LineCodec, EchoService>, MemoryLogger) {
        let logger = MemoryLogger::new();
        let (helper, tx) = if sync {
            (None, None)
        } else {
            // For unit tests we run completions through a channel drained
            // manually below.
            let (tx, _rx) = crossbeam::channel::unbounded();
            (Some(Arc::new(HelperPool::new(1))), Some(tx))
        };
        (
            Engine {
                codec: Arc::new(LineCodec),
                service: Arc::new(EchoService),
                registry: Arc::new(RwLock::new(HashMap::new())),
                stats: ServerStats::new_shared(),
                metrics: MetricsRegistry::enabled(),
                tracer: DebugTracer::enabled(64),
                logger: Some(logger.as_hook()),
                helper,
                completion_tx: tx,
                notifier: DispatchNotifier::disabled(),
            },
            logger,
        )
    }

    fn register(e: &Engine<LineCodec, EchoService>, id: ConnId) -> Arc<ConnShared> {
        let conn = ConnShared::new(id, format!("peer-{id}"), Priority(0));
        e.registry.write().insert(id, Arc::clone(&conn));
        conn
    }

    fn feed(conn: &Arc<ConnShared>, bytes: &[u8]) {
        conn.inbox.lock().extend_from_slice(bytes);
    }

    fn outbox_string(conn: &Arc<ConnShared>) -> String {
        String::from_utf8(conn.outbox.lock().to_vec()).unwrap()
    }

    #[test]
    fn decode_handle_encode_round_trip() {
        let (e, logger) = engine(true);
        let conn = register(&e, 1);
        feed(&conn, b"hello\nworld\n");
        e.handle_work(Work::Process(1));
        assert_eq!(outbox_string(&conn), "echo:hello\necho:world\n");
        assert_eq!(e.stats.snapshot().requests_decoded, 2);
        assert_eq!(e.stats.snapshot().responses_sent, 2);
        assert_eq!(logger.lines().len(), 2);
        assert!(!conn.closing.load(Ordering::Relaxed));
    }

    #[test]
    fn partial_request_waits_for_more_bytes() {
        let (e, _) = engine(true);
        let conn = register(&e, 1);
        feed(&conn, b"hel");
        e.handle_work(Work::Process(1));
        assert_eq!(outbox_string(&conn), "");
        feed(&conn, b"lo\n");
        e.handle_work(Work::Process(1));
        assert_eq!(outbox_string(&conn), "echo:hello\n");
    }

    #[test]
    fn reply_close_marks_closing_after_reply() {
        let (e, _) = engine(true);
        let conn = register(&e, 1);
        feed(&conn, b"quit\n");
        e.handle_work(Work::Process(1));
        assert_eq!(outbox_string(&conn), "bye\n");
        assert!(conn.closing.load(Ordering::Relaxed));
    }

    #[test]
    fn close_without_reply() {
        let (e, _) = engine(true);
        let conn = register(&e, 1);
        feed(&conn, b"drop\nignored\n");
        e.handle_work(Work::Process(1));
        assert_eq!(outbox_string(&conn), "");
        assert!(conn.closing.load(Ordering::Relaxed));
    }

    #[test]
    fn no_reply_requests_do_not_block_ordering() {
        let (e, _) = engine(true);
        let conn = register(&e, 1);
        feed(&conn, b"silent\nhello\n");
        e.handle_work(Work::Process(1));
        assert_eq!(outbox_string(&conn), "echo:hello\n");
    }

    #[test]
    fn decode_error_closes_and_counts() {
        let (e, _) = engine(true);
        let conn = register(&e, 1);
        feed(&conn, b"BAD\nnever\n");
        e.handle_work(Work::Process(1));
        assert!(conn.closing.load(Ordering::Relaxed));
        assert_eq!(e.stats.snapshot().protocol_errors, 1);
        assert_eq!(outbox_string(&conn), "");
        assert!(conn.inbox.lock().is_empty(), "inbox discarded on error");
    }

    #[test]
    fn synchronous_defer_blocks_in_place() {
        let (e, _) = engine(true);
        let conn = register(&e, 1);
        feed(&conn, b"slow\nafter\n");
        e.handle_work(Work::Process(1));
        // Synchronous mode: both replies already emitted, in order.
        assert_eq!(outbox_string(&conn), "slept\necho:after\n");
        assert_eq!(e.stats.snapshot().blocking_ops, 1);
    }

    #[test]
    fn completions_are_reordered_to_request_order() {
        let (e, _) = engine(true);
        let conn = register(&e, 1);
        // Simulate three async requests completing out of order.
        let s0 = conn.assign_seq();
        let s1 = conn.assign_seq();
        let s2 = conn.assign_seq();
        e.handle_work(Work::Completion(
            CompletionToken { conn: 1, seq: s2 },
            "two".into(),
        ));
        assert_eq!(outbox_string(&conn), "", "seq 2 held back");
        assert!(conn.responses_pending());
        e.handle_work(Work::Completion(
            CompletionToken { conn: 1, seq: s0 },
            "zero".into(),
        ));
        assert_eq!(outbox_string(&conn), "zero\n");
        e.handle_work(Work::Completion(
            CompletionToken { conn: 1, seq: s1 },
            "one".into(),
        ));
        assert_eq!(outbox_string(&conn), "zero\none\ntwo\n");
        assert!(!conn.responses_pending());
        assert_eq!(e.stats.snapshot().responses_sent, 3);
    }

    #[test]
    fn work_for_unknown_connection_is_ignored() {
        let (e, _) = engine(true);
        e.handle_work(Work::Process(99));
        e.handle_work(Work::Completion(
            CompletionToken { conn: 99, seq: 0 },
            "x".into(),
        ));
        assert_eq!(e.stats.snapshot().responses_sent, 0);
    }

    #[test]
    fn raw_codec_passes_bytes_through() {
        let c = RawCodec;
        let mut buf = BytesMut::from(&b"abc"[..]);
        let req = c.decode(&mut buf).unwrap().unwrap();
        assert_eq!(req, b"abc");
        assert!(c.decode(&mut buf).unwrap().is_none());
        let mut out = BytesMut::new();
        c.encode(&b"xyz".to_vec(), &mut out).unwrap();
        assert_eq!(&out[..], b"xyz");
    }

    #[test]
    fn outbox_interleaves_owned_and_shared_segments_in_order() {
        let mut out = Outbox::new();
        out.extend_from_slice(b"greeting|");
        let body = Arc::new(b"SHARED-BODY".to_vec());
        let mut reply = EncodedReply::new();
        reply.push_bytes(BytesMut::from(&b"head|"[..]));
        reply.push_shared(Arc::clone(&body));
        assert_eq!(reply.len(), 16);
        out.push_reply(reply);
        out.extend_from_slice(b"|tail");
        assert_eq!(out.len(), 9 + 16 + 5);
        assert_eq!(out.to_vec(), b"greeting|head|SHARED-BODY|tail");
        // The queued body is the cache's allocation, not a copy.
        assert_eq!(Arc::strong_count(&body), 2);
    }

    #[test]
    fn outbox_advance_crosses_segment_boundaries() {
        let mut out = Outbox::new();
        out.extend_from_slice(b"abc");
        let mut reply = EncodedReply::new();
        reply.push_shared(Arc::new(b"defgh".to_vec()));
        out.push_reply(reply);
        // Drain in chunk sizes that straddle the owned/shared boundary.
        let mut drained = Vec::new();
        while let Some(chunk) = out.front_chunk() {
            let take = chunk.len().min(2);
            drained.extend_from_slice(&chunk[..take]);
            out.advance(take);
        }
        assert_eq!(drained, b"abcdefgh");
        assert!(out.is_empty());
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn outbox_clear_drops_everything() {
        let mut out = Outbox::new();
        out.extend_from_slice(b"xyz");
        let mut reply = EncodedReply::new();
        reply.push_shared(Arc::new(vec![1, 2, 3]));
        out.push_reply(reply);
        assert!(!out.is_empty());
        out.clear();
        assert!(out.is_empty());
        assert!(out.front_chunk().is_none());
        assert!(out.to_vec().is_empty());
    }

    #[test]
    fn empty_segments_are_never_queued() {
        let mut reply = EncodedReply::new();
        reply.push_bytes(BytesMut::new());
        reply.push_shared(Arc::new(Vec::new()));
        assert!(reply.is_empty());
        let mut out = Outbox::new();
        out.push_reply(reply);
        out.extend_from_slice(b"");
        assert!(out.is_empty());
        assert!(out.front_chunk().is_none());
    }

    #[test]
    fn default_encode_reply_matches_encode() {
        let codec = LineCodec;
        let resp = "hello".to_string();
        let mut flat = BytesMut::new();
        codec.encode(&resp, &mut flat).unwrap();
        let mut reply = EncodedReply::new();
        codec.encode_reply(&resp, &mut reply).unwrap();
        let mut out = Outbox::new();
        out.push_reply(reply);
        assert_eq!(out.to_vec(), flat.to_vec());
    }

    #[test]
    fn conn_shared_ctx_snapshot() {
        let conn = ConnShared::new(7, "1.2.3.4:5".into(), Priority(2));
        let ctx = conn.ctx();
        assert_eq!(ctx.id, 7);
        assert_eq!(ctx.peer, "1.2.3.4:5");
        assert_eq!(ctx.priority, Priority(2));
    }
}
