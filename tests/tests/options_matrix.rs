//! Option-matrix sweep: run a live framework instance under every
//! combination of the structural options (O2 × O3 × O4 × O5) plus
//! representative settings of the behavioural ones, over the in-memory
//! transport, and verify correct request handling in each. This is the
//! runtime counterpart of the generator's Table 2 tests: every generated
//! configuration must also *work*.

use std::time::{Duration, Instant};

use bytes::BytesMut;
use nserver_core::options::{
    CompletionMode, DispatcherThreads, EventScheduling, Mode, ServerOptions, ThreadAllocation,
};
use nserver_core::pipeline::{Action, Codec, ConnCtx, ProtocolError, RawCodec, Service};
use nserver_core::server::ServerBuilder;
use nserver_core::transport::{mem, ReadOutcome, StreamIo};

struct LineCodec;

impl Codec for LineCodec {
    type Request = String;
    type Response = String;

    fn decode(&self, buf: &mut BytesMut) -> Result<Option<String>, ProtocolError> {
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                let line = buf.split_to(i + 1);
                Ok(Some(String::from_utf8_lossy(&line[..i]).into_owned()))
            }
            None => Ok(None),
        }
    }

    fn encode(&self, r: &String, out: &mut BytesMut) -> Result<(), ProtocolError> {
        out.extend_from_slice(r.as_bytes());
        out.extend_from_slice(b"\n");
        Ok(())
    }
}

struct Echo;

impl Service<LineCodec> for Echo {
    fn handle(&self, _ctx: &ConnCtx, req: String) -> Action<String> {
        if let Some(rest) = req.strip_prefix("slow ") {
            let rest = rest.to_string();
            Action::Defer(Box::new(move || {
                std::thread::sleep(Duration::from_millis(2));
                format!("slow-done {rest}")
            }))
        } else {
            Action::Reply(format!("echo {req}"))
        }
    }
}

struct RawEcho;

impl Service<RawCodec> for RawEcho {
    fn handle(&self, _ctx: &ConnCtx, req: Vec<u8>) -> Action<Vec<u8>> {
        Action::Reply(req)
    }
}

fn read_until(stream: &mut mem::MemStream, needle: &str) -> String {
    let mut acc = Vec::new();
    let mut buf = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        match stream.try_read(&mut buf).unwrap() {
            ReadOutcome::Data(n) => acc.extend_from_slice(&buf[..n]),
            ReadOutcome::WouldBlock => std::thread::sleep(Duration::from_micros(200)),
            ReadOutcome::Closed => break,
        }
        if String::from_utf8_lossy(&acc).contains(needle) {
            break;
        }
    }
    String::from_utf8_lossy(&acc).into_owned()
}

/// Every structural combination of O1/O2/O4/O5 (O3=Yes path).
#[test]
fn structural_option_matrix_serves_correctly() {
    let mut tried = 0;
    for multi_dispatch in [false, true] {
        for separate_pool in [false, true] {
            for async_completion in [false, true] {
                for dynamic_alloc in [false, true] {
                    if dynamic_alloc && !separate_pool {
                        continue; // invalid (validated) combination
                    }
                    let opts = ServerOptions {
                        dispatcher_threads: if multi_dispatch {
                            DispatcherThreads::Multi(2)
                        } else {
                            DispatcherThreads::Single
                        },
                        separate_handler_pool: separate_pool,
                        completion_mode: if async_completion {
                            CompletionMode::Asynchronous
                        } else {
                            CompletionMode::Synchronous
                        },
                        thread_allocation: if dynamic_alloc {
                            ThreadAllocation::Dynamic {
                                min: 1,
                                max: 4,
                                idle_keepalive_ms: 50,
                            }
                        } else {
                            ThreadAllocation::Static { threads: 2 }
                        },
                        mode: Mode::Debug,
                        ..ServerOptions::default()
                    };
                    opts.validate()
                        .unwrap_or_else(|e| panic!("combination should be valid: {e} ({opts:?})"));
                    let (listener, connector) = mem::listener("matrix");
                    let server = ServerBuilder::new(opts, LineCodec, Echo)
                        .unwrap()
                        .serve(listener);
                    let mut c = connector.connect();
                    c.try_write(b"one\nslow two\nthree\n").unwrap();
                    let text = read_until(&mut c, "echo three");
                    assert!(
                        text.contains("echo one")
                            && text.contains("slow-done two")
                            && text.contains("echo three"),
                        "combination {tried} mangled replies: {text:?}"
                    );
                    // In-order delivery even with deferred work between.
                    let one = text.find("echo one").unwrap();
                    let two = text.find("slow-done two").unwrap();
                    let three = text.find("echo three").unwrap();
                    assert!(one < two && two < three, "order broke: {text:?}");
                    server.shutdown();
                    tried += 1;
                }
            }
        }
    }
    assert_eq!(tried, 12);
}

/// The O3 = No structural variation across completion modes.
#[test]
fn raw_pipeline_matrix() {
    for async_completion in [false, true] {
        for separate_pool in [false, true] {
            let opts = ServerOptions {
                encode_decode: false,
                separate_handler_pool: separate_pool,
                completion_mode: if async_completion {
                    CompletionMode::Asynchronous
                } else {
                    CompletionMode::Synchronous
                },
                thread_allocation: ThreadAllocation::Static { threads: 2 },
                ..ServerOptions::default()
            };
            opts.validate().unwrap();
            let (listener, connector) = mem::listener("raw");
            let server = ServerBuilder::new(opts, RawCodec, RawEcho)
                .unwrap()
                .serve(listener);
            let mut c = connector.connect();
            c.try_write(b"raw-bytes-roundtrip").unwrap();
            let text = read_until(&mut c, "raw-bytes-roundtrip");
            assert!(text.contains("raw-bytes-roundtrip"));
            server.shutdown();
        }
    }
}

/// Scheduling plus watermark overload control together (the full
/// experiment-3 configuration shape) on a live instance.
#[test]
fn scheduling_and_overload_combined() {
    let opts = ServerOptions {
        event_scheduling: EventScheduling::Yes { quotas: vec![4, 1] },
        overload_control: nserver_core::options::OverloadControl::Watermark { high: 8, low: 2 },
        mode: Mode::Debug,
        ..ServerOptions::default()
    };
    opts.validate().unwrap();
    let (listener, connector) = mem::listener("combo");
    let server = ServerBuilder::new(opts, LineCodec, Echo)
        .unwrap()
        .serve(listener);
    let mut clients: Vec<_> = (0..4).map(|_| connector.connect()).collect();
    for (i, c) in clients.iter_mut().enumerate() {
        c.try_write(format!("m{i}\n").as_bytes()).unwrap();
    }
    for (i, c) in clients.iter_mut().enumerate() {
        let text = read_until(c, &format!("echo m{i}"));
        assert!(text.contains(&format!("echo m{i}")));
    }
    server.shutdown();
}

/// The O10 × O11 observability matrix through the *generator*: each
/// combination's emitted source must include the instrumentation code
/// exactly when the option asks for it — `StageHistogram` recording
/// only under O11 = Yes, typed `SpanEvent` emission only under
/// O10 = Debug — and the generated-code metrics (the paper's Table 3/4
/// counters) must not drift silently when the observability code
/// changes shape.
#[test]
fn codegen_observability_matrix_gates_instrumentation() {
    use nserver_cache::PolicyKind;
    use nserver_codegen::template::generate;
    use nserver_core::options::FileCacheOption;

    // (O10 debug, O11 profiling) -> pinned Table 3/4 metrics for the
    // COPS-HTTP configuration. Methods and NCSS grow monotonically as
    // instrumentation is switched on; classes stay fixed (observability
    // adds code to existing classes, never new ones).
    let pinned = [
        (false, false, (23usize, 27usize, 317usize)),
        (false, true, (23, 30, 341)),
        (true, false, (23, 35, 358)),
        (true, true, (23, 38, 382)),
    ];
    for (debug, profiling, (classes, methods, ncss)) in pinned {
        let opts = ServerOptions {
            completion_mode: CompletionMode::Asynchronous,
            thread_allocation: ThreadAllocation::Static { threads: 4 },
            file_cache: FileCacheOption::Yes {
                policy: PolicyKind::Lru,
                capacity_bytes: 20 << 20,
            },
            mode: if debug { Mode::Debug } else { Mode::Production },
            profiling,
            ..ServerOptions::default()
        };
        let fw = generate("obs-matrix", &opts, "../../crates");
        let source: String = fw
            .files
            .iter()
            .filter(|f| f.path.ends_with(".rs"))
            .map(|f| f.content.as_str())
            .collect();
        assert_eq!(
            source.contains("StageHistogram"),
            profiling,
            "O11={profiling}: StageHistogram presence must track profiling"
        );
        assert_eq!(
            source.contains("SpanEvent"),
            debug,
            "O10 debug={debug}: SpanEvent presence must track mode"
        );
        let stats = fw.generated_stats();
        assert_eq!(
            (stats.classes, stats.methods, stats.ncss),
            (classes, methods, ncss),
            "generated-code metrics drifted for debug={debug} profiling={profiling}"
        );
    }
}
