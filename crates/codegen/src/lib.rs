//! # nserver-codegen
//!
//! The **generative** half of the N-Server pattern template: given a
//! [`nserver_core::ServerOptions`] configuration, this crate *generates a
//! custom framework as Rust source code* — the CO₂P₃S approach. From the
//! paper:
//!
//! > "The generative design pattern approach is more configurable than a
//! > static framework, since application code underlying each feature can
//! > be included or excluded at code generation time, based on the
//! > corresponding option settings. … Dynamic checks reduce application
//! > maintainability and add performance overheads."
//!
//! Three artifacts come out of this crate:
//!
//! * [`template::generate`] — the generated framework itself: one module
//!   per framework class, a `main.rs` that assembles the configuration,
//!   and stub hook files for the programmer's Decode/Handle/Encode code.
//!   Classes exist or vanish, and their bodies change, exactly per the
//!   paper's Table 2 crosscut matrix.
//! * [`crosscut`] — the Table 2 matrix extracted from the fragment
//!   registry (which class is gated (`O`) or affected (`+`) by which
//!   option).
//! * [`ncss`] — the classes/methods/NCSS code metrics used in the paper's
//!   Tables 3 and 4 code-distribution studies.

pub mod crosscut;
pub mod fragments;
pub mod ncss;
pub mod template;

pub use crosscut::{render_matrix, CrosscutMatrix};
pub use fragments::{registry, ClassSpec, Gate, OptionId};
pub use ncss::{count_source, CodeStats};
pub use template::{generate, GeneratedFile, GeneratedFramework};
