//! Least-Frequently-Used replacement.

use std::collections::{BTreeSet, HashMap};

use crate::policy::{EntryId, EntryMeta, ReplacementPolicy};

/// LFU: the victim is the entry with the fewest accesses; ties are broken
/// by least-recent access (so LFU degrades gracefully to LRU among equally
/// popular documents instead of evicting arbitrarily).
#[derive(Debug, Default)]
pub struct Lfu {
    // Ordered by (access_count, last_access, id); the first element is the
    // eviction candidate.
    order: BTreeSet<(u64, u64, EntryId)>,
    key_of: HashMap<EntryId, (u64, u64)>,
}

impl Lfu {
    /// Create an empty LFU policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn reindex(&mut self, id: EntryId, meta: &EntryMeta) {
        if let Some((cnt, la)) = self
            .key_of
            .insert(id, (meta.access_count, meta.last_access))
        {
            self.order.remove(&(cnt, la, id));
        }
        self.order.insert((meta.access_count, meta.last_access, id));
    }
}

impl ReplacementPolicy for Lfu {
    fn name(&self) -> &'static str {
        "LFU"
    }

    fn on_insert(&mut self, id: EntryId, meta: &EntryMeta) {
        self.reindex(id, meta);
    }

    fn on_access(&mut self, id: EntryId, meta: &EntryMeta) {
        self.reindex(id, meta);
    }

    fn on_remove(&mut self, id: EntryId) {
        if let Some((cnt, la)) = self.key_of.remove(&id) {
            self.order.remove(&(cnt, la, id));
        }
    }

    fn choose_victim(&mut self, _incoming_size: u64) -> Option<EntryId> {
        self.order.iter().next().map(|&(_, _, id)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(count: u64, t: u64) -> EntryMeta {
        EntryMeta {
            size: 1,
            last_access: t,
            access_count: count,
            inserted_at: 0,
        }
    }

    #[test]
    fn evicts_least_frequent() {
        let mut p = Lfu::new();
        p.on_insert(1, &meta(1, 0));
        p.on_insert(2, &meta(1, 1));
        p.on_access(1, &meta(2, 2));
        p.on_access(1, &meta(3, 3));
        assert_eq!(p.choose_victim(0), Some(2));
    }

    #[test]
    fn frequency_ties_broken_by_recency() {
        let mut p = Lfu::new();
        p.on_insert(1, &meta(1, 0));
        p.on_insert(2, &meta(1, 1));
        // Both accessed once more; entry 1 more recently.
        p.on_access(2, &meta(2, 2));
        p.on_access(1, &meta(2, 3));
        assert_eq!(p.choose_victim(0), Some(2));
    }

    #[test]
    fn remove_untracks() {
        let mut p = Lfu::new();
        p.on_insert(1, &meta(1, 0));
        p.on_insert(2, &meta(5, 1));
        p.on_remove(1);
        assert_eq!(p.choose_victim(0), Some(2));
    }

    #[test]
    fn empty_policy_has_no_victim() {
        let mut p = Lfu::new();
        assert_eq!(p.choose_victim(0), None);
    }
}
