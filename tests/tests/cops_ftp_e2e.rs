//! End-to-end COPS-FTP: a full client session against the real server —
//! login, navigation, passive-mode LIST/RETR/STOR, upload verification —
//! plus the option-driven behaviours of the FTP preset (synchronous
//! completions, dynamic pool).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use nserver_core::server::ServerBuilder;
use nserver_core::transport::TcpListenerNb;
use nserver_ftp::{cops_ftp_options, FtpCodec, FtpService, UserRegistry, Vfs};

struct Ctl {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Ctl {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        Self {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\r\n").unwrap();
    }

    fn reply(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line
    }
}

fn pasv_port(reply: &str) -> u16 {
    let inner = reply.split('(').nth(1).unwrap().split(')').next().unwrap();
    let nums: Vec<u16> = inner
        .split(',')
        .map(|n| n.trim().parse().unwrap())
        .collect();
    (nums[4] << 8) | nums[5]
}

fn start_server() -> (
    nserver_core::server::ServerHandle<FtpCodec, FtpService>,
    Arc<Vfs>,
) {
    let vfs = Arc::new(Vfs::new());
    vfs.mkdir("/pub");
    vfs.write("/pub/a.txt", b"alpha".to_vec());
    vfs.write("/pub/b.txt", b"beta-beta".to_vec());
    let users = Arc::new(UserRegistry::new().with_anonymous());
    users.add_user("alice", "secret");
    let server = ServerBuilder::new(
        cops_ftp_options(),
        FtpCodec,
        FtpService::new(Arc::clone(&vfs), users),
    )
    .unwrap()
    .serve(TcpListenerNb::bind("127.0.0.1:0").unwrap());
    (server, vfs)
}

#[test]
fn full_session_list_retr_stor() {
    let (server, vfs) = start_server();
    let addr = server.local_label().to_string();
    let mut ctl = Ctl::connect(&addr);

    assert!(ctl.reply().starts_with("220"));
    ctl.send("USER alice");
    assert!(ctl.reply().starts_with("331"));
    ctl.send("PASS secret");
    assert!(ctl.reply().starts_with("230"));
    ctl.send("CWD /pub");
    assert!(ctl.reply().starts_with("250"));
    ctl.send("TYPE I");
    assert!(ctl.reply().starts_with("200"));

    // LIST over a data connection.
    ctl.send("PASV");
    let port = pasv_port(&ctl.reply());
    let mut data = TcpStream::connect(("127.0.0.1", port)).unwrap();
    ctl.send("LIST");
    let mut listing = String::new();
    data.read_to_string(&mut listing).unwrap();
    assert!(ctl.reply().starts_with("150"));
    assert!(ctl.reply().starts_with("226"));
    assert_eq!(listing, "a.txt\r\nb.txt\r\n");

    // RETR.
    ctl.send("PASV");
    let port = pasv_port(&ctl.reply());
    let mut data = TcpStream::connect(("127.0.0.1", port)).unwrap();
    ctl.send("RETR a.txt");
    let mut content = Vec::new();
    data.read_to_end(&mut content).unwrap();
    assert!(ctl.reply().starts_with("150"));
    assert!(ctl.reply().starts_with("226"));
    assert_eq!(content, b"alpha");

    // STOR (upload) lands in the shared VFS.
    ctl.send("PASV");
    let port = pasv_port(&ctl.reply());
    let mut data = TcpStream::connect(("127.0.0.1", port)).unwrap();
    ctl.send("STOR upload.bin");
    data.write_all(b"fresh upload").unwrap();
    drop(data); // EOF terminates the transfer
    assert!(ctl.reply().starts_with("150"));
    assert!(ctl.reply().starts_with("226"));
    assert_eq!(&**vfs.read("/pub/upload.bin").unwrap(), b"fresh upload");

    ctl.send("QUIT");
    assert!(ctl.reply().starts_with("221"));
    server.shutdown();
}

#[test]
fn concurrent_sessions_have_isolated_state() {
    let (server, _vfs) = start_server();
    let addr = server.local_label().to_string();

    let mut a = Ctl::connect(&addr);
    let mut b = Ctl::connect(&addr);
    assert!(a.reply().starts_with("220"));
    assert!(b.reply().starts_with("220"));

    a.send("USER alice");
    a.reply();
    a.send("PASS secret");
    assert!(a.reply().starts_with("230"));
    a.send("CWD /pub");
    assert!(a.reply().starts_with("250"));

    // Session B is still unauthenticated and at "/".
    b.send("PWD");
    assert!(b.reply().starts_with("530"));
    b.send("USER anonymous");
    b.reply();
    b.send("PASS x");
    assert!(b.reply().starts_with("230"));
    b.send("PWD");
    assert!(b.reply().contains("\"/\""));

    a.send("PWD");
    assert!(a.reply().contains("\"/pub\""));
    server.shutdown();
}

#[test]
fn blocking_transfers_do_not_stall_other_sessions() {
    // COPS-FTP uses O4 = Synchronous: a transfer blocks its worker. The
    // dynamic pool (O5) must keep other control connections responsive
    // while one session's data transfer waits for its peer.
    let (server, _vfs) = start_server();
    let addr = server.local_label().to_string();

    let mut slow = Ctl::connect(&addr);
    assert!(slow.reply().starts_with("220"));
    slow.send("USER alice");
    slow.reply();
    slow.send("PASS secret");
    slow.reply();
    slow.send("PASV");
    let _port = pasv_port(&slow.reply());
    // Issue RETR but never connect to the data port: the worker blocks in
    // accept_data for its timeout window.
    slow.send("RETR /pub/a.txt");

    // Meanwhile another session must be served promptly.
    let t0 = std::time::Instant::now();
    let mut fast = Ctl::connect(&addr);
    assert!(fast.reply().starts_with("220"));
    fast.send("USER anonymous");
    assert!(fast.reply().starts_with("331"));
    fast.send("PASS x");
    assert!(fast.reply().starts_with("230"));
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "fast session stalled behind the blocking transfer"
    );

    // The slow session eventually reports the failed data connection.
    assert!(slow.reply().starts_with("425"));
    server.shutdown();
}
