//! The Apache 1.3.27 baseline model.
//!
//! "Apache implements the process-per-connection concurrency model and
//! uses a bounded worker process pool of 150 processes to serve
//! simultaneous client connections." A worker is held for the whole life
//! of its connection — including the client's think time — and the §II
//! multiprogramming argument applies: context switching, scheduling,
//! cache misses and lock contention inflate per-request CPU cost as the
//! number of live worker processes grows.

/// Apache model parameters.
#[derive(Debug, Clone, Copy)]
pub struct ApacheParams {
    /// Worker process pool size (paper: 150).
    pub workers: usize,
    /// Listen backlog; overflow drops SYNs silently.
    pub backlog: usize,
    /// Per-request CPU demand with a single quiescent process, in µs.
    pub base_cpu_us: u64,
    /// Multiprogramming overhead per live worker process (fractional
    /// service inflation per process).
    pub overhead_per_process: f64,
    /// Cap on the total overhead factor.
    pub max_overhead: f64,
    /// Run-queue/scheduling latency each request suffers per live worker
    /// process, in µs (delay, not CPU consumption): with many runnable
    /// processes a request waits longer to be scheduled even when CPU
    /// cycles remain.
    pub sched_latency_per_process_us: u64,
}

impl Default for ApacheParams {
    fn default() -> Self {
        Self {
            workers: 150,
            backlog: 32,
            base_cpu_us: 1600,
            overhead_per_process: 0.006,
            max_overhead: 1.8,
            sched_latency_per_process_us: 100,
        }
    }
}

impl ApacheParams {
    /// Effective per-request CPU demand (µs) with `live` worker processes.
    pub fn service_us(&self, live: usize) -> u64 {
        let overhead = (self.overhead_per_process * live as f64).min(self.max_overhead);
        (self.base_cpu_us as f64 * (1.0 + overhead)) as u64
    }

    /// Extra scheduling latency (µs) a request suffers with `live` worker
    /// processes (capped at the worker-pool size — only live processes
    /// compete for the run queue).
    pub fn sched_latency_us(&self, live: usize) -> u64 {
        self.sched_latency_per_process_us * live.min(self.workers) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_pool_size() {
        let p = ApacheParams::default();
        assert_eq!(p.workers, 150);
    }

    #[test]
    fn overhead_grows_with_processes_and_caps() {
        let p = ApacheParams::default();
        let idle = p.service_us(1);
        let mid = p.service_us(75);
        let full = p.service_us(150);
        assert!(idle < mid && mid < full);
        // Cap: 1000 processes no worse than the cap allows.
        let capped = p.service_us(1000);
        assert_eq!(
            capped,
            (p.base_cpu_us as f64 * (1.0 + p.max_overhead)) as u64
        );
    }

    #[test]
    fn quiescent_service_is_near_base() {
        let p = ApacheParams::default();
        assert!(p.service_us(0) == p.base_cpu_us);
    }
}
